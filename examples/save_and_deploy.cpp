/**
 * @file
 * Train once, deploy everywhere: the characterization/production
 * split the paper describes ("this process can be incorporated into
 * the normal system evaluation and characterization phase").
 *
 * Phase 1 (characterization lab): instrument a small cluster, run
 * the campaign, fit the model, and persist it to disk.
 *
 * Phase 2 (production, typically a different process/machine):
 * reload the model file and estimate power for uninstrumented
 * machines from their counters alone, then use the estimates for a
 * power-aware scheduling decision (placing work on the machine with
 * the most power headroom).
 */
#include <cstdio>
#include <iostream>

#include "core/chaos.hpp"
#include "models/serialize.hpp"
#include "oscounters/etw_session.hpp"
#include "util/string_utils.hpp"
#include "workloads/standard_workloads.hpp"

using namespace chaos;

int
main()
{
    const std::string model_path = "/tmp/chaos_core2_model.txt";

    // ----- Phase 1: characterization. -----
    std::cout << "== Phase 1: characterize and persist ==\n";
    CampaignConfig config;
    config.runsPerWorkload = 2;
    config.numMachines = 3;
    config.seed = 6006;
    ClusterCampaign campaign =
        runClusterCampaign(MachineClass::Core2, config);
    const MachinePowerModel trained =
        fitDefaultModel(campaign, config);
    saveModelFile(model_path, trained.model());
    std::cout << "model written to " << model_path << " ("
              << trained.featureSet().counters.size()
              << " counters, "
              << trained.model().numParameters() << " parameters)\n\n";

    // ----- Phase 2: production deployment. -----
    std::cout << "== Phase 2: reload and schedule ==\n";
    const auto reloaded = loadModelFile(model_path);

    // Two uninstrumented production machines under different loads.
    Cluster prod = Cluster::homogeneous(MachineClass::Core2, 2, 7331);
    CounterSampler sampler_a(prod.machine(0).spec(), Rng(1));
    CounterSampler sampler_b(prod.machine(1).spec(), Rng(2));

    ActivityDemand heavy;
    heavy.cpuCoreSeconds = 1.8;
    heavy.memIntensity = 0.6;
    ActivityDemand light;
    light.cpuCoreSeconds = 0.3;

    double est_a = 0.0, est_b = 0.0;
    for (int t = 0; t < 30; ++t) {
        const auto state_a = prod.machine(0).step(heavy).state;
        const auto state_b = prod.machine(1).step(light).state;
        auto project = [&](const std::vector<double> &counters) {
            std::vector<double> row;
            const auto &catalog = CounterCatalog::instance();
            for (const auto &name : trained.featureSet().counters)
                row.push_back(counters[catalog.indexOf(name)]);
            return row;
        };
        est_a = reloaded->predict(project(sampler_a.sample(state_a)));
        est_b = reloaded->predict(project(sampler_b.sample(state_b)));
    }

    const double cap = machineSpecFor(MachineClass::Core2).maxPowerW;
    std::cout << "machine A estimate: " << formatDouble(est_a, 1)
              << " W (headroom " << formatDouble(cap - est_a, 1)
              << " W)\n";
    std::cout << "machine B estimate: " << formatDouble(est_b, 1)
              << " W (headroom " << formatDouble(cap - est_b, 1)
              << " W)\n";
    std::cout << "power-aware scheduler places the next task on machine "
              << (cap - est_a > cap - est_b ? "A" : "B") << "\n";

    std::remove(model_path.c_str());
    return 0;
}
