/**
 * @file
 * Power provisioning — the paper's data-center planning motivation.
 *
 * How many servers fit in a rack with a fixed power budget? Sizing
 * by nameplate (worst-case envelope) strands capacity; sizing by a
 * CHAOS model of the *actual workload mix* deploys more machines.
 * This example quantifies the difference for each platform using
 * model-predicted peak power over the standard workload mix.
 */
#include <algorithm>
#include <iostream>

#include "core/chaos.hpp"
#include "stats/descriptive.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const double rack_budget_w = 5000.0;

    CampaignConfig config;
    config.runsPerWorkload = 2;
    config.numMachines = 3;
    config.run.durationScale = 0.5;
    config.seed = 2002;

    std::cout << "== Rack provisioning with CHAOS models (budget "
              << formatDouble(rack_budget_w, 0) << " W) ==\n\n";

    TextTable table({"Platform", "Nameplate (W)",
                     "Modeled P99 (W)", "Servers by nameplate",
                     "Servers by model", "Extra capacity"});

    for (MachineClass mc :
         {MachineClass::Core2, MachineClass::Athlon,
          MachineClass::Opteron, MachineClass::XeonSas}) {
        const MachineSpec spec = machineSpecFor(mc);
        ClusterCampaign campaign = runClusterCampaign(mc, config);
        MachinePowerModel model = fitDefaultModel(campaign, config);

        // Model-predicted per-machine power across the whole
        // campaign; provision against its 99th percentile.
        std::vector<double> predicted;
        for (size_t r = 0; r < campaign.data.numRows(); ++r) {
            predicted.push_back(model.predictFromCatalogRow(
                campaign.data.features().row(r)));
        }
        const double p99 = quantile(predicted, 0.99);

        const auto by_nameplate = static_cast<size_t>(
            rack_budget_w / spec.maxPowerW);
        const auto by_model =
            static_cast<size_t>(rack_budget_w / p99);
        const double extra =
            by_nameplate > 0
                ? 100.0 *
                      (static_cast<double>(by_model) /
                           static_cast<double>(by_nameplate) -
                       1.0)
                : 0.0;

        table.addRow({spec.name, formatDouble(spec.maxPowerW, 0),
                      formatDouble(p99, 1),
                      std::to_string(by_nameplate),
                      std::to_string(by_model),
                      "+" + formatDouble(extra, 0) + "%"});
    }
    std::cout << table.render();

    std::cout
        << "\nWorkloads rarely pin every component at once, so the "
           "modeled P99 sits below\nthe nameplate envelope — the "
           "provisioning headroom the paper's introduction\n"
           "motivates (power infrastructure is ~80% of facility "
           "cost).\n";
    return 0;
}
