/**
 * @file
 * Quickstart: the whole CHAOS pipeline on one mobile-class cluster.
 *
 * Builds a 5-machine Core 2 Duo cluster, runs the four MapReduce-style
 * workloads, selects features with Algorithm 1, fits the quadratic
 * cluster model, and reports cross-validated accuracy — then deploys
 * the model online against a fresh, never-seen run.
 */
#include <iostream>

#include "core/chaos.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workloads/standard_workloads.hpp"

using namespace chaos;

int
main()
{
    CampaignConfig config;
    config.runsPerWorkload = 3;     // Keep the demo quick.
    config.seed = 42;

    std::cout << "== CHAOS quickstart: Core 2 Duo cluster ==\n\n";
    std::cout << "collecting traces (4 workloads x "
              << config.runsPerWorkload << " runs x "
              << config.numMachines << " machines)...\n";

    ClusterCampaign campaign =
        runClusterCampaign(MachineClass::Core2, config);

    std::cout << "dataset: " << campaign.data.numRows()
              << " machine-seconds, " << campaign.data.numFeatures()
              << " counters in the catalog\n\n";

    std::cout << "Algorithm 1 funnel: " << campaign.selection.catalogSize
              << " -> " << campaign.selection.afterConstantDrop
              << " (non-constant) -> "
              << campaign.selection.afterCorrelation
              << " (decorrelated) -> "
              << campaign.selection.afterCoDependency
              << " (co-dependency) -> "
              << campaign.selection.selected.size()
              << " cluster features\n\nselected counters:\n";
    for (const auto &name : campaign.selection.selected)
        std::cout << "  " << name << "\n";

    // Cross-validated accuracy of the quadratic cluster model.
    const FeatureSet features = clusterFeatureSet(campaign.selection);
    const EvaluationOutcome outcome = evaluateTechnique(
        campaign.data, features, ModelType::Quadratic,
        campaign.envelopes, config.evaluation);

    std::cout << "\nquadratic model, cluster features ("
              << features.counters.size() << " counters):\n";
    std::cout << "  avg machine DRE : "
              << formatPercent(outcome.avgDre, 1) << "\n";
    std::cout << "  avg rMSE        : "
              << formatDouble(outcome.avgRmse, 2) << " W\n";
    std::cout << "  median rel err  : "
              << formatPercent(outcome.medianRelErr, 2) << "\n";

    // Deploy the pooled model online against a brand-new run.
    MachinePowerModel deployed = fitDefaultModel(campaign, config);
    OnlinePowerEstimator estimator(deployed);

    Cluster fresh = Cluster::homogeneous(MachineClass::Core2, 1, 777);
    SortWorkload sort_workload;
    RunResult run =
        runWorkload(fresh, sort_workload, 999, 0, config.run);
    for (const auto &record : run.machineRecords[0]) {
        estimator.estimateWithReference(record.counters,
                                        record.measuredPowerW);
    }
    std::cout << "\nonline deployment on an unseen Sort run ("
              << estimator.samples() << " s):\n";
    std::cout << "  mean estimate   : "
              << formatDouble(estimator.meanEstimateW(), 1) << " W\n";
    std::cout << "  residual mean   : "
              << formatDouble(estimator.residuals().mean(), 2)
              << " W, sd "
              << formatDouble(estimator.residuals().stddev(), 2)
              << " W\n";
    return 0;
}
