/**
 * @file
 * Meter-free monitoring of a heterogeneous cluster — the paper's
 * "cost-saving replacement for instrumentation" use case, composed
 * across machine classes per Eq. 5.
 *
 * Models are trained once per machine class on instrumented
 * characterization clusters; production machines then report only
 * OS counters. The example streams a mixed Core2+Opteron cluster
 * through the estimators and compares the estimate to the (hidden)
 * meters after the fact.
 */
#include <iostream>

#include "core/chaos.hpp"
#include "stats/metrics.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workloads/standard_workloads.hpp"

using namespace chaos;

int
main()
{
    CampaignConfig config;
    config.runsPerWorkload = 3;
    config.numMachines = 3;
    config.seed = 3003;

    std::cout << "== Meter-free heterogeneous cluster monitor ==\n\n";
    std::cout << "training per-class models on characterization "
                 "clusters...\n";

    ClusterPowerModel composed;
    for (MachineClass mc :
         {MachineClass::Core2, MachineClass::Opteron}) {
        ClusterCampaign campaign = runClusterCampaign(mc, config);
        composed.setClassModel(mc,
                               fitDefaultModel(campaign, config));
    }

    // Production: a 6-machine mixed cluster, never seen in training.
    Cluster prod = Cluster::heterogeneous(
        {{MachineClass::Core2, 3}, {MachineClass::Opteron, 3}},
        99999);
    PageRankWorkload pagerank;
    RunConfig run_config = config.run;
    run_config.durationScale = 0.5;
    const RunResult run =
        runWorkload(prod, pagerank, 31337, 0, run_config);

    // Stream estimates; print a line per simulated minute.
    const auto metered = run.clusterPowerSeries();
    std::vector<double> estimated(metered.size(), 0.0);
    for (size_t m = 0; m < prod.size(); ++m) {
        const MachineClass mc = prod.machine(m).spec().machineClass;
        for (size_t t = 0; t < run.machineRecords[m].size(); ++t) {
            estimated[t] += composed.predictMachine(
                mc, run.machineRecords[m][t].counters);
        }
    }

    TextTable table({"Minute", "Estimated (W)", "Metered (W)",
                     "Error"});
    for (size_t t = 0; t < metered.size(); t += 60) {
        table.addRow(
            {std::to_string(t / 60), formatDouble(estimated[t], 1),
             formatDouble(metered[t], 1),
             formatDouble(estimated[t] - metered[t], 1) + " W"});
    }
    std::cout << "\n" << table.render();

    const double dre = dynamicRangeError(estimated, metered,
                                         prod.totalIdlePowerW(),
                                         prod.totalMaxPowerW());
    std::cout << "\nwhole-run cluster accuracy: rMSE "
              << formatDouble(
                     rootMeanSquaredError(estimated, metered), 2)
              << " W, DRE " << formatPercent(dre, 1)
              << " — within the paper's 12% worst case for "
                 "heterogeneous composition.\n";
    return 0;
}
