/**
 * @file
 * Model-based power capping — one of the paper's motivating
 * applications (Section I / V-D).
 *
 * A cluster operator enforces a power cap without per-machine meters
 * by using CHAOS model estimates. The example:
 *
 *  1. trains a cluster model during a characterization campaign,
 *  2. measures the model's residual spread on held-out runs to size
 *     the guard band (inaccurate models => conservative caps =>
 *     stranded power, exactly the paper's argument),
 *  3. replays a workload against a cap and reports how often the
 *     model-driven throttle fires and how much headroom the guard
 *     band strands.
 */
#include <algorithm>
#include <iostream>

#include "core/capping.hpp"
#include "core/chaos.hpp"
#include "stats/descriptive.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workloads/standard_workloads.hpp"

using namespace chaos;

int
main()
{
    CampaignConfig config;
    config.runsPerWorkload = 3;
    config.seed = 1001;

    std::cout << "== CHAOS power capping on an Athlon cluster ==\n\n";
    ClusterCampaign campaign =
        runClusterCampaign(MachineClass::Athlon, config);
    MachinePowerModel model = fitDefaultModel(campaign, config);

    // --- Guard band from held-out residuals. ---
    Cluster holdout = Cluster::homogeneous(
        MachineClass::Athlon, config.numMachines, 777);
    SortWorkload sort_workload;
    RunResult validation =
        runWorkload(holdout, sort_workload, 4242, 0, config.run);

    std::vector<double> residuals;
    for (const auto &records : validation.machineRecords) {
        for (const auto &record : records) {
            residuals.push_back(
                record.measuredPowerW -
                model.predictFromCatalogRow(record.counters));
        }
    }
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    std::cout << "model residuals on a held-out run: bias "
              << formatDouble(band.biasW(), 2) << " W, sd "
              << formatDouble(band.sigmaW(), 2) << " W\n";
    std::cout << "cluster guard band (3 sigma, " << config.numMachines
              << " machines, noise adds in quadrature): "
              << formatDouble(band.clusterW(config.numMachines), 1)
              << " W\n\n";

    // --- Enforce a cap on a fresh Prime run. ---
    const double cap_w = 480.0;  // Rack budget for these 5 machines.
    PowerCapController controller(cap_w, band, config.numMachines);
    const double throttle_at = controller.thresholdW();
    std::cout << "cap " << formatDouble(cap_w, 0)
              << " W, model-driven throttle threshold "
              << formatDouble(throttle_at, 0) << " W\n\n";

    Cluster prod = Cluster::homogeneous(MachineClass::Athlon,
                                        config.numMachines, 888);
    PrimeWorkload prime;
    RunResult run = runWorkload(prod, prime, 5151, 0, config.run);

    size_t violation_seconds = 0;
    const size_t length = run.machineRecords[0].size();
    for (size_t t = 0; t < length; ++t) {
        double estimated = 0.0, actual = 0.0;
        for (const auto &records : run.machineRecords) {
            estimated +=
                model.predictFromCatalogRow(records[t].counters);
            actual += records[t].measuredPowerW;
        }
        controller.evaluate(estimated);
        if (actual > cap_w)
            ++violation_seconds;
    }

    TextTable table({"Metric", "Value"});
    table.addRow({"run length", std::to_string(length) + " s"});
    table.addRow({"seconds the model would throttle",
                  std::to_string(controller.throttleSeconds())});
    table.addRow({"actual cap violations (metered)",
                  std::to_string(violation_seconds)});
    table.addRow({"stranded capacity (cap - threshold)",
                  formatDouble(controller.meanStrandedW(), 1) + " W"});
    std::cout << table.render();

    std::cout << "\nThe tighter the model (smaller guard band), the "
                 "less power is stranded —\nthe paper's argument for "
                 "chasing accuracy in model-based capping.\n";
    return 0;
}
