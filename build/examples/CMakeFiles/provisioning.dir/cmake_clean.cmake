file(REMOVE_RECURSE
  "CMakeFiles/provisioning.dir/provisioning.cpp.o"
  "CMakeFiles/provisioning.dir/provisioning.cpp.o.d"
  "provisioning"
  "provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
