file(REMOVE_RECURSE
  "CMakeFiles/save_and_deploy.dir/save_and_deploy.cpp.o"
  "CMakeFiles/save_and_deploy.dir/save_and_deploy.cpp.o.d"
  "save_and_deploy"
  "save_and_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_and_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
