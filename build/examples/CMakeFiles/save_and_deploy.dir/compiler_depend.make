# Empty compiler generated dependencies file for save_and_deploy.
# This may be replaced when dependencies are built.
