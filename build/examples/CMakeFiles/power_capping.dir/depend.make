# Empty dependencies file for power_capping.
# This may be replaced when dependencies are built.
