# Empty compiler generated dependencies file for hetero_monitor.
# This may be replaced when dependencies are built.
