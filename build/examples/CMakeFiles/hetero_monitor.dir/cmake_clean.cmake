file(REMOVE_RECURSE
  "CMakeFiles/hetero_monitor.dir/hetero_monitor.cpp.o"
  "CMakeFiles/hetero_monitor.dir/hetero_monitor.cpp.o.d"
  "hetero_monitor"
  "hetero_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
