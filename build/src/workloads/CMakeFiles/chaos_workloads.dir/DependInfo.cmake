
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/runner.cpp" "src/workloads/CMakeFiles/chaos_workloads.dir/runner.cpp.o" "gcc" "src/workloads/CMakeFiles/chaos_workloads.dir/runner.cpp.o.d"
  "/root/repo/src/workloads/standard_workloads.cpp" "src/workloads/CMakeFiles/chaos_workloads.dir/standard_workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/chaos_workloads.dir/standard_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oscounters/CMakeFiles/chaos_oscounters.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
