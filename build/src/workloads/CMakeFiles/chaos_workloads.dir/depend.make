# Empty dependencies file for chaos_workloads.
# This may be replaced when dependencies are built.
