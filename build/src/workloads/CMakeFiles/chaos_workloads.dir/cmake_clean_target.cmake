file(REMOVE_RECURSE
  "libchaos_workloads.a"
)
