file(REMOVE_RECURSE
  "CMakeFiles/chaos_workloads.dir/runner.cpp.o"
  "CMakeFiles/chaos_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/chaos_workloads.dir/standard_workloads.cpp.o"
  "CMakeFiles/chaos_workloads.dir/standard_workloads.cpp.o.d"
  "libchaos_workloads.a"
  "libchaos_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
