file(REMOVE_RECURSE
  "CMakeFiles/chaos_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/chaos_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/chaos_linalg.dir/matrix.cpp.o"
  "CMakeFiles/chaos_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/chaos_linalg.dir/qr.cpp.o"
  "CMakeFiles/chaos_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/chaos_linalg.dir/solve.cpp.o"
  "CMakeFiles/chaos_linalg.dir/solve.cpp.o.d"
  "libchaos_linalg.a"
  "libchaos_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
