# Empty dependencies file for chaos_linalg.
# This may be replaced when dependencies are built.
