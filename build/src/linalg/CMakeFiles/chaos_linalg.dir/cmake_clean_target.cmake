file(REMOVE_RECURSE
  "libchaos_linalg.a"
)
