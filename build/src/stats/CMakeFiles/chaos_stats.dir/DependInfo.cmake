
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/chaos_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/chaos_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/chaos_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/chaos_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/chaos_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/chaos_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/kfold.cpp" "src/stats/CMakeFiles/chaos_stats.dir/kfold.cpp.o" "gcc" "src/stats/CMakeFiles/chaos_stats.dir/kfold.cpp.o.d"
  "/root/repo/src/stats/metrics.cpp" "src/stats/CMakeFiles/chaos_stats.dir/metrics.cpp.o" "gcc" "src/stats/CMakeFiles/chaos_stats.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
