file(REMOVE_RECURSE
  "CMakeFiles/chaos_stats.dir/correlation.cpp.o"
  "CMakeFiles/chaos_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/chaos_stats.dir/descriptive.cpp.o"
  "CMakeFiles/chaos_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/chaos_stats.dir/distributions.cpp.o"
  "CMakeFiles/chaos_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/chaos_stats.dir/kfold.cpp.o"
  "CMakeFiles/chaos_stats.dir/kfold.cpp.o.d"
  "CMakeFiles/chaos_stats.dir/metrics.cpp.o"
  "CMakeFiles/chaos_stats.dir/metrics.cpp.o.d"
  "libchaos_stats.a"
  "libchaos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
