file(REMOVE_RECURSE
  "libchaos_stats.a"
)
