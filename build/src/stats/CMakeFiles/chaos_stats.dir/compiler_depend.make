# Empty compiler generated dependencies file for chaos_stats.
# This may be replaced when dependencies are built.
