file(REMOVE_RECURSE
  "libchaos_sim.a"
)
