file(REMOVE_RECURSE
  "CMakeFiles/chaos_sim.dir/cluster.cpp.o"
  "CMakeFiles/chaos_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/chaos_sim.dir/dvfs.cpp.o"
  "CMakeFiles/chaos_sim.dir/dvfs.cpp.o.d"
  "CMakeFiles/chaos_sim.dir/machine.cpp.o"
  "CMakeFiles/chaos_sim.dir/machine.cpp.o.d"
  "CMakeFiles/chaos_sim.dir/machine_spec.cpp.o"
  "CMakeFiles/chaos_sim.dir/machine_spec.cpp.o.d"
  "CMakeFiles/chaos_sim.dir/power_meter.cpp.o"
  "CMakeFiles/chaos_sim.dir/power_meter.cpp.o.d"
  "CMakeFiles/chaos_sim.dir/truth_power.cpp.o"
  "CMakeFiles/chaos_sim.dir/truth_power.cpp.o.d"
  "libchaos_sim.a"
  "libchaos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
