
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/chaos_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/chaos_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/dvfs.cpp" "src/sim/CMakeFiles/chaos_sim.dir/dvfs.cpp.o" "gcc" "src/sim/CMakeFiles/chaos_sim.dir/dvfs.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/chaos_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/chaos_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/machine_spec.cpp" "src/sim/CMakeFiles/chaos_sim.dir/machine_spec.cpp.o" "gcc" "src/sim/CMakeFiles/chaos_sim.dir/machine_spec.cpp.o.d"
  "/root/repo/src/sim/power_meter.cpp" "src/sim/CMakeFiles/chaos_sim.dir/power_meter.cpp.o" "gcc" "src/sim/CMakeFiles/chaos_sim.dir/power_meter.cpp.o.d"
  "/root/repo/src/sim/truth_power.cpp" "src/sim/CMakeFiles/chaos_sim.dir/truth_power.cpp.o" "gcc" "src/sim/CMakeFiles/chaos_sim.dir/truth_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
