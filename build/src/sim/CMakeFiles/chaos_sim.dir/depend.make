# Empty dependencies file for chaos_sim.
# This may be replaced when dependencies are built.
