# Empty dependencies file for chaos_util.
# This may be replaced when dependencies are built.
