file(REMOVE_RECURSE
  "libchaos_util.a"
)
