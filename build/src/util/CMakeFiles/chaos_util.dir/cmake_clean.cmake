file(REMOVE_RECURSE
  "CMakeFiles/chaos_util.dir/csv.cpp.o"
  "CMakeFiles/chaos_util.dir/csv.cpp.o.d"
  "CMakeFiles/chaos_util.dir/logging.cpp.o"
  "CMakeFiles/chaos_util.dir/logging.cpp.o.d"
  "CMakeFiles/chaos_util.dir/random.cpp.o"
  "CMakeFiles/chaos_util.dir/random.cpp.o.d"
  "CMakeFiles/chaos_util.dir/string_utils.cpp.o"
  "CMakeFiles/chaos_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/chaos_util.dir/table.cpp.o"
  "CMakeFiles/chaos_util.dir/table.cpp.o.d"
  "libchaos_util.a"
  "libchaos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
