
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capping.cpp" "src/core/CMakeFiles/chaos_core.dir/capping.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/capping.cpp.o.d"
  "/root/repo/src/core/cluster_model.cpp" "src/core/CMakeFiles/chaos_core.dir/cluster_model.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/cluster_model.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/chaos_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/chaos_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/feature_selection.cpp" "src/core/CMakeFiles/chaos_core.dir/feature_selection.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/feature_selection.cpp.o.d"
  "/root/repo/src/core/feature_sets.cpp" "src/core/CMakeFiles/chaos_core.dir/feature_sets.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/feature_sets.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/chaos_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/model_store.cpp" "src/core/CMakeFiles/chaos_core.dir/model_store.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/model_store.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/chaos_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pooling.cpp" "src/core/CMakeFiles/chaos_core.dir/pooling.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/pooling.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/chaos_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/chaos_core.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/chaos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/oscounters/CMakeFiles/chaos_oscounters.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chaos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chaos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/chaos_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
