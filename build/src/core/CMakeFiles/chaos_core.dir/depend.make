# Empty dependencies file for chaos_core.
# This may be replaced when dependencies are built.
