file(REMOVE_RECURSE
  "libchaos_core.a"
)
