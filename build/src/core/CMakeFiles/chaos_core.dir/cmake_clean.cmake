file(REMOVE_RECURSE
  "CMakeFiles/chaos_core.dir/capping.cpp.o"
  "CMakeFiles/chaos_core.dir/capping.cpp.o.d"
  "CMakeFiles/chaos_core.dir/cluster_model.cpp.o"
  "CMakeFiles/chaos_core.dir/cluster_model.cpp.o.d"
  "CMakeFiles/chaos_core.dir/energy.cpp.o"
  "CMakeFiles/chaos_core.dir/energy.cpp.o.d"
  "CMakeFiles/chaos_core.dir/evaluation.cpp.o"
  "CMakeFiles/chaos_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/chaos_core.dir/feature_selection.cpp.o"
  "CMakeFiles/chaos_core.dir/feature_selection.cpp.o.d"
  "CMakeFiles/chaos_core.dir/feature_sets.cpp.o"
  "CMakeFiles/chaos_core.dir/feature_sets.cpp.o.d"
  "CMakeFiles/chaos_core.dir/framework.cpp.o"
  "CMakeFiles/chaos_core.dir/framework.cpp.o.d"
  "CMakeFiles/chaos_core.dir/model_store.cpp.o"
  "CMakeFiles/chaos_core.dir/model_store.cpp.o.d"
  "CMakeFiles/chaos_core.dir/online.cpp.o"
  "CMakeFiles/chaos_core.dir/online.cpp.o.d"
  "CMakeFiles/chaos_core.dir/pooling.cpp.o"
  "CMakeFiles/chaos_core.dir/pooling.cpp.o.d"
  "CMakeFiles/chaos_core.dir/sweep.cpp.o"
  "CMakeFiles/chaos_core.dir/sweep.cpp.o.d"
  "libchaos_core.a"
  "libchaos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
