file(REMOVE_RECURSE
  "libchaos_oscounters.a"
)
