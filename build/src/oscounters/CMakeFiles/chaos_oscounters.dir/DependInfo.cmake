
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oscounters/counter_catalog.cpp" "src/oscounters/CMakeFiles/chaos_oscounters.dir/counter_catalog.cpp.o" "gcc" "src/oscounters/CMakeFiles/chaos_oscounters.dir/counter_catalog.cpp.o.d"
  "/root/repo/src/oscounters/etw_session.cpp" "src/oscounters/CMakeFiles/chaos_oscounters.dir/etw_session.cpp.o" "gcc" "src/oscounters/CMakeFiles/chaos_oscounters.dir/etw_session.cpp.o.d"
  "/root/repo/src/oscounters/sampler.cpp" "src/oscounters/CMakeFiles/chaos_oscounters.dir/sampler.cpp.o" "gcc" "src/oscounters/CMakeFiles/chaos_oscounters.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
