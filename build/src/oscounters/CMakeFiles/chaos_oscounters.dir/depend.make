# Empty dependencies file for chaos_oscounters.
# This may be replaced when dependencies are built.
