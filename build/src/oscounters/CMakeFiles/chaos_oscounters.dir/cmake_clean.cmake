file(REMOVE_RECURSE
  "CMakeFiles/chaos_oscounters.dir/counter_catalog.cpp.o"
  "CMakeFiles/chaos_oscounters.dir/counter_catalog.cpp.o.d"
  "CMakeFiles/chaos_oscounters.dir/etw_session.cpp.o"
  "CMakeFiles/chaos_oscounters.dir/etw_session.cpp.o.d"
  "CMakeFiles/chaos_oscounters.dir/sampler.cpp.o"
  "CMakeFiles/chaos_oscounters.dir/sampler.cpp.o.d"
  "libchaos_oscounters.a"
  "libchaos_oscounters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_oscounters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
