file(REMOVE_RECURSE
  "CMakeFiles/chaos_cli.dir/cli.cpp.o"
  "CMakeFiles/chaos_cli.dir/cli.cpp.o.d"
  "libchaos_cli.a"
  "libchaos_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
