file(REMOVE_RECURSE
  "libchaos_cli.a"
)
