
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cli.cpp" "src/cli/CMakeFiles/chaos_cli.dir/cli.cpp.o" "gcc" "src/cli/CMakeFiles/chaos_cli.dir/cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chaos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chaos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chaos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/oscounters/CMakeFiles/chaos_oscounters.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/chaos_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/chaos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
