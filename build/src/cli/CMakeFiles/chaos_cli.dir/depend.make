# Empty dependencies file for chaos_cli.
# This may be replaced when dependencies are built.
