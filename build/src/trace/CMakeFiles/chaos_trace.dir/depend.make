# Empty dependencies file for chaos_trace.
# This may be replaced when dependencies are built.
