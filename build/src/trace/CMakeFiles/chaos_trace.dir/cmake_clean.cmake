file(REMOVE_RECURSE
  "CMakeFiles/chaos_trace.dir/dataset.cpp.o"
  "CMakeFiles/chaos_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/chaos_trace.dir/trace_io.cpp.o"
  "CMakeFiles/chaos_trace.dir/trace_io.cpp.o.d"
  "libchaos_trace.a"
  "libchaos_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
