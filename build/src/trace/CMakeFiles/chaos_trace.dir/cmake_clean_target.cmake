file(REMOVE_RECURSE
  "libchaos_trace.a"
)
