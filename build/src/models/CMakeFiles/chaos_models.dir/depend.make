# Empty dependencies file for chaos_models.
# This may be replaced when dependencies are built.
