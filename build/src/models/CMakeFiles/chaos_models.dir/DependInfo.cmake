
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/factory.cpp" "src/models/CMakeFiles/chaos_models.dir/factory.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/factory.cpp.o.d"
  "/root/repo/src/models/lasso.cpp" "src/models/CMakeFiles/chaos_models.dir/lasso.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/lasso.cpp.o.d"
  "/root/repo/src/models/linear.cpp" "src/models/CMakeFiles/chaos_models.dir/linear.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/linear.cpp.o.d"
  "/root/repo/src/models/mars.cpp" "src/models/CMakeFiles/chaos_models.dir/mars.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/mars.cpp.o.d"
  "/root/repo/src/models/model.cpp" "src/models/CMakeFiles/chaos_models.dir/model.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/model.cpp.o.d"
  "/root/repo/src/models/serialize.cpp" "src/models/CMakeFiles/chaos_models.dir/serialize.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/serialize.cpp.o.d"
  "/root/repo/src/models/stepwise.cpp" "src/models/CMakeFiles/chaos_models.dir/stepwise.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/stepwise.cpp.o.d"
  "/root/repo/src/models/switching.cpp" "src/models/CMakeFiles/chaos_models.dir/switching.cpp.o" "gcc" "src/models/CMakeFiles/chaos_models.dir/switching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/chaos_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
