file(REMOVE_RECURSE
  "libchaos_models.a"
)
