file(REMOVE_RECURSE
  "CMakeFiles/chaos_models.dir/factory.cpp.o"
  "CMakeFiles/chaos_models.dir/factory.cpp.o.d"
  "CMakeFiles/chaos_models.dir/lasso.cpp.o"
  "CMakeFiles/chaos_models.dir/lasso.cpp.o.d"
  "CMakeFiles/chaos_models.dir/linear.cpp.o"
  "CMakeFiles/chaos_models.dir/linear.cpp.o.d"
  "CMakeFiles/chaos_models.dir/mars.cpp.o"
  "CMakeFiles/chaos_models.dir/mars.cpp.o.d"
  "CMakeFiles/chaos_models.dir/model.cpp.o"
  "CMakeFiles/chaos_models.dir/model.cpp.o.d"
  "CMakeFiles/chaos_models.dir/serialize.cpp.o"
  "CMakeFiles/chaos_models.dir/serialize.cpp.o.d"
  "CMakeFiles/chaos_models.dir/stepwise.cpp.o"
  "CMakeFiles/chaos_models.dir/stepwise.cpp.o.d"
  "CMakeFiles/chaos_models.dir/switching.cpp.o"
  "CMakeFiles/chaos_models.dir/switching.cpp.o.d"
  "libchaos_models.a"
  "libchaos_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
