# Empty compiler generated dependencies file for chaos_tool.
# This may be replaced when dependencies are built.
