file(REMOVE_RECURSE
  "CMakeFiles/chaos_tool.dir/main.cpp.o"
  "CMakeFiles/chaos_tool.dir/main.cpp.o.d"
  "chaos"
  "chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
