# Empty dependencies file for fig4_prime_models.
# This may be replaced when dependencies are built.
