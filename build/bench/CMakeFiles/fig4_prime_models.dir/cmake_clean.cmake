file(REMOVE_RECURSE
  "CMakeFiles/fig4_prime_models.dir/fig4_prime_models.cpp.o"
  "CMakeFiles/fig4_prime_models.dir/fig4_prime_models.cpp.o.d"
  "fig4_prime_models"
  "fig4_prime_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prime_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
