file(REMOVE_RECURSE
  "CMakeFiles/hetero_cluster.dir/hetero_cluster.cpp.o"
  "CMakeFiles/hetero_cluster.dir/hetero_cluster.cpp.o.d"
  "hetero_cluster"
  "hetero_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
