# Empty compiler generated dependencies file for hetero_cluster.
# This may be replaced when dependencies are built.
