file(REMOVE_RECURSE
  "CMakeFiles/overhead.dir/overhead.cpp.o"
  "CMakeFiles/overhead.dir/overhead.cpp.o.d"
  "overhead"
  "overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
