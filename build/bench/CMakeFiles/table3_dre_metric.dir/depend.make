# Empty dependencies file for table3_dre_metric.
# This may be replaced when dependencies are built.
