file(REMOVE_RECURSE
  "CMakeFiles/table3_dre_metric.dir/table3_dre_metric.cpp.o"
  "CMakeFiles/table3_dre_metric.dir/table3_dre_metric.cpp.o.d"
  "table3_dre_metric"
  "table3_dre_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dre_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
