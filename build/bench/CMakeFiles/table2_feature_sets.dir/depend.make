# Empty dependencies file for table2_feature_sets.
# This may be replaced when dependencies are built.
