file(REMOVE_RECURSE
  "CMakeFiles/table2_feature_sets.dir/table2_feature_sets.cpp.o"
  "CMakeFiles/table2_feature_sets.dir/table2_feature_sets.cpp.o.d"
  "table2_feature_sets"
  "table2_feature_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_feature_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
