file(REMOVE_RECURSE
  "CMakeFiles/ablation_corr_threshold.dir/ablation_corr_threshold.cpp.o"
  "CMakeFiles/ablation_corr_threshold.dir/ablation_corr_threshold.cpp.o.d"
  "ablation_corr_threshold"
  "ablation_corr_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_corr_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
