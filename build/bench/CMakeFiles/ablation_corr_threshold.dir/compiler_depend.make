# Empty compiler generated dependencies file for ablation_corr_threshold.
# This may be replaced when dependencies are built.
