file(REMOVE_RECURSE
  "CMakeFiles/micro_models.dir/micro_models.cpp.o"
  "CMakeFiles/micro_models.dir/micro_models.cpp.o.d"
  "micro_models"
  "micro_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
