# Empty compiler generated dependencies file for micro_models.
# This may be replaced when dependencies are built.
