file(REMOVE_RECURSE
  "CMakeFiles/future_percore.dir/future_percore.cpp.o"
  "CMakeFiles/future_percore.dir/future_percore.cpp.o.d"
  "future_percore"
  "future_percore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_percore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
