# Empty dependencies file for future_percore.
# This may be replaced when dependencies are built.
