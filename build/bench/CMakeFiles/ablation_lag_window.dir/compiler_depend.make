# Empty compiler generated dependencies file for ablation_lag_window.
# This may be replaced when dependencies are built.
