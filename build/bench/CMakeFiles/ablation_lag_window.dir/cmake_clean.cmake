file(REMOVE_RECURSE
  "CMakeFiles/ablation_lag_window.dir/ablation_lag_window.cpp.o"
  "CMakeFiles/ablation_lag_window.dir/ablation_lag_window.cpp.o.d"
  "ablation_lag_window"
  "ablation_lag_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lag_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
