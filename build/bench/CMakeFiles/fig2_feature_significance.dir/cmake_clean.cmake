file(REMOVE_RECURSE
  "CMakeFiles/fig2_feature_significance.dir/fig2_feature_significance.cpp.o"
  "CMakeFiles/fig2_feature_significance.dir/fig2_feature_significance.cpp.o.d"
  "fig2_feature_significance"
  "fig2_feature_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_feature_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
