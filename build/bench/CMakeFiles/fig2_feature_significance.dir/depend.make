# Empty dependencies file for fig2_feature_significance.
# This may be replaced when dependencies are built.
