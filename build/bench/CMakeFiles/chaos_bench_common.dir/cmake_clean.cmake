file(REMOVE_RECURSE
  "../lib/libchaos_bench_common.a"
  "../lib/libchaos_bench_common.pdb"
  "CMakeFiles/chaos_bench_common.dir/common/bench_support.cpp.o"
  "CMakeFiles/chaos_bench_common.dir/common/bench_support.cpp.o.d"
  "CMakeFiles/chaos_bench_common.dir/common/model_sweep_figure.cpp.o"
  "CMakeFiles/chaos_bench_common.dir/common/model_sweep_figure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
