file(REMOVE_RECURSE
  "../lib/libchaos_bench_common.a"
)
