# Empty dependencies file for chaos_bench_common.
# This may be replaced when dependencies are built.
