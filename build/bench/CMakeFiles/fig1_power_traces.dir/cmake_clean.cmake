file(REMOVE_RECURSE
  "CMakeFiles/fig1_power_traces.dir/fig1_power_traces.cpp.o"
  "CMakeFiles/fig1_power_traces.dir/fig1_power_traces.cpp.o.d"
  "fig1_power_traces"
  "fig1_power_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_power_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
