# Empty compiler generated dependencies file for fig1_power_traces.
# This may be replaced when dependencies are built.
