# Empty dependencies file for fig5_worstcase_trace.
# This may be replaced when dependencies are built.
