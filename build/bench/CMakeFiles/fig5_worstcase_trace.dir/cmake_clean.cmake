file(REMOVE_RECURSE
  "CMakeFiles/fig5_worstcase_trace.dir/fig5_worstcase_trace.cpp.o"
  "CMakeFiles/fig5_worstcase_trace.dir/fig5_worstcase_trace.cpp.o.d"
  "fig5_worstcase_trace"
  "fig5_worstcase_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_worstcase_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
