# Empty dependencies file for table4_best_models.
# This may be replaced when dependencies are built.
