file(REMOVE_RECURSE
  "CMakeFiles/table4_best_models.dir/table4_best_models.cpp.o"
  "CMakeFiles/table4_best_models.dir/table4_best_models.cpp.o.d"
  "table4_best_models"
  "table4_best_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_best_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
