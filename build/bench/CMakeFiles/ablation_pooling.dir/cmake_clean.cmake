file(REMOVE_RECURSE
  "CMakeFiles/ablation_pooling.dir/ablation_pooling.cpp.o"
  "CMakeFiles/ablation_pooling.dir/ablation_pooling.cpp.o.d"
  "ablation_pooling"
  "ablation_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
