# Empty dependencies file for ablation_pooling.
# This may be replaced when dependencies are built.
