# Empty compiler generated dependencies file for fig3_pagerank_models.
# This may be replaced when dependencies are built.
