file(REMOVE_RECURSE
  "CMakeFiles/fig3_pagerank_models.dir/fig3_pagerank_models.cpp.o"
  "CMakeFiles/fig3_pagerank_models.dir/fig3_pagerank_models.cpp.o.d"
  "fig3_pagerank_models"
  "fig3_pagerank_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pagerank_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
