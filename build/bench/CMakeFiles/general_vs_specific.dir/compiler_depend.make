# Empty compiler generated dependencies file for general_vs_specific.
# This may be replaced when dependencies are built.
