file(REMOVE_RECURSE
  "CMakeFiles/general_vs_specific.dir/general_vs_specific.cpp.o"
  "CMakeFiles/general_vs_specific.dir/general_vs_specific.cpp.o.d"
  "general_vs_specific"
  "general_vs_specific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_vs_specific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
