file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_correlation.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_distributions.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_distributions.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_kfold.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_kfold.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_metrics.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_metrics.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
