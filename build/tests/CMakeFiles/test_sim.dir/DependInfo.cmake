
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_activity.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_activity.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_activity.cpp.o.d"
  "/root/repo/tests/sim/test_cluster.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cluster.cpp.o.d"
  "/root/repo/tests/sim/test_dvfs.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_dvfs.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_dvfs.cpp.o.d"
  "/root/repo/tests/sim/test_future_server.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_future_server.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_future_server.cpp.o.d"
  "/root/repo/tests/sim/test_machine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "/root/repo/tests/sim/test_machine_spec.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_machine_spec.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine_spec.cpp.o.d"
  "/root/repo/tests/sim/test_power_meter.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_power_meter.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_power_meter.cpp.o.d"
  "/root/repo/tests/sim/test_truth_power.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_truth_power.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_truth_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chaos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chaos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chaos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/oscounters/CMakeFiles/chaos_oscounters.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/chaos_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/chaos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
