file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_activity.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_activity.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cluster.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cluster.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_dvfs.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_dvfs.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_future_server.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_future_server.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine_spec.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_machine_spec.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_power_meter.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_power_meter.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_truth_power.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_truth_power.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
