file(REMOVE_RECURSE
  "CMakeFiles/test_oscounters.dir/oscounters/test_catalog.cpp.o"
  "CMakeFiles/test_oscounters.dir/oscounters/test_catalog.cpp.o.d"
  "CMakeFiles/test_oscounters.dir/oscounters/test_counter_statistics.cpp.o"
  "CMakeFiles/test_oscounters.dir/oscounters/test_counter_statistics.cpp.o.d"
  "CMakeFiles/test_oscounters.dir/oscounters/test_etw.cpp.o"
  "CMakeFiles/test_oscounters.dir/oscounters/test_etw.cpp.o.d"
  "CMakeFiles/test_oscounters.dir/oscounters/test_sampler.cpp.o"
  "CMakeFiles/test_oscounters.dir/oscounters/test_sampler.cpp.o.d"
  "test_oscounters"
  "test_oscounters.pdb"
  "test_oscounters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oscounters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
