# Empty compiler generated dependencies file for test_oscounters.
# This may be replaced when dependencies are built.
