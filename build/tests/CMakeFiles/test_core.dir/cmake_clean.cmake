file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_capping.cpp.o"
  "CMakeFiles/test_core.dir/core/test_capping.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cluster_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cluster_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_evaluation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_evaluation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_feature_selection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_feature_selection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_feature_sets.cpp.o"
  "CMakeFiles/test_core.dir/core/test_feature_sets.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_framework.cpp.o"
  "CMakeFiles/test_core.dir/core/test_framework.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model_store.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model_store.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pooling.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pooling.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
