
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_capping.cpp" "tests/CMakeFiles/test_core.dir/core/test_capping.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_capping.cpp.o.d"
  "/root/repo/tests/core/test_cluster_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_cluster_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cluster_model.cpp.o.d"
  "/root/repo/tests/core/test_energy.cpp" "tests/CMakeFiles/test_core.dir/core/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_energy.cpp.o.d"
  "/root/repo/tests/core/test_evaluation.cpp" "tests/CMakeFiles/test_core.dir/core/test_evaluation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_evaluation.cpp.o.d"
  "/root/repo/tests/core/test_feature_selection.cpp" "tests/CMakeFiles/test_core.dir/core/test_feature_selection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_feature_selection.cpp.o.d"
  "/root/repo/tests/core/test_feature_sets.cpp" "tests/CMakeFiles/test_core.dir/core/test_feature_sets.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_feature_sets.cpp.o.d"
  "/root/repo/tests/core/test_framework.cpp" "tests/CMakeFiles/test_core.dir/core/test_framework.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_framework.cpp.o.d"
  "/root/repo/tests/core/test_model_store.cpp" "tests/CMakeFiles/test_core.dir/core/test_model_store.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model_store.cpp.o.d"
  "/root/repo/tests/core/test_pooling.cpp" "tests/CMakeFiles/test_core.dir/core/test_pooling.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pooling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chaos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chaos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chaos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/oscounters/CMakeFiles/chaos_oscounters.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/chaos_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/chaos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
