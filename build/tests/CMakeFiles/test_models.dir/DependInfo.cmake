
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models/test_factory.cpp" "tests/CMakeFiles/test_models.dir/models/test_factory.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_factory.cpp.o.d"
  "/root/repo/tests/models/test_lasso.cpp" "tests/CMakeFiles/test_models.dir/models/test_lasso.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_lasso.cpp.o.d"
  "/root/repo/tests/models/test_linear.cpp" "tests/CMakeFiles/test_models.dir/models/test_linear.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_linear.cpp.o.d"
  "/root/repo/tests/models/test_mars.cpp" "tests/CMakeFiles/test_models.dir/models/test_mars.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_mars.cpp.o.d"
  "/root/repo/tests/models/test_serialize.cpp" "tests/CMakeFiles/test_models.dir/models/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_serialize.cpp.o.d"
  "/root/repo/tests/models/test_stepwise.cpp" "tests/CMakeFiles/test_models.dir/models/test_stepwise.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_stepwise.cpp.o.d"
  "/root/repo/tests/models/test_switching.cpp" "tests/CMakeFiles/test_models.dir/models/test_switching.cpp.o" "gcc" "tests/CMakeFiles/test_models.dir/models/test_switching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chaos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/chaos_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/chaos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/oscounters/CMakeFiles/chaos_oscounters.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/chaos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/chaos_models.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/chaos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/chaos_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chaos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
