file(REMOVE_RECURSE
  "CMakeFiles/test_models.dir/models/test_factory.cpp.o"
  "CMakeFiles/test_models.dir/models/test_factory.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_lasso.cpp.o"
  "CMakeFiles/test_models.dir/models/test_lasso.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_linear.cpp.o"
  "CMakeFiles/test_models.dir/models/test_linear.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_mars.cpp.o"
  "CMakeFiles/test_models.dir/models/test_mars.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_serialize.cpp.o"
  "CMakeFiles/test_models.dir/models/test_serialize.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_stepwise.cpp.o"
  "CMakeFiles/test_models.dir/models/test_stepwise.cpp.o.d"
  "CMakeFiles/test_models.dir/models/test_switching.cpp.o"
  "CMakeFiles/test_models.dir/models/test_switching.cpp.o.d"
  "test_models"
  "test_models.pdb"
  "test_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
