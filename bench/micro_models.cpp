/**
 * @file
 * Micro-benchmarks of the regression stack: fit and predict costs of
 * every modeling technique plus the Algorithm-1 screening passes.
 * Contextualizes the paper's "training and model building requires
 * up to 2 hours" (dominated by data collection, not fitting).
 */
#include <benchmark/benchmark.h>

#include "models/factory.hpp"
#include "models/lasso.hpp"
#include "models/stepwise.hpp"
#include "stats/correlation.hpp"
#include "util/random.hpp"

using namespace chaos;

namespace {

/** Synthetic power-like regression problem. */
struct Problem
{
    Matrix x;
    std::vector<double> y;

    Problem(size_t n, size_t p, uint64_t seed)
    {
        Rng rng(seed);
        x = Matrix(n, p);
        y.assign(n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            for (size_t c = 0; c < p; ++c)
                x(i, c) = rng.uniform(0.0, 100.0);
            // Nonlinear + interaction ground truth.
            y[i] = 100.0 + 0.5 * x(i, 0) +
                   0.002 * x(i, 0) * x(i, 1) +
                   (x(i, 2) > 50.0 ? 0.3 * (x(i, 2) - 50.0) : 0.0) +
                   rng.normal(0.0, 1.0);
        }
    }
};

void
BM_FitModel(benchmark::State &state, ModelType type)
{
    const Problem problem(1500, 8, 42);
    ModelOptions options;
    options.frequencyFeature = 1;
    for (auto _ : state) {
        auto model = makeModel(type, options);
        model->fit(problem.x, problem.y);
        benchmark::DoNotOptimize(model);
    }
}

void
BM_PredictModel(benchmark::State &state, ModelType type)
{
    const Problem problem(1500, 8, 43);
    ModelOptions options;
    options.frequencyFeature = 1;
    auto model = makeModel(type, options);
    model->fit(problem.x, problem.y);
    const auto row = problem.x.row(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(model->predict(row));
    state.SetItemsProcessed(state.iterations());
}

void
BM_LassoPath(benchmark::State &state)
{
    const Problem problem(800, 40, 44);
    LassoSolver solver;
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.fitWithTargetSupport(
            problem.x, problem.y, 12));
    }
}

void
BM_StepwiseElimination(benchmark::State &state)
{
    const Problem problem(800, 20, 45);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stepwiseEliminate(problem.x, problem.y));
    }
}

void
BM_CorrelationMatrix(benchmark::State &state)
{
    const Problem problem(
        static_cast<size_t>(state.range(0)), 180, 46);
    for (auto _ : state)
        benchmark::DoNotOptimize(correlationMatrix(problem.x));
}

} // namespace

BENCHMARK_CAPTURE(BM_FitModel, linear, ModelType::Linear);
BENCHMARK_CAPTURE(BM_FitModel, piecewise, ModelType::PiecewiseLinear);
BENCHMARK_CAPTURE(BM_FitModel, quadratic, ModelType::Quadratic);
BENCHMARK_CAPTURE(BM_FitModel, switching, ModelType::Switching);
BENCHMARK_CAPTURE(BM_PredictModel, linear, ModelType::Linear);
BENCHMARK_CAPTURE(BM_PredictModel, piecewise,
                  ModelType::PiecewiseLinear);
BENCHMARK_CAPTURE(BM_PredictModel, quadratic, ModelType::Quadratic);
BENCHMARK_CAPTURE(BM_PredictModel, switching, ModelType::Switching);
BENCHMARK(BM_LassoPath);
BENCHMARK(BM_StepwiseElimination);
BENCHMARK(BM_CorrelationMatrix)->Arg(1000)->Arg(4000);

BENCHMARK_MAIN();
