/**
 * @file
 * Network-ingest throughput benchmark: the loopback wire path.
 *
 * Stands up a real ChaosIngestServer (poll thread, framed TCP, credit
 * flow control) in front of an 8-machine FleetServer and drives it
 * with the in-process LoadGenerator over 127.0.0.1, sweeping the
 * connection count (1, 8, 64). Unlike serve_throughput — which
 * measures submitTo() from the same address space — every sample here
 * pays the full network tax: encode + CRC on the client, kernel
 * loopback, fragment-tolerant reassembly, decode + CRC check, and the
 * credit ack ride back.
 *
 * Rows are compact (16 columns, covering the catalog indices the
 * deployed model reads); the online path imputes the missing
 * counters, so this is the wire format production clients should use
 * at high rates — shipping all 187 catalog columns per tick spends
 * ~10x the bytes on features the model never touches.
 *
 * Gates (exits nonzero on violation, so tier-1 runs it as a smoke):
 *  - the 64-connection sweep point sustains >= 500k samples/sec
 *    aggregate (fast mode: >= 100k — small totals on a shared host
 *    measure startup, not steady state);
 *  - exact accounting at every sweep point: sent == accepted +
 *    rejected, zero rejects (capacity is provisioned above the
 *    credit-window ceiling), zero failed connections, zero bad
 *    frames, and the fleet processed every accepted sample;
 *  - p50/p99 credit round-trip latency is reported per sweep point
 *    but ungated: on loopback with a batching ack protocol it
 *    measures credit coalescing, not queueing pathology.
 *
 * Text-merges a "net_ingest" section into BENCH_serve.json (written
 * by serve_throughput in the same directory) so the serving dashboard
 * keeps one contract file; standalone runs produce a minimal wrapper
 * object instead.
 */
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/bench_support.hpp"
#include "linalg/matrix.hpp"
#include "models/linear.hpp"
#include "net/ingest_server.hpp"
#include "net/loadgen.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/string_utils.hpp"

using namespace chaos;

namespace {

constexpr size_t kFleetSize = 8;
constexpr size_t kRowSize = 16;

/**
 * Linear model over the two Processor utilization counters (catalog
 * indices 0 and 6, both inside the compact 16-column row).
 */
MachinePowerModel
benchModel(uint64_t seed)
{
    Rng rng(seed);
    const size_t n = 200;
    Matrix x(n, 2);
    std::vector<double> y(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 100.0);
        x(i, 1) = rng.uniform(0.0, 100.0);
        y[i] = 40.0 + 0.12 * x(i, 0) + 0.07 * x(i, 1) +
               rng.normal(0.0, 0.05);
    }
    auto model = std::make_shared<LinearModel>();
    model->fit(x, y);
    return MachinePowerModel::fromParts(
        FeatureSet{"net-ingest-bench",
                   {"Processor(0)\\% Processor Time",
                    "Processor(1)\\% Processor Time"}},
        std::move(model));
}

struct SweepPoint
{
    size_t connections = 0;
    uint64_t sent = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t processed = 0;
    double elapsedSec = 0.0;
    double sentPerSec = 0.0;
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
};

/** One sweep point: a fresh fleet + ingest server, then a load run. */
SweepPoint
runPoint(size_t connections, size_t samplesPerConnection)
{
    setGlobalThreadCount(4);
    serve::FleetServerConfig fleetConfig;
    // Provisioned above the worst-case credit-window in-flight total
    // (64 conns x 512 window) so backpressure rejects cannot occur:
    // any reject at this capacity is a flow-control bug, and the
    // accounting gate below turns it into a failure.
    fleetConfig.queueCapacity = 65536;
    fleetConfig.numShards = 4;
    serve::FleetServer fleet(fleetConfig);
    const MachinePowerModel model = benchModel(2012);
    std::vector<std::string> machineIds;
    for (size_t m = 0; m < kFleetSize; ++m) {
        machineIds.push_back("machine" + std::to_string(m));
        fleet.addMachine(machineIds.back(), model);
    }
    net::ChaosIngestServer ingest(fleet);
    ingest.start();
    fleet.start();

    net::LoadGenConfig cfg;
    cfg.port = ingest.port();
    cfg.connections = connections;
    cfg.samplesPerConnection = samplesPerConnection;
    cfg.machineIds = machineIds;
    cfg.rowSize = kRowSize;
    cfg.window = 512;
    cfg.seed = 2012;
    net::LoadGenerator gen(cfg);
    const net::LoadGenReport report = gen.run();

    fleet.waitIdle();
    const net::IngestStats stats = ingest.stats();
    ingest.stop();
    fleet.stop();
    setGlobalThreadCount(1);

    SweepPoint point;
    point.connections = connections;
    point.sent = report.sent;
    point.accepted = report.accepted;
    point.rejected = report.rejected;
    point.processed = fleet.processed();
    point.elapsedSec = report.elapsedSec;
    point.sentPerSec = report.sentPerSec;
    point.p50LatencyMs = report.p50LatencyMs;
    point.p99LatencyMs = report.p99LatencyMs;

    bool ok = true;
    if (report.connectionsFailed != 0) {
        std::printf("FAIL: %llu of %zu connections failed: %s\n",
                    static_cast<unsigned long long>(
                        report.connectionsFailed),
                    connections, report.firstError.c_str());
        ok = false;
    }
    if (report.accepted + report.rejected != report.sent) {
        std::printf("FAIL: accounting leak: %llu sent != %llu "
                    "accepted + %llu rejected\n",
                    static_cast<unsigned long long>(report.sent),
                    static_cast<unsigned long long>(report.accepted),
                    static_cast<unsigned long long>(report.rejected));
        ok = false;
    }
    if (report.rejected != 0) {
        std::printf("FAIL: %llu samples rejected at a capacity "
                    "above the credit-window ceiling\n",
                    static_cast<unsigned long long>(report.rejected));
        ok = false;
    }
    if (stats.badFrames != 0 || stats.connectionsDropped != 0) {
        std::printf("FAIL: clean load produced %llu bad frames, "
                    "%llu dropped connections\n",
                    static_cast<unsigned long long>(stats.badFrames),
                    static_cast<unsigned long long>(
                        stats.connectionsDropped));
        ok = false;
    }
    if (point.processed != report.accepted) {
        std::printf("FAIL: fleet processed %llu of %llu accepted\n",
                    static_cast<unsigned long long>(point.processed),
                    static_cast<unsigned long long>(report.accepted));
        ok = false;
    }
    if (!ok)
        std::exit(1);
    return point;
}

/**
 * Insert or replace the trailing "net_ingest" section of the
 * BENCH_serve.json in the working directory. serve_throughput owns
 * the rest of the file; when it has not run here, wrap the section
 * in a minimal standalone object.
 */
void
mergeIntoBenchServe(const std::string &section)
{
    std::string merged;
    {
        std::ifstream in("BENCH_serve.json");
        if (in)
            merged.assign(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
    const std::string marker = ",\n  \"net_ingest\":";
    const size_t prior = merged.find(marker);
    if (prior != std::string::npos) {
        // net_ingest is always the final section: cut it and the
        // closing brace together.
        merged.erase(prior);
    } else {
        const size_t brace = merged.rfind('}');
        if (brace != std::string::npos)
            merged.erase(brace);
        else
            merged = "{\n  \"bench\": \"net_ingest\"";
    }
    while (!merged.empty() &&
           (merged.back() == '\n' || merged.back() == ' '))
        merged.pop_back();
    merged += ",\n  \"net_ingest\": " + section + "\n}\n";
    std::ofstream out("BENCH_serve.json");
    out << merged;
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    std::printf("== net_ingest: loopback wire-path throughput ==\n\n");

    const size_t perConnFull = fast ? 3'000 : 20'000;
    const std::vector<size_t> sweep{1, 8, 64};
    // Equalize total work per point roughly: the 1-conn point at the
    // 64-conn per-connection count would serialize for minutes.
    std::vector<SweepPoint> points;
    std::printf("%12s %10s %14s %12s %12s\n", "connections",
                "samples", "samples/sec", "p50 rtt", "p99 rtt");
    for (size_t conns : sweep) {
        const size_t perConn =
            std::max<size_t>(perConnFull * 64 / (conns * 8), 500);
        const SweepPoint p = runPoint(conns, perConn);
        points.push_back(p);
        std::printf("%12zu %10llu %14.0f %9.3f ms %9.3f ms\n",
                    p.connections,
                    static_cast<unsigned long long>(p.sent),
                    p.sentPerSec, p.p50LatencyMs, p.p99LatencyMs);
    }

    // --- Gates. ---
    const double floorSps = fast ? 100'000.0 : 500'000.0;
    const SweepPoint &headline = points.back();
    bool ok = true;
    if (headline.sentPerSec < floorSps) {
        std::printf("\nFAIL: %zu-connection ingest sustained %.0f "
                    "samples/sec, below the %.0f floor\n",
                    headline.connections, headline.sentPerSec,
                    floorSps);
        ok = false;
    }

    // --- Merge into BENCH_serve.json. ---
    std::string section = "{\n";
    section += "    \"fleet_size\": " + std::to_string(kFleetSize) +
               ",\n";
    section += "    \"row_size\": " + std::to_string(kRowSize) +
               ",\n";
    section += "    \"fast_mode\": " +
               std::string(fast ? "true" : "false") + ",\n";
    section += "    \"connections_sweep\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        section += "      {\"connections\": " +
                   std::to_string(p.connections) +
                   ", \"sent\": " + std::to_string(p.sent) +
                   ", \"accepted\": " + std::to_string(p.accepted) +
                   ", \"rejected\": " + std::to_string(p.rejected) +
                   ", \"sent_per_sec\": " +
                   formatDouble(p.sentPerSec, 0) +
                   ", \"p50_latency_ms\": " +
                   formatDouble(p.p50LatencyMs, 4) +
                   ", \"p99_latency_ms\": " +
                   formatDouble(p.p99LatencyMs, 4) + "}";
        section += (i + 1 < points.size()) ? ",\n" : "\n";
    }
    section += "    ],\n";
    section += "    \"ingest_floor_sps\": " +
               formatDouble(floorSps, 0) + ",\n";
    section += "    \"ingest_pass\": " +
               std::string(ok ? "true" : "false") + "\n  }";
    mergeIntoBenchServe(section);
    std::printf("\nmerged net_ingest into BENCH_serve.json (%s)\n",
                ok ? "pass" : "FAIL");
    return ok ? 0 : 1;
}
