/**
 * @file
 * End-to-end training-pipeline performance benchmark.
 *
 * Times the full train+eval path — MARS fits, stepwise elimination,
 * cross-validated technique evaluation, the model/feature-set sweep,
 * and the pooling comparison — on one seeded simulated cluster, in
 * two algorithmic modes:
 *
 *  - legacy:    the reference search paths (per-candidate Gram
 *               refactorization in MARS, per-iteration least-squares
 *               refits in stepwise), single-threaded — the serial
 *               baseline this PR-series started from;
 *  - optimized: incremental MARS knot sweeps + bordered solves,
 *               stepwise Gram reuse, and the thread pool, at 1, 2,
 *               and 4+ threads.
 *
 * Besides wall time, the bench proves the optimization is safe: the
 * cross-validated DRE and the fitted MARS coefficients must agree
 * between the serial (CHAOS_THREADS=1) and parallel runs to within
 * 1e-9 (they are bit-identical by construction: every parallel task
 * writes its own slot and reductions run serially in index order).
 *
 * Writes BENCH_pipeline.json into the working directory and exits
 * nonzero if any accuracy or sanity assertion fails, so tier-1 can
 * run it as a smoke test (CHAOS_BENCH_FAST=1 shrinks the campaign).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_support.hpp"
#include "core/pooling.hpp"
#include "models/mars.hpp"
#include "models/stepwise.hpp"
#include "util/parallel.hpp"
#include "util/string_utils.hpp"

using namespace chaos;

namespace {

double
wallMs(const std::function<void()> &body)
{
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

/** One timed pass over every pipeline stage. */
struct StageTimes
{
    double marsFitMs = 0.0;
    double stepwiseMs = 0.0;
    double cvEvalMs = 0.0;
    double sweepMs = 0.0;
    double poolingMs = 0.0;

    double total() const
    {
        return marsFitMs + stepwiseMs + cvEvalMs + sweepMs +
               poolingMs;
    }
};

struct PipelineRun
{
    StageTimes times;
    double dre = 0.0;                  ///< CV DRE of the quadratic fit.
    std::vector<double> marsCoef;      ///< Pooled MARS coefficients.
};

/** Run every stage once with the given algorithmic mode. */
PipelineRun
runPipeline(const ClusterCampaign &campaign,
            const CampaignConfig &config, bool optimized)
{
    PipelineRun run;
    const FeatureSet features = clusterFeatureSet(campaign.selection);

    EvaluationConfig eval = config.evaluation;
    eval.mars.incrementalSearch = optimized;
    StepwiseConfig stepwise;
    stepwise.reuseGram = optimized;

    const Dataset subset =
        campaign.data.selectFeaturesByName(features.counters);

    // Pooled MARS fit (degree 2, the paper's strongest technique).
    MarsConfig marsCfg = eval.mars;
    marsCfg.maxDegree = 2;
    run.times.marsFitMs = wallMs([&] {
        MarsModel model(marsCfg);
        model.fit(subset.features(), subset.powerW());
        run.marsCoef = model.coefficients();
    });

    // Wald stepwise elimination over the full counter set — the
    // Algorithm-1 screening shape (many columns, most insignificant).
    run.times.stepwiseMs = wallMs([&] {
        const StepwiseResult r = stepwiseEliminate(
            campaign.data.features(), campaign.data.powerW(),
            stepwise);
        (void)r;
    });

    // Cross-validated evaluation of the quadratic technique.
    run.times.cvEvalMs = wallMs([&] {
        const EvaluationOutcome outcome =
            evaluateTechnique(campaign.data, features,
                              ModelType::Quadratic,
                              campaign.envelopes, eval);
        run.dre = outcome.avgDre;
    });

    // Model-family x feature-set sweep on one workload.
    run.times.sweepMs = wallMs([&] {
        const auto sweeps = sweepWorkloads(
            campaign.data, {cpuOnlyFeatureSet(), features},
            allModelTypes(), campaign.envelopes, eval,
            {campaign.data.workloadNames().front()});
        (void)sweeps;
    });

    // Pooled vs per-machine vs partial pooling comparison.
    run.times.poolingMs = wallMs([&] {
        const PoolingComparison cmp =
            comparePooling(campaign.data, features,
                           ModelType::PiecewiseLinear,
                           campaign.envelopes, eval);
        (void)cmp;
    });
    return run;
}

std::string
stageJson(const std::string &name, double legacyMs,
          const std::vector<std::pair<size_t, double>> &optimized)
{
    std::string out = "    {\"name\": \"" + name +
                      "\", \"legacy_ms\": " +
                      formatDouble(legacyMs, 3) +
                      ", \"optimized\": [";
    for (size_t i = 0; i < optimized.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += "{\"threads\": " +
               std::to_string(optimized[i].first) + ", \"ms\": " +
               formatDouble(optimized[i].second, 3) + "}";
    }
    return out + "]}";
}

} // namespace

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== perf_pipeline: end-to-end training speed, "
                 "legacy vs optimized ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Core2, config);
    bench::dropRawRuns(campaign);

    const size_t hw =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    std::vector<size_t> threadCounts = {1, 2, 4};
    if (hw > 4)
        threadCounts.push_back(hw);

    // Legacy serial baseline.
    setGlobalThreadCount(1);
    const PipelineRun legacy = runPipeline(campaign, config, false);

    // Optimized path at each thread count.
    std::vector<std::pair<size_t, PipelineRun>> optimized;
    for (size_t t : threadCounts) {
        setGlobalThreadCount(t);
        optimized.emplace_back(t,
                               runPipeline(campaign, config, true));
    }
    setGlobalThreadCount(1);

    // --- Report. ---
    auto row = [](const std::string &label, const StageTimes &t) {
        std::printf("%-16s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                    label.c_str(), t.marsFitMs, t.stepwiseMs,
                    t.cvEvalMs, t.sweepMs, t.poolingMs, t.total());
    };
    std::printf("%-16s %9s %9s %9s %9s %9s %9s\n", "config",
                "mars", "stepwise", "cv_eval", "sweep", "pooling",
                "total");
    row("legacy@1", legacy.times);
    for (const auto &[t, r] : optimized)
        row("optimized@" + std::to_string(t), r.times);

    double bestMs = optimized.front().second.times.total();
    size_t bestThreads = optimized.front().first;
    for (const auto &[t, r] : optimized) {
        if (r.times.total() < bestMs) {
            bestMs = r.times.total();
            bestThreads = t;
        }
    }
    const double speedup = legacy.times.total() / bestMs;
    std::printf("\nend-to-end speedup (legacy@1 -> optimized@%zu): "
                "%.2fx\n",
                bestThreads, speedup);

    // --- Accuracy: serial vs parallel optimized runs must agree. ---
    const PipelineRun &serial = optimized.front().second;
    const PipelineRun &parallel = optimized.back().second;
    const double dreDiff = std::fabs(serial.dre - parallel.dre);
    double coefDiff = 0.0;
    const bool coefShapeOk =
        serial.marsCoef.size() == parallel.marsCoef.size();
    if (coefShapeOk) {
        for (size_t i = 0; i < serial.marsCoef.size(); ++i) {
            coefDiff = std::max(
                coefDiff, std::fabs(serial.marsCoef[i] -
                                    parallel.marsCoef[i]));
        }
    }
    std::printf("DRE serial=%.6f parallel=%.6f |diff|=%.3g; "
                "max coef |diff|=%.3g\n",
                serial.dre, parallel.dre, dreDiff, coefDiff);

    // --- BENCH_pipeline.json. ---
    std::string json = "{\n";
    json += "  \"bench\": \"perf_pipeline\",\n";
    json += "  \"fast_mode\": " +
            std::string(bench::fastMode() ? "true" : "false") + ",\n";
    json += "  \"hardware_threads\": " + std::to_string(hw) + ",\n";
    json += "  \"rows\": " +
            std::to_string(campaign.data.numRows()) + ",\n";
    json += "  \"features\": " +
            std::to_string(campaign.data.numFeatures()) + ",\n";
    json += "  \"stages\": [\n";
    auto stage = [&](const std::string &name,
                     double StageTimes::*member) {
        std::vector<std::pair<size_t, double>> per_thread;
        for (const auto &[t, r] : optimized)
            per_thread.emplace_back(t, r.times.*member);
        return stageJson(name, legacy.times.*member, per_thread);
    };
    json += stage("mars_fit", &StageTimes::marsFitMs) + ",\n";
    json += stage("stepwise", &StageTimes::stepwiseMs) + ",\n";
    json += stage("cv_eval", &StageTimes::cvEvalMs) + ",\n";
    json += stage("sweep", &StageTimes::sweepMs) + ",\n";
    json += stage("pooling", &StageTimes::poolingMs) + "\n";
    json += "  ],\n";
    json += "  \"end_to_end\": {\"legacy_ms\": " +
            formatDouble(legacy.times.total(), 3) +
            ", \"best_optimized_ms\": " + formatDouble(bestMs, 3) +
            ", \"best_threads\": " + std::to_string(bestThreads) +
            ", \"speedup\": " + formatDouble(speedup, 3) + "},\n";
    json += "  \"accuracy\": {\"dre_serial\": " +
            formatDouble(serial.dre, 9) + ", \"dre_parallel\": " +
            formatDouble(parallel.dre, 9) + ", \"dre_abs_diff\": " +
            formatDouble(dreDiff, 12) +
            ", \"mars_coef_max_abs_diff\": " +
            formatDouble(coefDiff, 12) + ", \"dre_legacy\": " +
            formatDouble(legacy.dre, 9) + "}\n";
    json += "}\n";
    std::ofstream out("BENCH_pipeline.json");
    out << json;
    out.close();
    std::cout << "\nwrote BENCH_pipeline.json\n";

    // --- Assertions (smoke contract for tier-1). ---
    int failures = 0;
    auto require = [&](bool ok, const std::string &what) {
        if (!ok) {
            std::cerr << "FAIL: " << what << "\n";
            ++failures;
        }
    };
    require(std::isfinite(serial.dre) && serial.dre > 0.0,
            "cross-validated DRE is finite and positive");
    require(std::isfinite(legacy.dre),
            "legacy-path DRE is finite");
    require(coefShapeOk,
            "serial and parallel MARS fits have the same basis");
    require(dreDiff <= 1e-9,
            "serial vs parallel DRE within 1e-9");
    require(coefDiff <= 1e-9,
            "serial vs parallel MARS coefficients within 1e-9");
    require(speedup >= 1.0,
            "optimized pipeline at least as fast as legacy");
    if (failures == 0)
        std::cout << "perf_pipeline: PASS\n";
    return failures == 0 ? 0 : 1;
}
