/**
 * @file
 * Future-platform ablation (paper Section V-D discussion): "Future
 * systems with the ability to operate cores fully independently will
 * have less-correlated core frequencies (less than 80%) and will
 * require individual core frequencies as features."
 *
 * We build the hypothetical FutureServer platform (independent
 * per-core DVFS, energy-aware core packing), verify its core-0/core-k
 * frequency correlation falls below the paper's 80% line, and compare
 * quadratic models using (a) core-0 frequency only — the proxy that
 * suffices on 2012 servers — against (b) all per-core frequencies.
 */
#include <algorithm>
#include <iostream>

#include "common/bench_support.hpp"
#include "stats/correlation.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    CampaignConfig config = bench::paperCampaignConfig(4141);
    std::cout << "== Future platform: independent per-core DVFS ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::FutureServer, config);
    bench::dropRawRuns(campaign);

    // --- Cross-core frequency correlation. ---
    const auto &data = campaign.data;
    const auto core0 = data.features().column(
        data.featureIndex(counters::kCore0Frequency));
    std::cout << "core-0 vs core-k frequency correlation:\n";
    double max_corr = 0.0;
    for (size_t c = 1; c < 8; ++c) {
        const auto core_k = data.features().column(data.featureIndex(
            "Processor Performance\\Processor_" + std::to_string(c) +
            " Frequency"));
        const double r = pearson(core0, core_k);
        max_corr = std::max(max_corr, r);
        std::cout << "  core " << c << ": " << formatDouble(r, 3)
                  << "\n";
    }
    std::cout << "(paper predicts < 0.80 on such platforms; "
                 "2012 servers were ~0.95+)\n\n";

    // --- Model comparison: single-frequency proxy vs per-core. ---
    FeatureSet base = clusterFeatureSet(campaign.selection);
    // Strip any frequency counters Algorithm 1 picked so the two
    // variants differ only in their frequency features.
    FeatureSet no_freq{"base", {}};
    for (const auto &name : base.counters) {
        if (name.find("Frequency") == std::string::npos)
            no_freq.counters.push_back(name);
    }

    FeatureSet single = no_freq;
    single.name = "single-freq";
    single.counters.push_back(counters::kCore0Frequency);

    FeatureSet per_core = no_freq;
    per_core.name = "per-core-freq";
    for (size_t c = 0; c < 8; ++c) {
        per_core.counters.push_back(
            "Processor Performance\\Processor_" + std::to_string(c) +
            " Frequency");
    }

    TextTable table({"Feature set", "#features", "avg DRE",
                     "median rel err"});
    double single_dre = 0.0, percore_dre = 0.0;
    for (const FeatureSet *set : {&single, &per_core}) {
        const auto outcome = evaluateTechnique(
            campaign.data, *set, ModelType::Quadratic,
            campaign.envelopes, config.evaluation);
        table.addRow({set->name,
                      std::to_string(set->counters.size()),
                      bench::pct(outcome.avgDre),
                      bench::pct(outcome.medianRelErr, 2)});
        (set == &single ? single_dre : percore_dre) =
            outcome.avgDre;
    }
    std::cout << table.render();

    std::cout << "\nmax cross-core correlation: "
              << formatDouble(max_corr, 3)
              << "; per-core features improve DRE by "
              << formatDouble((single_dre - percore_dre) * 100.0, 2)
              << " pp\n";
    std::cout << "Paper shape: once cores declock independently, a "
                 "single core's frequency stops\nbeing a machine "
                 "proxy and individual core frequencies become "
                 "required features.\n";
    return 0;
}
