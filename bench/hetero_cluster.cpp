/**
 * @file
 * Reproduces the Section V-B heterogeneous-cluster experiment: a
 * 10-machine cluster of 5 Core 2 Duo + 5 Opteron machines, where
 * each machine is predicted by its own class's pooled model and
 * cluster power is the Eq. 5 sum. The paper reports the same
 * worst-case ~12% DRE as the homogeneous clusters, i.e. composition
 * is "essentially free".
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "stats/metrics.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Section V-B: heterogeneous cluster (Core2 + "
                 "Opteron) ==\n\n";

    // Train per-class models on the homogeneous campaigns.
    ClusterCampaign core2 =
        bench::campaignFor(MachineClass::Core2, config);
    bench::dropRawRuns(core2);
    ClusterCampaign opteron =
        bench::campaignFor(MachineClass::Opteron, config);
    bench::dropRawRuns(opteron);

    ClusterPowerModel cluster_model;
    cluster_model.setClassModel(
        MachineClass::Core2,
        MachinePowerModel::fit(core2.data,
                               clusterFeatureSet(core2.selection),
                               ModelType::Quadratic,
                               config.evaluation.mars));
    cluster_model.setClassModel(
        MachineClass::Opteron,
        MachinePowerModel::fit(opteron.data,
                               clusterFeatureSet(opteron.selection),
                               ModelType::Quadratic,
                               config.evaluation.mars));

    // Build the 10-machine heterogeneous cluster and run every
    // workload on it (fresh machines: the models have never seen
    // these realizations).
    const size_t per_class = config.numMachines;
    Cluster hetero = Cluster::heterogeneous(
        {{MachineClass::Core2, per_class},
         {MachineClass::Opteron, per_class}},
        config.seed + 4242);
    std::cerr << "[bench] running workloads on " << hetero.name()
              << "...\n";

    TextTable table({"Workload", "Cluster rMSE (W)", "Cluster DRE",
                     "Machine DRE (Core2)", "Machine DRE (Opteron)"});
    double worst_dre = 0.0;

    const double idle_total = hetero.totalIdlePowerW();
    const double max_total = hetero.totalMaxPowerW();

    Rng seed_rng(config.seed + 5151);
    for (const auto &workload : standardWorkloads()) {
        const RunResult run =
            runWorkload(hetero, *workload, seed_rng.nextU64(), 0,
                        config.run);

        // Cluster-level prediction via Eq. 5.
        const auto actual = run.clusterPowerSeries();
        std::vector<double> predicted(actual.size(), 0.0);
        std::vector<std::vector<double>> per_machine_pred(
            hetero.size());
        for (size_t m = 0; m < hetero.size(); ++m) {
            const MachineClass mc =
                hetero.machine(m).spec().machineClass;
            for (size_t t = 0; t < run.machineRecords[m].size();
                 ++t) {
                const double watts = cluster_model.predictMachine(
                    mc, run.machineRecords[m][t].counters);
                predicted[t] += watts;
                per_machine_pred[m].push_back(watts);
            }
        }

        const double cluster_dre = dynamicRangeError(
            predicted, actual, idle_total, max_total);
        worst_dre = std::max(worst_dre, cluster_dre);

        // Average per-machine DRE by class.
        auto class_dre = [&](MachineClass mc) {
            std::vector<double> dres;
            for (size_t m = 0; m < hetero.size(); ++m) {
                if (hetero.machine(m).spec().machineClass != mc)
                    continue;
                std::vector<double> act;
                for (const auto &record : run.machineRecords[m])
                    act.push_back(record.measuredPowerW);
                const MachineSpec spec = machineSpecFor(mc);
                dres.push_back(dynamicRangeError(
                    per_machine_pred[m], act, spec.idlePowerW,
                    spec.maxPowerW));
            }
            double acc = 0.0;
            for (double d : dres)
                acc += d;
            return acc / static_cast<double>(dres.size());
        };
        const double core2_dre = class_dre(MachineClass::Core2);
        const double opteron_dre = class_dre(MachineClass::Opteron);
        worst_dre = std::max({worst_dre, core2_dre, opteron_dre});

        table.addRow({workload->name(),
                      formatDouble(rootMeanSquaredError(predicted,
                                                        actual),
                                   2),
                      bench::pct(cluster_dre), bench::pct(core2_dre),
                      bench::pct(opteron_dre)});
    }
    std::cout << "\n" << table.render();
    std::cout << "\nworst-case DRE across workloads and machine "
                 "classes: "
              << bench::pct(worst_dre)
              << " (paper: ~12%, same as homogeneous clusters — "
                 "composition is free)\n";
    return 0;
}
