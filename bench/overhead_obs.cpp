/**
 * @file
 * Self-overhead accounting for the observability layer.
 *
 * The instrumentation contract is that tracing spans, metric counters
 * and the event log together cost less than 1% of pipeline wall time.
 * This bench measures it directly: the same training pipeline (MARS
 * fit, stepwise elimination, cross-validated evaluation) runs with
 * all observability enabled and with all of it disabled, interleaved
 * so thermal/cache drift hits both sides equally, and the minima are
 * compared. Timing at millisecond scale is noisy, so a run also
 * passes when the absolute difference is below a small epsilon even
 * if the ratio momentarily exceeds 1%.
 *
 * The warm-up pass doubles as the trace-export check: it runs every
 * instrumented stage (Algorithm-1 feature selection, MARS, stepwise,
 * CV folds, pooling) with tracing on and asserts the exported Chrome
 * trace JSON is well-formed and names each stage.
 *
 * Writes BENCH_obs.json; exits nonzero if any assertion fails so
 * tier-1 can run it as a smoke test (CHAOS_BENCH_FAST=1 shrinks the
 * campaign).
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_support.hpp"
#include "core/pooling.hpp"
#include "models/mars.hpp"
#include "models/stepwise.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/string_utils.hpp"

using namespace chaos;

namespace {

double
wallMs(const std::function<void()> &body)
{
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(stop - start)
        .count();
}

/** The instrumented stages timed for the overhead comparison. */
void
runPipeline(const ClusterCampaign &campaign,
            const CampaignConfig &config)
{
    const FeatureSet features = clusterFeatureSet(campaign.selection);
    const Dataset subset =
        campaign.data.selectFeaturesByName(features.counters);

    MarsConfig marsCfg = config.evaluation.mars;
    marsCfg.maxDegree = 2;
    MarsModel model(marsCfg);
    model.fit(subset.features(), subset.powerW());

    const StepwiseResult sw = stepwiseEliminate(
        campaign.data.features(), campaign.data.powerW(),
        StepwiseConfig());
    (void)sw;

    const EvaluationOutcome outcome =
        evaluateTechnique(campaign.data, features,
                          ModelType::Quadratic, campaign.envelopes,
                          config.evaluation);
    (void)outcome;
}

std::string
msArrayJson(const std::vector<double> &values)
{
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += formatDouble(values[i], 3);
    }
    return out + "]";
}

} // namespace

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== overhead_obs: observability self-overhead ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Core2, config);
    bench::dropRawRuns(campaign);
    setGlobalThreadCount(1);

    // --- Warm-up + trace coverage: every stage under tracing. ---
    obs::setMetricsEnabled(true);
    obs::setTraceEnabled(true);
    obs::clearTrace();
    runPipeline(campaign, config);
    {
        Rng rng(config.seed ^ 0xfeedfaceULL);
        const FeatureSelectionResult selection = selectClusterFeatures(
            campaign.data, config.featureSelection, rng);
        (void)selection;
        const PoolingComparison cmp = comparePooling(
            campaign.data, clusterFeatureSet(campaign.selection),
            ModelType::PiecewiseLinear, campaign.envelopes,
            config.evaluation);
        (void)cmp;
    }
    const size_t traceEvents = obs::collectTrace().size();
    const std::string traceJson = obs::chromeTraceJson();
    const bool traceValid = obs::jsonWellFormed(traceJson);
    const std::vector<std::string> requiredPhases = {
        "select.cluster_features", "mars.forward", "mars.backward",
        "stepwise.eliminate",      "cv.fold",      "pooling.compare",
    };
    bool traceCovers = true;
    for (const auto &phase : requiredPhases) {
        if (traceJson.find("\"" + phase + "\"") == std::string::npos) {
            std::cerr << "missing phase in trace: " << phase << "\n";
            traceCovers = false;
        }
    }
    obs::setTraceEnabled(false);
    obs::clearTrace();

    // --- Interleaved timing: instrumented vs no-op. ---
    const int reps = 3;
    std::vector<double> offMs, onMs;
    for (int rep = 0; rep < reps; ++rep) {
        obs::setMetricsEnabled(false);
        offMs.push_back(
            wallMs([&] { runPipeline(campaign, config); }));

        obs::setMetricsEnabled(true);
        obs::setTraceEnabled(true);
        onMs.push_back(
            wallMs([&] { runPipeline(campaign, config); }));
        obs::setTraceEnabled(false);
        obs::clearTrace();
    }
    obs::setMetricsEnabled(true);

    const double minOff = *std::min_element(offMs.begin(), offMs.end());
    const double minOn = *std::min_element(onMs.begin(), onMs.end());
    const double diffMs = minOn - minOff;
    // The raw ratio can come out negative when scheduling noise makes
    // the instrumented run faster; that is measurement noise, not a
    // speedup, so the headline overhead is clamped at zero and the
    // signed raw value is reported alongside it.
    const double rawOverheadPct = minOff > 0.0
                                      ? diffMs / minOff * 100.0
                                      : 0.0;
    const double overheadPct = std::max(rawOverheadPct, 0.0);
    // Millisecond timing is noisy; a tiny absolute difference passes
    // even when the ratio wobbles past 1% on a fast (shrunk) run.
    const double epsilonMs = 15.0;
    const bool overheadOk = overheadPct < 1.0 || diffMs < epsilonMs;

    std::printf("instrumented (min of %d):  %9.1f ms\n", reps, minOn);
    std::printf("no-op        (min of %d):  %9.1f ms\n", reps, minOff);
    std::printf("overhead: %.3f%% (raw %+.3f ms = %+.3f%%), budget "
                "1%% (or < %.0f ms absolute)\n",
                overheadPct, diffMs, rawOverheadPct, epsilonMs);
    std::printf("trace export: %zu events, well-formed=%s, "
                "all stages present=%s\n",
                traceEvents, traceValid ? "yes" : "no",
                traceCovers ? "yes" : "no");

    // --- BENCH_obs.json. ---
    std::string json = "{\n";
    json += "  \"bench\": \"overhead_obs\",\n";
    json += "  \"fast_mode\": " +
            std::string(bench::fastMode() ? "true" : "false") + ",\n";
    json += "  \"rows\": " +
            std::to_string(campaign.data.numRows()) + ",\n";
    json += "  \"reps\": " + std::to_string(reps) + ",\n";
    json += "  \"instrumented_ms\": " + msArrayJson(onMs) + ",\n";
    json += "  \"noop_ms\": " + msArrayJson(offMs) + ",\n";
    json += "  \"min_instrumented_ms\": " + formatDouble(minOn, 3) +
            ",\n";
    json += "  \"min_noop_ms\": " + formatDouble(minOff, 3) + ",\n";
    json += "  \"overhead_ms\": " + formatDouble(diffMs, 3) + ",\n";
    json += "  \"overhead_pct\": " + formatDouble(overheadPct, 4) +
            ",\n";
    json += "  \"raw_overhead_pct\": " +
            formatDouble(rawOverheadPct, 4) + ",\n";
    json += "  \"trace_events\": " + std::to_string(traceEvents) +
            ",\n";
    json += "  \"trace_well_formed\": " +
            std::string(traceValid ? "true" : "false") + ",\n";
    json += "  \"trace_covers_all_stages\": " +
            std::string(traceCovers ? "true" : "false") + "\n";
    json += "}\n";
    std::ofstream out("BENCH_obs.json");
    out << json;
    out.close();
    std::cout << "\nwrote BENCH_obs.json\n";

    int failures = 0;
    auto require = [&](bool ok, const std::string &what) {
        if (!ok) {
            std::cerr << "FAIL: " << what << "\n";
            ++failures;
        }
    };
    require(traceEvents > 0, "tracing recorded events");
    require(traceValid, "Chrome trace JSON is well-formed");
    require(traceCovers, "trace covers every pipeline stage");
    require(overheadOk, "observability overhead under 1% "
                        "(or below absolute epsilon)");
    if (failures == 0)
        std::cout << "overhead_obs: PASS\n";
    return failures == 0 ? 0 : 1;
}
