/**
 * @file
 * Ablation: pooled vs per-machine vs partially-pooled models
 * (paper Section IV). The paper pools data from all machines in the
 * cluster and argues — via the variance-comparison tests of Gelman
 * et al. — that pooling loses no significant accuracy against
 * hierarchical alternatives. This bench reproduces the comparison on
 * three representative clusters.
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "core/pooling.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Ablation: pooling vs per-machine vs partial "
                 "pooling ==\n\n";

    TextTable table({"Cluster", "DRE pooled", "DRE per-machine",
                     "DRE partial", "variance ratio",
                     "pooling adequate?"});

    for (MachineClass mc : {MachineClass::Core2, MachineClass::Opteron,
                            MachineClass::XeonSas}) {
        ClusterCampaign campaign = bench::campaignFor(mc, config);
        bench::dropRawRuns(campaign);

        const PoolingComparison comparison = comparePooling(
            campaign.data, clusterFeatureSet(campaign.selection),
            ModelType::Quadratic, campaign.envelopes,
            config.evaluation);

        table.addRow({machineClassName(mc),
                      bench::pct(comparison.pooledDre),
                      bench::pct(comparison.perMachineDre),
                      bench::pct(comparison.partialDre),
                      formatDouble(comparison.varianceRatio, 3),
                      comparison.poolingAdequate ? "yes" : "NO"});
    }
    std::cout << table.render();

    std::cout
        << "\nPaper shape: pooling is adequate — its residual "
           "variance is close to the\nper-machine models' (ratio "
           "near 1), so the extra complexity of hierarchical\n"
           "modeling isn't warranted. Per-machine models can even "
           "lose accuracy from\nhaving 1/N of the training data.\n";
    return 0;
}
