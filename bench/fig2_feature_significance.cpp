/**
 * @file
 * Reproduces Figure 2: the weighted feature-occurrence histogram
 * from steps 5-6 of Algorithm 1 on the Opteron cluster, with the
 * selection threshold line. Higher bars = counters identified as
 * significant across more machine/workload combinations.
 */
#include <algorithm>
#include <iostream>

#include "common/bench_support.hpp"
#include "oscounters/counter_catalog.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Figure 2: feature significance histogram, "
                 "Opteron cluster ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Opteron, config);
    bench::dropRawRuns(campaign);
    const auto &selection = campaign.selection;

    // Sort histogram entries by weighted occurrence, descending.
    std::vector<std::pair<std::string, double>> entries(
        selection.histogram.begin(), selection.histogram.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });

    double max_weight = 0.0;
    for (const auto &[name, weight] : entries)
        max_weight = std::max(max_weight, weight);

    const auto &catalog = CounterCatalog::instance();
    std::cout << "weighted occurrence count across "
              << selection.perMachine.size()
              << " (machine, workload) screenings; threshold = "
              << selection.finalThreshold << "\n\n";

    for (const auto &[name, weight] : entries) {
        if (weight < 1.0)
            continue;  // Noise floor, as in the figure.
        const auto category = counterCategoryName(
            catalog.def(catalog.indexOf(name)).category);
        const bool selected =
            std::find(selection.selected.begin(),
                      selection.selected.end(),
                      name) != selection.selected.end();
        std::string label = name + " [" + category + "]";
        label.resize(58, ' ');
        std::cout << barLine(label, weight, max_weight, 30,
                             formatDouble(weight, 2) +
                                 (selected ? "  <= selected" : ""))
                  << "\n";
    }

    std::cout << "\nthreshold line at "
              << formatDouble(selection.finalThreshold, 1)
              << ": features above it form the cluster-specific "
                 "model feature set.\n";
    std::cout << "(paper: threshold starts at 5; cluster-level "
                 "stepwise pushed it to 7.)\n";
    return 0;
}
