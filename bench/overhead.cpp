/**
 * @file
 * Validates the paper's "< 1% CPU utilization" overhead claim for
 * the online framework: per-second cost of sampling the full counter
 * catalog, producing a power estimate from a deployed model, and the
 * whole collection tick. With a 1 Hz sampling budget (1 second per
 * sample), overhead% = time-per-sample / 1s.
 */
#include <benchmark/benchmark.h>

#include "core/chaos.hpp"
#include "oscounters/etw_session.hpp"

using namespace chaos;

namespace {

/** Shared fixture state (built once; benchmarks only time steady
 *  state). */
struct OverheadState
{
    MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine{spec, 0, 77};
    PowerMeter meter{Rng(78)};
    CounterSampler sampler{spec, Rng(79)};
    MachineTick tick;
    MachinePowerModel model;
    std::vector<double> counters;

    OverheadState()
    {
        // A tiny training campaign, enough to deploy a real model.
        CampaignConfig config;
        config.numMachines = 2;
        config.runsPerWorkload = 1;
        config.run.durationScale = 0.15;
        config.seed = 99;
        const ClusterCampaign campaign =
            runClusterCampaign(MachineClass::Core2, config);
        model = fitDefaultModel(campaign, config);

        ActivityDemand demand;
        demand.cpuCoreSeconds = 1.0;
        demand.diskReadBytes = 10e6;
        demand.netRxBytes = 5e6;
        demand.memIntensity = 0.3;
        tick = machine.step(demand);
        counters = sampler.sample(tick.state);
    }

    static OverheadState &instance()
    {
        static OverheadState state;
        return state;
    }
};

void
BM_SampleFullCatalog(benchmark::State &state)
{
    auto &fixture = OverheadState::instance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fixture.sampler.sample(fixture.tick.state));
    }
    // Fraction of the 1 Hz budget this sampling consumes.
    // Percent of the 1 Hz budget: 100 * seconds-per-iteration.
    state.counters["cpu_util_pct_at_1Hz"] = benchmark::Counter(
        static_cast<double>(state.iterations()) / 100.0,
        benchmark::Counter::Flags(benchmark::Counter::kIsRate |
                                  benchmark::Counter::kInvert));
}

void
BM_PredictFromCatalogRow(benchmark::State &state)
{
    auto &fixture = OverheadState::instance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fixture.model.predictFromCatalogRow(fixture.counters));
    }
    // Percent of the 1 Hz budget: 100 * seconds-per-iteration.
    state.counters["cpu_util_pct_at_1Hz"] = benchmark::Counter(
        static_cast<double>(state.iterations()) / 100.0,
        benchmark::Counter::Flags(benchmark::Counter::kIsRate |
                                  benchmark::Counter::kInvert));
}

void
BM_FullOnlineTick(benchmark::State &state)
{
    // Sample + estimate: everything the deployed framework does each
    // second (the machine step itself is the simulated hardware, not
    // framework overhead).
    auto &fixture = OverheadState::instance();
    OnlinePowerEstimator estimator(fixture.model);
    for (auto _ : state) {
        auto values = fixture.sampler.sample(fixture.tick.state);
        benchmark::DoNotOptimize(estimator.estimate(values));
    }
    // Percent of the 1 Hz budget: 100 * seconds-per-iteration.
    state.counters["cpu_util_pct_at_1Hz"] = benchmark::Counter(
        static_cast<double>(state.iterations()) / 100.0,
        benchmark::Counter::Flags(benchmark::Counter::kIsRate |
                                  benchmark::Counter::kInvert));
}

BENCHMARK(BM_SampleFullCatalog);
BENCHMARK(BM_PredictFromCatalogRow);
BENCHMARK(BM_FullOnlineTick);

} // namespace

BENCHMARK_MAIN();
