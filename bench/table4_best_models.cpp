/**
 * @file
 * Reproduces Table IV: the best average DRE for every workload and
 * cluster, labeled with the winning (modeling technique, feature
 * set) pair — the paper's headline accuracy table. Expected shapes:
 * all cells under ~12% DRE, quadratic + cluster features ("QC")
 * winning most cells, simple models sufficing only on the Atom
 * (no DVFS) and for WordCount.
 */
#include <iostream>
#include <map>

#include "common/bench_support.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Table IV: best average DRE per workload and "
                 "cluster ==\n\n";

    // Pass 1: collect and feature-select every cluster (the general
    // set needs all six selections).
    std::vector<ClusterCampaign> campaigns;
    std::vector<FeatureSelectionResult> selections;
    for (MachineClass mc : allMachineClasses()) {
        campaigns.push_back(bench::campaignFor(mc, config));
        bench::dropRawRuns(campaigns.back());
        selections.push_back(campaigns.back().selection);
    }
    const FeatureSet general = deriveGeneralFeatureSet(selections, 3);

    // Pass 2: sweep each cluster with U / C / CP / G feature sets.
    std::map<std::string, std::map<std::string, std::string>> cells;
    double worst_best_dre = 0.0;
    std::map<std::string, size_t> win_counts;

    for (const auto &campaign : campaigns) {
        const std::string cluster =
            machineClassName(campaign.machineClass);
        std::cerr << "[bench] sweeping " << cluster << "...\n";
        const std::vector<FeatureSet> sets = {
            cpuOnlyFeatureSet(),
            clusterFeatureSet(campaign.selection),
            clusterPlusLagFeatureSet(campaign.selection), general};

        const auto sweeps = sweepWorkloads(
            campaign.data, sets, allModelTypes(),
            campaign.envelopes, config.evaluation);
        for (const auto &sweep : sweeps) {
            const SweepCell *best = sweep.best();
            if (best == nullptr)
                continue;
            cells[sweep.workload][cluster] =
                bench::pct(best->outcome.avgDre) + ", " +
                best->label();
            worst_best_dre =
                std::max(worst_best_dre, best->outcome.avgDre);
            ++win_counts[best->label()];
        }
    }

    std::vector<std::string> header{"Workload"};
    for (MachineClass mc : allMachineClasses())
        header.push_back(machineClassName(mc));
    TextTable table(header);
    for (const auto &workload : standardWorkloadNames()) {
        std::vector<std::string> row{workload};
        for (MachineClass mc : allMachineClasses())
            row.push_back(cells[workload][machineClassName(mc)]);
        table.addRow(row);
    }
    std::cout << "\n" << table.render();

    std::cout << "\nlabel key: L=linear P=piecewise Q=quadratic "
                 "S=switching; U=CPU-only C=cluster\nfeatures "
                 "CP=cluster+MHz(t-1) G=general\n\n";
    std::cout << "worst best-model DRE across all cells: "
              << bench::pct(worst_best_dre)
              << " (paper: all models under 12%)\n";
    std::cout << "winning combinations:";
    for (const auto &[label, count] : win_counts)
        std::cout << "  " << label << " x" << count;
    std::cout << "\n(paper: quadratic with cluster features wins "
                 "most cells)\n";
    return 0;
}
