/**
 * @file
 * Reproduces Figure 1: full-system cluster AC power for five runs of
 * each workload on the mobile (Core 2 Duo) cluster. The paper's
 * figure shows per-workload power signatures that differ dramatically
 * in both shape and runtime, spanning roughly 120-220 W at the
 * cluster level.
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "stats/descriptive.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workloads/runner.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Figure 1: cluster power traces, Core 2 Duo x"
              << config.numMachines << " ==\n\n";

    Cluster cluster = Cluster::homogeneous(
        MachineClass::Core2, config.numMachines, config.seed);
    const auto runs = runStandardCampaign(
        cluster, config.runsPerWorkload,
        config.seed + 977 * static_cast<uint64_t>(MachineClass::Core2),
        config.run);

    TextTable table({"Workload", "Run", "Duration (s)", "Min (W)",
                     "Mean (W)", "Max (W)"});
    double global_min = 1e12, global_max = 0.0;
    std::string last_workload;

    for (const auto &run : runs) {
        const auto series = run.clusterPowerSeries();
        const double lo = minValue(series);
        const double hi = maxValue(series);
        global_min = std::min(global_min, lo);
        global_max = std::max(global_max, hi);
        if (!last_workload.empty() &&
            run.workloadName != last_workload) {
            table.addRule();
        }
        last_workload = run.workloadName;
        table.addRow({run.workloadName, std::to_string(run.runId),
                      formatDouble(run.durationSeconds, 0),
                      formatDouble(lo, 1), formatDouble(mean(series), 1),
                      formatDouble(hi, 1)});
    }
    std::cout << table.render();

    std::cout << "\nPower signatures (one run per workload, time "
                 "left to right, height = power):\n\n";
    for (size_t i = 0; i < runs.size();
         i += config.runsPerWorkload) {
        const auto series = runs[i].clusterPowerSeries();
        std::cout << "  " << runs[i].workloadName << "\n  |"
                  << bench::sparkline(series, 72) << "|\n\n";
    }

    std::cout << "Cluster dynamic range observed: "
              << formatDouble(global_min, 0) << "-"
              << formatDouble(global_max, 0)
              << " W (paper: ~120-220 W for 5 machines).\n";
    return 0;
}
