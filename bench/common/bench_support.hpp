/**
 * @file
 * Shared plumbing for the reproduction benches: paper-scale campaign
 * configuration and small formatting helpers.
 *
 * Every bench binary regenerates one table or figure of the paper
 * (see DESIGN.md's experiment index) and prints the same rows/series
 * the paper reports. Scale knobs can be reduced with the
 * CHAOS_BENCH_FAST=1 environment variable for smoke runs.
 */
#ifndef CHAOS_BENCH_COMMON_BENCH_SUPPORT_HPP
#define CHAOS_BENCH_COMMON_BENCH_SUPPORT_HPP

#include <string>

#include "core/chaos.hpp"

namespace chaos {
namespace bench {

/** True if CHAOS_BENCH_FAST=1 is set (shrinks campaign scale). */
bool fastMode();

/**
 * Paper-scale campaign: 5-machine clusters, 5 runs per workload,
 * 5-fold run-grouped cross validation. Fast mode shrinks to 3
 * machines / 2 runs / 2 folds.
 */
CampaignConfig paperCampaignConfig(uint64_t seed = 2012);

/** Collect + feature-select one cluster, logging progress. */
ClusterCampaign campaignFor(MachineClass mc,
                            const CampaignConfig &config);

/**
 * Release the raw run logs of a campaign (they duplicate the dataset
 * and dominate memory when many clusters are held at once).
 */
void dropRawRuns(ClusterCampaign &campaign);

/** "12.3%" style formatting of a fraction. */
std::string pct(double fraction, int decimals = 1);

/** Render an ASCII sparkline of a series (downsampled to width). */
std::string sparkline(const std::vector<double> &series, size_t width);

} // namespace bench
} // namespace chaos

#endif // CHAOS_BENCH_COMMON_BENCH_SUPPORT_HPP
