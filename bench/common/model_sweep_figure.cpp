#include "model_sweep_figure.hpp"

#include <iostream>

#include "bench_support.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace chaos {
namespace bench {

int
runModelSweepFigure(const std::string &figure,
                    const std::string &workload,
                    const std::string &conclusion)
{
    const CampaignConfig config = paperCampaignConfig();
    std::cout << "== " << figure << ": Opteron average DRE, "
              << workload << " — model type x feature set ==\n\n";

    ClusterCampaign campaign =
        campaignFor(MachineClass::Opteron, config);
    dropRawRuns(campaign);

    // Feature sets as in the figures: CPU-utilization only, the
    // cluster-specific set, and the general set. The general set is
    // approximated with the paper's published Table II column so
    // this figure does not need all six clusters collected.
    const std::vector<FeatureSet> sets = {
        cpuOnlyFeatureSet(), clusterFeatureSet(campaign.selection),
        paperGeneralFeatureSet()};

    const auto sweeps = sweepWorkloads(
        campaign.data, sets, allModelTypes(), campaign.envelopes,
        config.evaluation, {workload});
    if (sweeps.empty()) {
        std::cerr << "no data for workload " << workload << "\n";
        return 1;
    }
    const WorkloadSweep &sweep = sweeps.front();

    double max_dre = 0.0;
    for (const auto &cell : sweep.cells) {
        if (cell.outcome.valid)
            max_dre = std::max(max_dre, cell.outcome.avgDre);
    }

    std::string current_type;
    for (const auto &cell : sweep.cells) {
        const std::string type_name = modelTypeName(cell.type);
        if (type_name != current_type) {
            std::cout << "\n" << type_name << ":\n";
            current_type = type_name;
        }
        std::string label = "  " + cell.featureSetName;
        label.resize(12, ' ');
        if (!cell.outcome.valid) {
            std::cout << label
                      << " (n/a: requires multiple features)\n";
            continue;
        }
        std::cout << barLine(label, cell.outcome.avgDre, max_dre, 40,
                             pct(cell.outcome.avgDre))
                  << "\n";
    }

    const SweepCell *best = sweep.best();
    if (best != nullptr) {
        std::cout << "\nbest: " << best->label() << " ("
                  << modelTypeName(best->type) << ", "
                  << best->featureSetName
                  << " features) at DRE = "
                  << pct(best->outcome.avgDre) << "\n";
    }
    std::cout << "\n" << conclusion << "\n";
    std::cout << "(U = CPU utilization only, C = cluster-specific "
                 "features, G(paper) = Table II general set)\n";
    return 0;
}

} // namespace bench
} // namespace chaos
