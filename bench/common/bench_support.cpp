#include "bench_support.hpp"

#include <cstdlib>
#include <iostream>

#include "stats/descriptive.hpp"
#include "util/string_utils.hpp"

namespace chaos {
namespace bench {

bool
fastMode()
{
    const char *value = std::getenv("CHAOS_BENCH_FAST");
    return value != nullptr && std::string(value) == "1";
}

CampaignConfig
paperCampaignConfig(uint64_t seed)
{
    CampaignConfig config;
    config.seed = seed;
    if (fastMode()) {
        config.numMachines = 3;
        config.runsPerWorkload = 2;
        config.run.durationScale = 0.3;
        config.evaluation.folds = 2;
    } else {
        config.numMachines = 5;
        config.runsPerWorkload = 5;
        config.evaluation.folds = 5;
    }
    return config;
}

ClusterCampaign
campaignFor(MachineClass mc, const CampaignConfig &config)
{
    std::cerr << "[bench] collecting " << machineClassName(mc)
              << " cluster (" << config.numMachines << " machines x 4 "
              << "workloads x " << config.runsPerWorkload
              << " runs)..." << std::endl;
    return runClusterCampaign(mc, config);
}

void
dropRawRuns(ClusterCampaign &campaign)
{
    campaign.runs.clear();
    campaign.runs.shrink_to_fit();
}

std::string
pct(double fraction, int decimals)
{
    return formatPercent(fraction, decimals);
}

std::string
sparkline(const std::vector<double> &series, size_t width)
{
    static const char *levels[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#"};
    if (series.empty() || width == 0)
        return "";
    const double lo = minValue(series);
    const double hi = maxValue(series);
    const double span = hi > lo ? hi - lo : 1.0;

    std::string out;
    for (size_t i = 0; i < width; ++i) {
        const size_t idx = i * series.size() / width;
        const double norm = (series[idx] - lo) / span;
        const int level = std::min(7, static_cast<int>(norm * 8.0));
        out += levels[level];
    }
    return out;
}

} // namespace bench
} // namespace chaos
