/**
 * @file
 * Shared driver for Figures 3 and 4: DRE of every modeling technique
 * crossed with every feature set on the Opteron cluster, for one
 * workload.
 */
#ifndef CHAOS_BENCH_COMMON_MODEL_SWEEP_FIGURE_HPP
#define CHAOS_BENCH_COMMON_MODEL_SWEEP_FIGURE_HPP

#include <string>

namespace chaos {
namespace bench {

/**
 * Run the Opteron model/feature-set sweep for @p workload and print
 * the figure (bars of average DRE per combination).
 *
 * @param figure "Figure 3" or "Figure 4".
 * @param workload Workload to sweep.
 * @param conclusion One-line takeaway printed under the figure.
 * @return Process exit code.
 */
int runModelSweepFigure(const std::string &figure,
                        const std::string &workload,
                        const std::string &conclusion);

} // namespace bench
} // namespace chaos

#endif // CHAOS_BENCH_COMMON_MODEL_SWEEP_FIGURE_HPP
