/**
 * @file
 * Ablation: historical frequency windows (paper Section V-D /
 * conclusion). The paper added MHz(t-1) to the cluster feature set
 * ("QCP") and found it "did not significantly improve model
 * accuracy", explicitly leaving windows of history (a la Lewis et
 * al.'s chaotic attractors) as an open question. This bench sweeps
 * lag windows of 0-3 seconds on a DVFS-heavy cluster.
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig(5252);
    std::cout << "== Ablation: frequency history windows "
                 "(MHz(t-1..t-k)) ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Opteron, config);
    bench::dropRawRuns(campaign);

    TextTable table({"Feature set", "#features", "avg DRE",
                     "delta vs C (pp)"});
    double base_dre = 0.0;

    std::vector<FeatureSet> sets = {
        clusterFeatureSet(campaign.selection),
        clusterPlusLagWindowFeatureSet(campaign.selection, 1),
        clusterPlusLagWindowFeatureSet(campaign.selection, 2),
        clusterPlusLagWindowFeatureSet(campaign.selection, 3),
    };
    for (size_t i = 0; i < sets.size(); ++i) {
        const auto outcome = evaluateTechnique(
            campaign.data, sets[i], ModelType::Quadratic,
            campaign.envelopes, config.evaluation);
        if (i == 0)
            base_dre = outcome.avgDre;
        table.addRow(
            {sets[i].name, std::to_string(sets[i].counters.size()),
             bench::pct(outcome.avgDre),
             formatDouble((outcome.avgDre - base_dre) * 100.0, 2)});
    }
    std::cout << table.render();

    std::cout
        << "\nPaper shape: the deltas hover around zero — frequency "
           "history adds little once\nthe current frequency is a "
           "feature, because P-state dwell times exceed the 1 Hz\n"
           "sampling interval (the paper found the same for "
           "MHz(t-1)).\n";
    return 0;
}
