/**
 * @file
 * Reproduces Figure 4: Opteron average DRE for Prime across all
 * modeling techniques and feature sets. The paper's takeaway: for
 * this CPU-bound workload, the MODELING TECHNIQUE matters more than
 * the feature set — a piecewise-linear model on CPU utilization
 * alone already dramatically beats the linear model, because
 * full-system power is nonlinear in utilization under DVFS.
 */
#include "common/model_sweep_figure.hpp"

int
main()
{
    return chaos::bench::runModelSweepFigure(
        "Figure 4", "Prime",
        "Paper shape: nonlinear techniques (P/Q/S) beat the linear "
        "model even with the\nsame features — model complexity "
        "dominates for Prime.");
}
