/**
 * @file
 * Reproduces Figure 3: Opteron average DRE for PageRank across all
 * modeling techniques and feature sets. The paper's takeaway: for
 * this network-heavy workload, FEATURE SELECTION matters more than
 * the modeling technique — cluster/general feature sets beat the
 * CPU-only set by several DRE points for every technique.
 */
#include "common/model_sweep_figure.hpp"

int
main()
{
    return chaos::bench::runModelSweepFigure(
        "Figure 3", "PageRank",
        "Paper shape: richer feature sets (C/G) beat CPU-only by "
        "several DRE points\nregardless of technique — feature "
        "selection dominates for PageRank.");
}
