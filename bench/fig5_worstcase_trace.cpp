/**
 * @file
 * Reproduces Figure 5: worst-case full-system power prediction for
 * the desktop (Athlon) cluster — a strawman cluster model (a single
 * machine's CPU-utilization-only LINEAR model, scaled by the machine
 * count, as prior work suggested) against the CHAOS cluster
 * quadratic model on the general feature set. The strawman cannot
 * predict the upper ~20% of the cluster's power range.
 */
#include <algorithm>
#include <iostream>

#include "common/bench_support.hpp"
#include "stats/descriptive.hpp"
#include "stats/metrics.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workloads/standard_workloads.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Figure 5: worst-case cluster power prediction, "
                 "Athlon cluster ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Athlon, config);

    // --- Strawman: linear CPU-only model of machine 0, scaled. ---
    const Dataset machine0 = campaign.data.filterMachine(0);
    const auto strawman = fitPooledModel(
        machine0, cpuOnlyFeatureSet(), ModelType::Linear,
        config.evaluation.mars);

    // --- CHAOS: pooled quadratic model, general feature set. ---
    const FeatureSet general = paperGeneralFeatureSet();
    const auto chaos_model = fitPooledModel(
        campaign.data, general, ModelType::Quadratic,
        config.evaluation.mars);

    // Apply both to a fresh (held-out) Sort run on a new cluster
    // realization.
    Cluster fresh = Cluster::homogeneous(
        MachineClass::Athlon, config.numMachines, config.seed + 999);
    SortWorkload sort_workload;
    const RunResult run = runWorkload(fresh, sort_workload,
                                      config.seed + 1234, 0,
                                      config.run);

    const auto &catalog_names = campaign.data.featureNames();
    Dataset catalog_space(catalog_names);
    const size_t util_index = catalog_space.featureIndex(
        counters::kCpuUtilization);
    std::vector<size_t> general_indices;
    for (const auto &name : general.counters)
        general_indices.push_back(catalog_space.featureIndex(name));

    const auto actual = run.clusterPowerSeries();
    std::vector<double> strawman_pred(actual.size(), 0.0);
    std::vector<double> chaos_pred(actual.size(), 0.0);
    for (const auto &records : run.machineRecords) {
        for (size_t t = 0; t < records.size(); ++t) {
            strawman_pred[t] += strawman->predict(
                {records[t].counters[util_index]});
            std::vector<double> row;
            for (size_t idx : general_indices)
                row.push_back(records[t].counters[idx]);
            chaos_pred[t] += chaos_model->predict(row);
        }
    }

    // Errors in the upper region of the range (top 20% of observed
    // cluster power) vs overall.
    const double hi = maxValue(actual);
    const double lo = minValue(actual);
    const double upper_cut = hi - 0.2 * (hi - lo);
    std::vector<double> act_up, straw_up, chaos_up;
    for (size_t t = 0; t < actual.size(); ++t) {
        if (actual[t] >= upper_cut) {
            act_up.push_back(actual[t]);
            straw_up.push_back(strawman_pred[t]);
            chaos_up.push_back(chaos_pred[t]);
        }
    }

    TextTable table({"Model", "rMSE (W)", "DRE",
                     "rMSE top-20% (W)", "max underprediction (W)"});
    auto add_row = [&](const std::string &name,
                       const std::vector<double> &pred,
                       const std::vector<double> &pred_up) {
        double max_under = 0.0;
        for (size_t t = 0; t < actual.size(); ++t)
            max_under = std::max(max_under, actual[t] - pred[t]);
        table.addRow(
            {name, formatDouble(rootMeanSquaredError(pred, actual), 2),
             bench::pct(dynamicRangeError(
                 pred, actual,
                 fresh.totalIdlePowerW(), fresh.totalMaxPowerW())),
             formatDouble(rootMeanSquaredError(pred_up, act_up), 2),
             formatDouble(max_under, 1)});
    };
    add_row("scaled 1-machine linear CPU-only", strawman_pred,
            straw_up);
    add_row("cluster quadratic, general features", chaos_pred,
            chaos_up);
    std::cout << table.render();

    std::cout << "\ntrace (measured vs predictions, downsampled):\n";
    std::cout << "  measured  |" << bench::sparkline(actual, 72)
              << "|\n";
    std::cout << "  strawman  |" << bench::sparkline(strawman_pred, 72)
              << "|\n";
    std::cout << "  CHAOS     |" << bench::sparkline(chaos_pred, 72)
              << "|\n";

    std::cout << "\nPaper shape: the scaled linear CPU-only model "
                 "cannot reach the top of the\ncluster's dynamic "
                 "range (it clips the upper ~20%), while the "
                 "quadratic\ngeneral-feature model tracks the whole "
                 "range.\n";
    return 0;
}
