/**
 * @file
 * Sensitivity analysis of the step-1 correlation threshold (paper
 * Section IV-A1: "We performed a sensitivity analysis on this
 * threshold value and found that reducing it below 0.95 provided
 * diminishing returns"). Sweeps the threshold and reports how many
 * counters survive screening, how many features the full algorithm
 * selects, and the resulting model accuracy.
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig(6161);
    std::cout << "== Ablation: correlation threshold (|r| > t) "
                 "sensitivity, Core2 cluster ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Core2, config);
    bench::dropRawRuns(campaign);

    TextTable table({"threshold", "survive step 1", "selected",
                     "quadratic DRE"});

    for (double threshold : {0.80, 0.90, 0.95, 0.99}) {
        FeatureSelectionConfig fs_config;
        fs_config.correlationThreshold = threshold;
        Rng rng(1);

        FeatureSelectionResult funnel;
        screenCounters(campaign.data, fs_config, rng, &funnel);

        Rng rng2(2);
        const FeatureSelectionResult selection =
            selectClusterFeatures(campaign.data, fs_config, rng2);

        const auto outcome = evaluateTechnique(
            campaign.data, clusterFeatureSet(selection),
            ModelType::Quadratic, campaign.envelopes,
            config.evaluation);

        table.addRow({formatDouble(threshold, 2),
                      std::to_string(funnel.afterCorrelation),
                      std::to_string(selection.selected.size()),
                      outcome.valid ? bench::pct(outcome.avgDre)
                                    : "n/a"});
    }
    std::cout << table.render();

    std::cout
        << "\nPaper shape: tightening the threshold below 0.95 keeps "
           "pruning counters but\nbuys no accuracy (diminishing "
           "returns), while a very loose threshold (0.99)\nlets "
           "near-duplicates through and inflates the candidate set "
           "without helping.\n";
    return 0;
}
