/**
 * @file
 * Degraded-telemetry robustness sweep: replay a clean instrumented
 * campaign under every fault class at increasing intensity and report
 * how the hardened online estimator's DRE degrades.
 *
 * For each fault class the sweep re-runs the same trace with faults
 * injected into the counter vectors and meter readings, streams the
 * corrupted telemetry through OnlinePowerEstimator, and scores the
 * estimates against the CLEAN metered power. The claims checked:
 *
 *  - no estimate is ever NaN or infinite, at any intensity;
 *  - error grows with intensity but stays bounded: estimates are
 *    clamped to the machine's [Pidle, Pmax] envelope, so per-machine
 *    error never exceeds the dynamic range (Pmax - Pidle);
 *  - a machine whose telemetry disappears entirely is declared Lost
 *    and substituted, and the cluster total remains finite with the
 *    lost machine's contribution within the dynamic-range bound.
 */
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "common/bench_support.hpp"
#include "core/online.hpp"
#include "faults/fault_profile.hpp"
#include "faults/injectors.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

namespace {

struct SweepResult
{
    double dre = 0.0;            ///< mean |est - clean meter| / range.
    double worstAbsErrW = 0.0;   ///< Largest single-second error.
    size_t nonFinite = 0;        ///< Estimates that were NaN/inf.
    size_t substituted = 0;      ///< Seconds the model was bypassed.
    size_t imputed = 0;          ///< Inputs bridged by imputation.
};

/**
 * Replay every machine of every run through a fresh estimator with
 * the given fault profile injected, scoring against the clean meter.
 */
SweepResult
sweepProfile(const ClusterCampaign &campaign,
             const MachinePowerModel &model, const MachineSpec &spec,
             const FaultProfile &profile, uint64_t seed)
{
    SweepResult out;
    const double rangeW = spec.dynamicRangeW();
    double absErrSum = 0.0;
    size_t n = 0;
    Rng faultRng(seed);

    const size_t numMachines = campaign.cluster->size();
    for (size_t m = 0; m < numMachines; ++m) {
        OnlinePowerEstimator estimator(
            model, OnlineEstimatorConfig::forSpec(spec));
        for (size_t r = 0; r < campaign.runs.size(); ++r) {
            const auto &clean = campaign.runs[r].machineRecords[m];
            std::vector<EtwRecord> faulted = clean;
            injectFaults(faulted, profile,
                         faultRng.fork(m * 1000 + r));
            for (size_t t = 0; t < faulted.size(); ++t) {
                const double est = estimator.estimateWithReference(
                    faulted[t].counters, faulted[t].measuredPowerW);
                if (!std::isfinite(est)) {
                    ++out.nonFinite;
                    continue;
                }
                const double err =
                    std::abs(est - clean[t].measuredPowerW);
                absErrSum += err;
                out.worstAbsErrW = std::max(out.worstAbsErrW, err);
                ++n;
            }
        }
        out.substituted +=
            estimator.healthCounters().substitutedEstimates;
        out.imputed += estimator.healthCounters().imputedInputs;
    }
    out.dre = n > 0 ? absErrSum / double(n) / rangeW : 0.0;
    return out;
}

/**
 * Lost-machine drill: warm an estimator up on clean telemetry, then
 * cut its feed entirely. The estimator must transition to Lost, keep
 * every substitute inside the physical envelope, and therefore keep
 * the machine's error within the dynamic range.
 */
bool
lostMachineBoundHolds(const ClusterCampaign &campaign,
                      const MachinePowerModel &model,
                      const MachineSpec &spec)
{
    const auto &records = campaign.runs.front().machineRecords.front();
    const std::vector<double> allNan(
        CounterCatalog::instance().size(),
        std::numeric_limits<double>::quiet_NaN());

    ClusterPowerEstimator cluster;
    const size_t machines = 3;
    for (size_t m = 0; m < machines; ++m)
        cluster.addMachine(model, OnlineEstimatorConfig::forSpec(spec));

    bool ok = true;
    const size_t warmup = std::min<size_t>(40, records.size());
    for (size_t t = 0; t < warmup; ++t) {
        cluster.estimateCluster(
            {records[t].counters, records[t].counters,
             records[t].counters});
    }
    // Machine 0 goes dark; the other two keep reporting.
    for (size_t t = warmup; t < records.size(); ++t) {
        const double total = cluster.estimateCluster(
            {allNan, records[t].counters, records[t].counters});
        ok = ok && std::isfinite(total);
    }
    ok = ok && cluster.machineHealth(0) == MachineHealth::Lost;
    ok = ok && cluster.countInHealth(MachineHealth::Lost) == 1;

    // The substitute for the lost machine must sit inside the
    // envelope, which bounds its error by the dynamic range against
    // any true power the machine could be drawing.
    OnlinePowerEstimator solo(model,
                              OnlineEstimatorConfig::forSpec(spec));
    for (size_t t = 0; t < warmup; ++t)
        solo.estimate(records[t].counters);
    for (size_t t = warmup; t < records.size(); ++t) {
        const double est = solo.estimate(allNan);
        ok = ok && std::isfinite(est) && est >= spec.idlePowerW &&
             est <= spec.maxPowerW;
        const double err = std::abs(est - records[t].measuredPowerW);
        // Meter noise can read slightly outside the envelope.
        ok = ok && err <= spec.dynamicRangeW() + 1.0;
    }
    return ok;
}

/** One reported sweep row, mirrored into BENCH_robustness.json. */
struct SweepRow
{
    std::string faultClass;
    double intensity = 0.0;
    SweepResult result;
};

std::string
sweepRowJson(const SweepRow &row)
{
    return "    {\"fault_class\": \"" + row.faultClass +
           "\", \"intensity\": " + formatDouble(row.intensity, 2) +
           ", \"dre\": " + formatDouble(row.result.dre, 6) +
           ", \"worst_abs_err_w\": " +
           formatDouble(row.result.worstAbsErrW, 3) +
           ", \"substituted\": " +
           std::to_string(row.result.substituted) +
           ", \"imputed\": " + std::to_string(row.result.imputed) +
           ", \"non_finite\": " +
           std::to_string(row.result.nonFinite) + "}";
}

} // namespace

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Robustness: DRE degradation under injected "
                 "telemetry faults (Core2 cluster) ==\n\n";

    ClusterCampaign campaign =
        bench::campaignFor(MachineClass::Core2, config);
    const MachinePowerModel model = fitDefaultModel(campaign, config);
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);

    const std::vector<double> intensities = {0.25, 0.5, 1.0};

    TextTable table({"Fault class", "Intensity", "DRE", "Worst err",
                     "Substituted", "Imputed", "NaN est"});

    std::vector<SweepRow> rows;
    const SweepResult baseline =
        sweepProfile(campaign, model, spec, FaultProfile{}, 4242);
    rows.push_back({"(none)", 0.0, baseline});
    table.addRow({"(none)", "0.00", bench::pct(baseline.dre),
                  formatDouble(baseline.worstAbsErrW, 1) + " W",
                  std::to_string(baseline.substituted),
                  std::to_string(baseline.imputed),
                  std::to_string(baseline.nonFinite)});

    size_t totalNonFinite = baseline.nonFinite;
    bool boundedGrowth = true;
    for (FaultClass fc : allFaultClasses()) {
        double prevDre = baseline.dre;
        for (double k : intensities) {
            const FaultProfile profile = FaultProfile::forClass(fc, k);
            const SweepResult res = sweepProfile(
                campaign, model, spec, profile,
                4242 + static_cast<uint64_t>(fc) * 17);
            rows.push_back({faultClassName(fc), k, res});
            table.addRow({faultClassName(fc), formatDouble(k, 2),
                          bench::pct(res.dre),
                          formatDouble(res.worstAbsErrW, 1) + " W",
                          std::to_string(res.substituted),
                          std::to_string(res.imputed),
                          std::to_string(res.nonFinite)});
            totalNonFinite += res.nonFinite;
            // Bounded: clamping caps every error at the dynamic
            // range (meter noise can add a hair on the reference).
            boundedGrowth = boundedGrowth &&
                            res.worstAbsErrW <=
                                spec.dynamicRangeW() + 1.0;
            prevDre = std::max(prevDre, res.dre);
        }
    }
    std::cout << table.render() << "\n";

    const bool lostOk = lostMachineBoundHolds(campaign, model, spec);

    std::cout << "Checks:\n"
              << "  zero non-finite estimates across all sweeps: "
              << (totalNonFinite == 0 ? "PASS" : "FAIL") << "\n"
              << "  per-second error bounded by dynamic range: "
              << (boundedGrowth ? "PASS" : "FAIL") << "\n"
              << "  lost machine -> Lost health, finite cluster total,"
                 " error within Pmax-Pidle: "
              << (lostOk ? "PASS" : "FAIL") << "\n";

    // --- BENCH_robustness.json: sweep rows plus the registry view
    // of the online health counters and fault activations (the
    // chaos.online.* / chaos.faults.* metrics the sweeps drove).
    {
        std::string json = "{\n";
        json += "  \"bench\": \"robustness_dre\",\n";
        json += "  \"fast_mode\": " +
                std::string(bench::fastMode() ? "true" : "false") +
                ",\n";
        json += "  \"sweeps\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            json += sweepRowJson(rows[i]);
            json += i + 1 < rows.size() ? ",\n" : "\n";
        }
        json += "  ],\n";
        json += "  \"health_events_emitted\": " +
                std::to_string(
                    obs::EventLog::instance().totalEmitted()) +
                ",\n";
        json += "  \"metrics\": " +
                obs::Registry::instance().snapshotJson() + "\n";
        json += "}\n";
        std::ofstream out("BENCH_robustness.json");
        out << json;
        std::cout << "wrote BENCH_robustness.json\n";
    }

    const bool pass = totalNonFinite == 0 && boundedGrowth && lostOk;
    std::cout << "\nShape check: DRE grows with fault intensity but "
                 "the estimator never emits NaN;\nvalidation + "
                 "imputation + clamping keep every estimate inside "
                 "the machine's\nphysical envelope, so cluster "
                 "composition (Eq. 5) degrades gracefully.\n";
    return pass ? 0 : 1;
}
