/**
 * @file
 * Reproduces Table III: average machine rMSE, percent error
 * (rMSE / average power), and DRE for the Core 2 Duo (mobile) and
 * Atom (embedded) clusters on each workload — demonstrating that
 * DRE is the stricter, platform-comparable metric: on the Atom a
 * ~2% percent error translates into a 10-30% DRE because the
 * dynamic range is tiny.
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Table III: DRE vs rMSE vs %Err (mobile and "
                 "embedded clusters) ==\n\n";

    TextTable table({"Workload", "Core2 rMSE", "Core2 %Err",
                     "Core2 DRE", "Atom rMSE", "Atom %Err",
                     "Atom DRE"});

    ClusterCampaign core2 =
        bench::campaignFor(MachineClass::Core2, config);
    bench::dropRawRuns(core2);
    ClusterCampaign atom =
        bench::campaignFor(MachineClass::Atom, config);
    bench::dropRawRuns(atom);

    auto evaluate = [&config](const ClusterCampaign &campaign,
                              const std::string &workload) {
        const Dataset slice = campaign.data.filterWorkload(workload);
        return evaluateTechnique(
            slice, clusterFeatureSet(campaign.selection),
            ModelType::Quadratic, campaign.envelopes,
            config.evaluation);
    };

    for (const auto &workload : standardWorkloadNames()) {
        const auto c2 = evaluate(core2, workload);
        const auto at = evaluate(atom, workload);
        table.addRow({workload, formatDouble(c2.avgRmse, 2),
                      bench::pct(c2.avgPctErr), bench::pct(c2.avgDre),
                      formatDouble(at.avgRmse, 2),
                      bench::pct(at.avgPctErr),
                      bench::pct(at.avgDre)});
    }
    std::cout << table.render();

    std::cout
        << "\nShape check (paper Table III): the Atom's percent "
           "error is small (its 22-26 W\nenvelope is mostly static "
           "power) while its DRE is several times larger — the\n"
           "metric the paper introduces is the one that exposes how "
           "much of the DYNAMIC\nbehaviour the model explains.\n";
    return 0;
}
