/**
 * @file
 * Reproduces the Section V-C cross-platform result: the general
 * feature set costs at most ~1% DRE versus the cluster-specific set
 * (and no more than ~0.25% excluding the worst-case outlier). Also
 * serves as the pooling-vs-specific ablation called out in
 * DESIGN.md.
 */
#include <algorithm>
#include <iostream>

#include "common/bench_support.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Section V-C: general vs cluster-specific "
                 "feature sets ==\n\n";

    std::vector<ClusterCampaign> campaigns;
    std::vector<FeatureSelectionResult> selections;
    for (MachineClass mc : allMachineClasses()) {
        campaigns.push_back(bench::campaignFor(mc, config));
        bench::dropRawRuns(campaigns.back());
        selections.push_back(campaigns.back().selection);
    }
    const FeatureSet general = deriveGeneralFeatureSet(selections, 3);

    std::cout << "\nderived general feature set ("
              << general.counters.size() << " counters):\n";
    for (const auto &name : general.counters)
        std::cout << "  " << name << "\n";
    std::cout << "\n";

    TextTable table({"Cluster", "Workload", "DRE (specific)",
                     "DRE (general)", "delta (pp)"});
    std::vector<double> deltas;

    for (const auto &campaign : campaigns) {
        const std::string cluster =
            machineClassName(campaign.machineClass);
        for (const auto &workload : standardWorkloadNames()) {
            const Dataset slice =
                campaign.data.filterWorkload(workload);
            const auto specific = evaluateTechnique(
                slice, clusterFeatureSet(campaign.selection),
                ModelType::Quadratic, campaign.envelopes,
                config.evaluation);
            const auto with_general = evaluateTechnique(
                slice, general, ModelType::Quadratic,
                campaign.envelopes, config.evaluation);
            if (!specific.valid || !with_general.valid)
                continue;
            const double delta =
                with_general.avgDre - specific.avgDre;
            deltas.push_back(delta);
            table.addRow({cluster, workload,
                          bench::pct(specific.avgDre),
                          bench::pct(with_general.avgDre),
                          formatDouble(delta * 100.0, 2)});
        }
        table.addRule();
    }
    std::cout << table.render();

    std::sort(deltas.begin(), deltas.end());
    const double worst = deltas.empty() ? 0.0 : deltas.back();
    const double second_worst =
        deltas.size() > 1 ? deltas[deltas.size() - 2] : 0.0;
    std::cout << "\nworst-case DRE degradation from the general set: "
              << formatDouble(worst * 100.0, 2) << " pp (paper: <1 pp)"
              << "\nworst excluding the single outlier: "
              << formatDouble(second_worst * 100.0, 2)
              << " pp (paper: <0.25 pp)\n";
    std::cout << "\nNegative deltas mean the general set actually "
                 "helped (it can regularize a\nnoisy cluster-specific "
                 "selection).\n";
    return 0;
}
