/**
 * @file
 * Datacenter-scale roll-up benchmark: gates the cost of hierarchical
 * quality aggregation and sweeps metered-reference density against
 * roll-up verdict quality.
 *
 *  1. Scale: synthetic topologies of 10k and 100k machines (fast
 *     mode: 2k / 10k). Per tick we time (a) the update pass — one
 *     tree upsert per machine, observations synthesized OUTSIDE the
 *     timed region — and (b) the full aggregation pass that rolls
 *     every node's sketches, mixes, and worst-N rankings up to the
 *     root. Both are gated per machine, so one budget covers both
 *     scales:
 *       - update:     <= 3 µs/machine
 *       - aggregate:  <= 5 µs/machine
 *       - memory:     <= 1536 bytes/machine for the whole tree
 *     Floor rationale: an update is a map find + struct copy and an
 *     aggregation is two sketch adds plus an amortized share of
 *     O(nodes x buckets) merges — both measure ~0.25-0.3 µs/machine
 *     at 100k machines (27 ms and 24 ms per tick). The budgets sit
 *     ~10x above that so only a real regression (per-machine
 *     allocation, accidental O(n^2) merge, unbounded rankings) trips
 *     them on a loaded builder, while still pinning a 100k-machine
 *     datacenter tick under half a second. Memory: an observation is ~300 bytes of struct +
 *     strings + map overhead; 1536 bytes leaves room for node
 *     plumbing without letting per-machine state balloon.
 *
 *  2. Determinism: the aggregated roll-up JSON must be bit-identical
 *     between CHAOS_THREADS=1 and 8 (gated) — the sketches hold
 *     integer bucket counts and merges run in sorted-name order, so
 *     thread count must not leak into a single byte.
 *
 *  3. Density sweep: the paper's pooling trade-off at fleet scale.
 *     With drift injected into a known set of machines, sweep the
 *     metered fraction per platform class and report how many
 *     ground-truth drifters the roll-up actually flags. Recall at
 *     full metering must be >= 0.85 (drift ramps past every detector
 *     by the replay horizon) and must not increase as metering
 *     thins (gated); the absolute curve is reported for the docs.
 *
 * Writes BENCH_rollup.json; exits nonzero when a gate fails.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_support.hpp"
#include "rollup/rollup.hpp"
#include "rollup/synthetic.hpp"
#include "sim/fleet_topology.hpp"
#include "util/parallel.hpp"
#include "util/string_utils.hpp"

namespace {

using namespace chaos;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct ScaleResult
{
    std::size_t machines = 0;
    std::size_t nodes = 0;
    double updateMsPerTick = 0.0;
    double aggregateMsPerTick = 0.0;
    std::size_t memoryBytes = 0;
    double bytesPerMachine = 0.0;
    double clusterW = 0.0;
};

/** Best-of-N per-tick cost of the update and aggregate passes. */
ScaleResult
measureScale(std::size_t machines, std::uint64_t seed)
{
    FleetTopologyConfig config;
    config.machines = machines;
    config.seed = seed;
    const FleetTopology topology(config);

    rollup::RollupTree tree;
    ScaleResult result;
    result.machines = machines;

    const std::uint64_t ticks = 4;
    double bestUpdate = 1e18;
    double bestAggregate = 1e18;
    for (std::uint64_t tick = 0; tick < ticks; ++tick) {
        // Synthesis outside the timed region: the gate covers the
        // roll-up, not the workload generator.
        std::vector<rollup::MachineObservation> observations;
        observations.reserve(machines);
        for (std::size_t i = 0; i < machines; ++i) {
            observations.push_back(rollup::toObservation(
                topology.machines()[i], topology.observe(i, tick)));
        }

        const double updateStart = nowMs();
        for (std::size_t i = 0; i < machines; ++i) {
            tree.update(topology.machines()[i].groupPath,
                        observations[i]);
        }
        const double updateEnd = nowMs();

        const rollup::NodeSummary summary = tree.aggregate();
        const double aggregateEnd = nowMs();

        bestUpdate = std::min(bestUpdate, updateEnd - updateStart);
        bestAggregate =
            std::min(bestAggregate, aggregateEnd - updateEnd);
        result.clusterW = summary.stats.watts;
    }

    result.nodes = tree.numNodes();
    result.updateMsPerTick = bestUpdate;
    result.aggregateMsPerTick = bestAggregate;
    result.memoryBytes = tree.memoryBytes();
    result.bytesPerMachine =
        static_cast<double>(result.memoryBytes) /
        static_cast<double>(machines);
    return result;
}

/** Full pre-order JSONL dump (the determinism fingerprint). */
std::string
rollupDump(const rollup::NodeSummary &node)
{
    std::string out = node.toJson();
    out += "\n";
    for (const rollup::NodeSummary &child : node.children)
        out += rollupDump(child);
    return out;
}

struct DensityResult
{
    double density = 0.0;
    std::size_t groundTruth = 0;   ///< Machines that truly drift.
    std::size_t metered = 0;
    std::size_t detected = 0;      ///< Flagged Drifting by roll-up.
    double recall = 0.0;
};

DensityResult
measureDensity(double density, std::size_t machines,
               std::uint64_t seed)
{
    FleetTopologyConfig config;
    config.machines = machines;
    config.seed = seed;
    config.meteredFraction = density;
    config.driftFraction = 0.08;
    const FleetTopology topology(config);

    rollup::RollupTree tree;
    rollup::SyntheticRollupFeed feed(tree, topology);
    // Past every drift onset (warmup + 21 max) plus the ramp.
    const std::uint64_t ticks = 40;
    for (std::uint64_t t = 0; t < ticks; ++t)
        feed.tick(t);

    const rollup::NodeSummary summary = tree.aggregate();
    DensityResult result;
    result.density = density;
    result.groundTruth = topology.driftTruthTotal();
    result.metered = summary.stats.metered;
    result.detected = summary.stats.qualityDrifting;
    result.recall =
        result.groundTruth
            ? static_cast<double>(result.detected) /
                  static_cast<double>(result.groundTruth)
            : 0.0;
    return result;
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    std::printf("== rollup_scale: hierarchical roll-up cost ==\n\n");

    // --- Scale phase. ---
    const std::vector<std::size_t> scales =
        fast ? std::vector<std::size_t>{2'000, 10'000}
             : std::vector<std::size_t>{10'000, 100'000};
    const double updateBudgetUsPerMachine = 3.0;
    const double aggregateBudgetUsPerMachine = 5.0;
    const double memoryBudgetBytesPerMachine = 1536.0;

    bool ok = true;
    std::vector<ScaleResult> scaleResults;
    std::printf("%10s %8s %12s %14s %12s %10s\n", "machines",
                "nodes", "update/tick", "aggregate/tick", "memory",
                "bytes/m");
    for (std::size_t machines : scales) {
        const ScaleResult r = measureScale(machines, 2012);
        scaleResults.push_back(r);
        std::printf("%10zu %8zu %9.2f ms %11.2f ms %9.1f MB %10.0f\n",
                    r.machines, r.nodes, r.updateMsPerTick,
                    r.aggregateMsPerTick,
                    static_cast<double>(r.memoryBytes) / 1e6,
                    r.bytesPerMachine);

        const double updateUs =
            r.updateMsPerTick * 1000.0 /
            static_cast<double>(r.machines);
        const double aggregateUs =
            r.aggregateMsPerTick * 1000.0 /
            static_cast<double>(r.machines);
        if (updateUs > updateBudgetUsPerMachine) {
            std::printf("FAIL: update pass %.2f us/machine exceeds "
                        "%.1f us budget at %zu machines\n",
                        updateUs, updateBudgetUsPerMachine,
                        r.machines);
            ok = false;
        }
        if (aggregateUs > aggregateBudgetUsPerMachine) {
            std::printf("FAIL: aggregate pass %.2f us/machine "
                        "exceeds %.1f us budget at %zu machines\n",
                        aggregateUs, aggregateBudgetUsPerMachine,
                        r.machines);
            ok = false;
        }
        if (r.bytesPerMachine > memoryBudgetBytesPerMachine) {
            std::printf("FAIL: %.0f bytes/machine exceeds %.0f "
                        "budget at %zu machines\n",
                        r.bytesPerMachine,
                        memoryBudgetBytesPerMachine, r.machines);
            ok = false;
        }
    }

    // --- Determinism phase: thread count must not leak. ---
    bool deterministic = true;
    {
        FleetTopologyConfig config;
        config.machines = fast ? 1'000 : 5'000;
        config.seed = 7;
        const FleetTopology topology(config);
        rollup::RollupTree tree;
        rollup::SyntheticRollupFeed feed(tree, topology);
        for (std::uint64_t t = 0; t < 10; ++t)
            feed.tick(t);

        setGlobalThreadCount(1);
        const std::string serial = rollupDump(tree.aggregate());
        setGlobalThreadCount(8);
        const std::string threaded = rollupDump(tree.aggregate());
        setGlobalThreadCount(0);
        deterministic = serial == threaded;
        std::printf("\ndeterminism: %zu-node dump, 1 vs 8 threads: "
                    "%s\n",
                    tree.numNodes(),
                    deterministic ? "bit-identical" : "DIFFERS");
        if (!deterministic) {
            std::printf("FAIL: roll-up JSON depends on thread "
                        "count\n");
            ok = false;
        }
    }

    // --- Metered-density sweep: references vs verdict quality. ---
    const std::vector<double> densities = {1.0, 0.5, 0.25,
                                           0.1, 0.05, 0.02};
    const std::size_t sweepMachines = fast ? 1'000 : 5'000;
    std::vector<DensityResult> densityResults;
    std::printf("\n%8s %14s %10s %10s %8s\n", "metered",
                "ground truth", "metered", "detected", "recall");
    for (double density : densities) {
        const DensityResult r =
            measureDensity(density, sweepMachines, 99);
        densityResults.push_back(r);
        std::printf("%7.0f%% %14zu %10zu %10zu %7.1f%%\n",
                    density * 100.0, r.groundTruth, r.metered,
                    r.detected, r.recall * 100.0);
    }
    // Full metering must catch (essentially) every injected drifter;
    // thinning the references must never *improve* the verdict.
    if (densityResults.front().recall < 0.85) {
        std::printf("FAIL: recall %.2f at full metering is below "
                    "0.85\n",
                    densityResults.front().recall);
        ok = false;
    }
    for (std::size_t i = 1; i < densityResults.size(); ++i) {
        if (densityResults[i].recall >
            densityResults.front().recall + 1e-9) {
            std::printf("FAIL: recall rose from %.2f to %.2f as "
                        "metering thinned to %.0f%%\n",
                        densityResults.front().recall,
                        densityResults[i].recall,
                        densityResults[i].density * 100.0);
            ok = false;
        }
    }

    // --- BENCH_rollup.json. ---
    std::string json = "{\n";
    json += "  \"bench\": \"rollup_scale\",\n";
    json += "  \"fast_mode\": " +
            std::string(fast ? "true" : "false") + ",\n";
    json += "  \"scale\": [\n";
    for (std::size_t i = 0; i < scaleResults.size(); ++i) {
        const ScaleResult &r = scaleResults[i];
        json += "    {\"machines\": " + std::to_string(r.machines) +
                ", \"nodes\": " + std::to_string(r.nodes) +
                ", \"update_ms_per_tick\": " +
                formatDouble(r.updateMsPerTick, 3) +
                ", \"aggregate_ms_per_tick\": " +
                formatDouble(r.aggregateMsPerTick, 3) +
                ", \"memory_bytes\": " +
                std::to_string(r.memoryBytes) +
                ", \"bytes_per_machine\": " +
                formatDouble(r.bytesPerMachine, 1) +
                ", \"cluster_w\": " + formatDouble(r.clusterW, 1) +
                "}";
        json += (i + 1 < scaleResults.size()) ? ",\n" : "\n";
    }
    json += "  ],\n";
    json += "  \"update_budget_us_per_machine\": " +
            formatDouble(updateBudgetUsPerMachine, 1) + ",\n";
    json += "  \"aggregate_budget_us_per_machine\": " +
            formatDouble(aggregateBudgetUsPerMachine, 1) + ",\n";
    json += "  \"memory_budget_bytes_per_machine\": " +
            formatDouble(memoryBudgetBytesPerMachine, 0) + ",\n";
    json += "  \"deterministic\": " +
            std::string(deterministic ? "true" : "false") + ",\n";
    json += "  \"density_sweep\": [\n";
    for (std::size_t i = 0; i < densityResults.size(); ++i) {
        const DensityResult &r = densityResults[i];
        json += "    {\"density\": " + formatDouble(r.density, 2) +
                ", \"ground_truth\": " +
                std::to_string(r.groundTruth) +
                ", \"metered\": " + std::to_string(r.metered) +
                ", \"detected\": " + std::to_string(r.detected) +
                ", \"recall\": " + formatDouble(r.recall, 4) + "}";
        json += (i + 1 < densityResults.size()) ? ",\n" : "\n";
    }
    json += "  ],\n";
    json += "  \"pass\": " + std::string(ok ? "true" : "false") +
            "\n}\n";
    std::ofstream out("BENCH_rollup.json");
    out << json;
    std::printf("\nwrote BENCH_rollup.json (%s)\n",
                ok ? "pass" : "FAIL");
    return ok ? 0 : 1;
}
