/**
 * @file
 * Reproduces the paper's Table I power envelopes: probe each
 * platform's cluster at idle and under saturating load and report
 * the measured AC power range against the paper's numbers.
 */
#include <iostream>

#include "common/bench_support.hpp"
#include "oscounters/etw_session.hpp"
#include "stats/descriptive.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace chaos;

namespace {

/** Measured idle/max power of one machine via its meter. */
std::pair<double, double>
probeMachine(Machine &machine, PowerMeter &meter)
{
    EtwSession session(machine, meter, 42);

    // Idle probe: let DVFS settle, then average.
    RunningStats idle;
    for (int t = 0; t < 40; ++t) {
        const EtwRecord &record = session.tick(ActivityDemand{});
        if (t >= 10)
            idle.add(record.measuredPowerW);
    }

    // Saturation probe: all components maxed out.
    ActivityDemand full;
    full.cpuCoreSeconds =
        static_cast<double>(machine.spec().numCores);
    full.diskReadBytes = machine.spec().numDisks *
                         machine.spec().diskBandwidthMBs * 1e6;
    full.diskWriteBytes = full.diskReadBytes;
    full.netRxBytes = 125e6;
    full.netTxBytes = 125e6;
    full.workingSetBytes = machine.spec().memoryGB * 0.8e9;
    full.memIntensity = 1.0;
    full.fsCacheOps = 2000.0;

    RunningStats busy;
    for (int t = 0; t < 40; ++t) {
        const EtwRecord &record = session.tick(full);
        if (t >= 10)
            busy.add(record.measuredPowerW);
    }
    return {idle.mean(), busy.mean()};
}

} // namespace

int
main()
{
    std::cout << "== Table I: platform power envelopes "
                 "(measured at the wall) ==\n\n";

    TextTable table({"System Class", "Cores", "Disks",
                     "Paper Range (W)", "Measured Idle (W)",
                     "Measured Max (W)"});

    for (MachineClass mc : allMachineClasses()) {
        const MachineSpec spec = machineSpecFor(mc);
        Cluster cluster = Cluster::homogeneous(
            mc, bench::fastMode() ? 2 : 5, 1234);

        double idle_lo = 1e12, idle_hi = 0.0;
        double max_lo = 1e12, max_hi = 0.0;
        for (size_t m = 0; m < cluster.size(); ++m) {
            const auto [idle, busy] =
                probeMachine(cluster.machine(m), cluster.meter(m));
            idle_lo = std::min(idle_lo, idle);
            idle_hi = std::max(idle_hi, idle);
            max_lo = std::min(max_lo, busy);
            max_hi = std::max(max_hi, busy);
        }

        table.addRow({spec.name, std::to_string(spec.numCores),
                      std::to_string(spec.numDisks),
                      formatDouble(spec.idlePowerW, 0) + "-" +
                          formatDouble(spec.maxPowerW, 0),
                      formatDouble(idle_lo, 1) + "-" +
                          formatDouble(idle_hi, 1),
                      formatDouble(max_lo, 1) + "-" +
                          formatDouble(max_hi, 1)});
    }
    std::cout << table.render();
    std::cout << "\nMachine-to-machine spread within a class comes "
                 "from realized coefficient\nvariation (paper: up to "
                 "~10%) plus meter calibration error (1.5%).\n";
    return 0;
}
