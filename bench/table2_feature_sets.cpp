/**
 * @file
 * Reproduces Table II: the significant performance counters selected
 * by Algorithm 1 for each cluster, plus the derived cross-platform
 * general feature set. Prints the same counter x cluster X-matrix
 * the paper reports.
 */
#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "common/bench_support.hpp"
#include "oscounters/counter_catalog.hpp"
#include "util/table.hpp"

using namespace chaos;

int
main()
{
    const CampaignConfig config = bench::paperCampaignConfig();
    std::cout << "== Table II: selected counters per cluster + "
                 "general set ==\n\n";

    std::vector<FeatureSelectionResult> selections;
    std::vector<std::string> cluster_names;
    for (MachineClass mc : allMachineClasses()) {
        ClusterCampaign campaign = bench::campaignFor(mc, config);
        bench::dropRawRuns(campaign);
        std::cout << "  " << machineClassName(mc) << ": funnel "
                  << campaign.selection.catalogSize << " -> "
                  << campaign.selection.afterConstantDrop << " -> "
                  << campaign.selection.afterCorrelation << " -> "
                  << campaign.selection.afterCoDependency << " -> "
                  << campaign.selection.selected.size()
                  << " features (threshold "
                  << campaign.selection.finalThreshold << ")\n";
        selections.push_back(campaign.selection);
        cluster_names.push_back(machineClassName(mc));
    }

    const FeatureSet general = deriveGeneralFeatureSet(selections, 3);

    // Union of all selected counters, grouped by category.
    const auto &catalog = CounterCatalog::instance();
    std::map<std::string, std::vector<std::string>> by_category;
    std::set<std::string> all_selected;
    for (const auto &selection : selections) {
        for (const auto &name : selection.selected)
            all_selected.insert(name);
    }
    for (const auto &name : general.counters)
        all_selected.insert(name);
    for (const auto &name : all_selected) {
        const auto category =
            catalog.def(catalog.indexOf(name)).category;
        by_category[counterCategoryName(category)].push_back(name);
    }

    std::vector<std::string> header{"Category", "Performance counter"};
    for (const auto &cluster : cluster_names)
        header.push_back(cluster);
    header.push_back("General");
    TextTable table(header);

    for (const auto &[category, names] : by_category) {
        for (const auto &name : names) {
            std::vector<std::string> row{category, name};
            for (const auto &selection : selections) {
                const bool hit =
                    std::find(selection.selected.begin(),
                              selection.selected.end(),
                              name) != selection.selected.end();
                row.push_back(hit ? "X" : "");
            }
            const bool in_general =
                std::find(general.counters.begin(),
                          general.counters.end(),
                          name) != general.counters.end();
            row.push_back(in_general ? "X" : "");
            table.addRow(row);
        }
        table.addRule();
    }
    std::cout << "\n" << table.render();

    std::cout << "\nPaper shape checks:\n"
              << "  - CPU utilization selected on every cluster\n"
              << "  - frequency counter selected on DVFS clusters "
                 "only (not Atom)\n"
              << "  - storage-heavy Xeons select more disk/paging "
                 "counters than SSD platforms\n";
    return 0;
}
