/**
 * @file
 * Streaming serving-path throughput benchmark.
 *
 * Measures the fleet server (src/serve) on a 5-machine Core2 fleet
 * with a deployed linear model, in five phases:
 *
 *  - blast: a single producer submits recorded catalog rows as fast
 *    as possible while the drainer evaluates them through the thread
 *    pool at 1, 2, 4, and 8 threads; reports sustained samples/sec
 *    and the p50/p99 per-pass drain latency. This is the end-to-end
 *    number: it includes the producer's submission cost and the
 *    queue handoff;
 *  - batched drain: the queues are preloaded with the full workload
 *    and only the drain loop is timed, so the number isolates the
 *    evaluation path itself — compiled-plan estimateBatch over
 *    reused scratch, no producer contention. This is the path the
 *    batched-throughput floor gates;
 *  - replay: the trace replayer streams the same fleet at a paced
 *    speed multiplier (a 1 Hz-per-machine trace accelerated, still
 *    far below saturation) and asserts that not a single sample was
 *    dropped;
 *  - monitor overhead: the blast is repeated with metered reference
 *    readings on every sample, with and without a FleetMonitor
 *    attached;
 *  - autopilot overhead: the monitored blast is repeated with an
 *    armed AutopilotController (reference windows enabled on every
 *    machine, drift listener installed, ticked periodically from the
 *    producer) against a monitor-only baseline;
 *  - stage-tracing overhead: the batched drain is repeated with
 *    sample stage tracing (ingest stamps + chaos.serve.stage.*
 *    histograms) toggled off and on, gating the tracing cost on the
 *    multi-million-samples/sec path it rides.
 *
 * Overhead methodology (both overhead phases): off and on run
 * back-to-back inside each rep so each pair shares the host's load;
 * the first (warmup) pair is discarded — it pays page faults, pool
 * spin-up, and allocator warmup for both sides; the reported
 * overhead is the *median* of the per-rep ns/sample differences.
 * Selecting the best pair instead (as this benchmark once did)
 * systematically reports the most favorable scheduler accident —
 * including impossible negative overheads — because the minimum of
 * noisy differences is biased low. The median raw value may still
 * come out slightly negative on a noisy host (that is what the noise
 * bound quantifies); the headline overhead clamps it at zero, and
 * both values are written to the JSON.
 *
 * Writes BENCH_serve.json into the working directory and exits
 * nonzero if the scalar throughput floor (1M samples/sec), the
 * batched-path floor (5M samples/sec at 4 threads), the p99 drain
 * latency budget (1.5 ms at every thread count of the batched
 * phase; blast-phase p99 is reported but ungated, since with
 * producer and drainer sharing a core it measures OS preemption,
 * not drain work), the zero-drop replay assertion, or an overhead
 * budget fails, so tier-1 can run it as a smoke test.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "autopilot/autopilot.hpp"
#include "common/bench_support.hpp"
#include "monitor/fleet_monitor.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "serve/stage_metrics.hpp"
#include "util/parallel.hpp"
#include "util/string_utils.hpp"

using namespace chaos;

namespace {

constexpr size_t kFleetSize = 5;

/** Percentile of a latency sample (by sorted rank). */
double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(p * static_cast<double>(values.size())));
    return values[rank];
}

/** Median of a sample. */
double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    return n % 2 == 1 ? values[n / 2]
                      : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

struct BlastResult
{
    size_t threads = 0;
    double samplesPerSec = 0.0;
    uint64_t submitted = 0;
    uint64_t processed = 0;
    uint64_t dropped = 0;
    double p50DrainMs = 0.0;
    double p99DrainMs = 0.0;
};

/** Saturate a fresh server with @p total samples round-robin. */
BlastResult
blast(const MachinePowerModel &model,
      const std::vector<std::vector<double>> &rows, size_t threads,
      size_t total)
{
    setGlobalThreadCount(threads);
    serve::FleetServerConfig config;
    config.recordDrainLatencies = true;
    serve::FleetServer server(config);
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    server.start();

    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
        server.submitTo(*entries[i % entries.size()],
                        rows[i % rows.size()]);
    }
    server.waitIdle();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();

    BlastResult result;
    result.threads = threads;
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    result.submitted = server.submitted();
    result.processed = server.processed();
    result.dropped = server.dropped();
    result.samplesPerSec =
        static_cast<double>(result.processed) / seconds;
    const std::vector<double> latencies = server.drainLatenciesMs();
    result.p50DrainMs = percentile(latencies, 0.50);
    result.p99DrainMs = percentile(latencies, 0.99);
    return result;
}

/**
 * Preload the queues with @p total samples, then time nothing but
 * the drain loop: the batched evaluation path in isolation (compiled
 * plans, reused scratch, no producer on the other side of the
 * queues). Every preloaded sample must be processed — the queues are
 * sized to hold the whole workload, so a single drop means the
 * harness is broken.
 */
BlastResult
drainBlast(const MachinePowerModel &model,
           const std::vector<std::vector<double>> &rows,
           size_t threads, size_t total)
{
    setGlobalThreadCount(threads);
    serve::FleetServerConfig config;
    config.recordDrainLatencies = true;
    // Hold the entire preload: no shard may overflow, or drop-oldest
    // would silently shrink the measured workload.
    config.queueCapacity = total;
    serve::FleetServer server(config);
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    for (size_t i = 0; i < total; ++i) {
        server.submitTo(*entries[i % entries.size()],
                        rows[i % rows.size()]);
    }

    const auto start = std::chrono::steady_clock::now();
    while (server.drainOnce() > 0) {
    }
    const auto stop = std::chrono::steady_clock::now();

    BlastResult result;
    result.threads = threads;
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    result.submitted = server.submitted();
    result.processed = server.processed();
    result.dropped = server.dropped();
    result.samplesPerSec =
        static_cast<double>(result.processed) / seconds;
    const std::vector<double> latencies = server.drainLatenciesMs();
    result.p50DrainMs = percentile(latencies, 0.50);
    result.p99DrainMs = percentile(latencies, 0.99);
    return result;
}

/**
 * Blast with metered references on every sample, optionally with a
 * FleetMonitor attached. @return Sustained samples/sec.
 */
double
monitoredBlast(const MachinePowerModel &model,
               const std::vector<std::vector<double>> &rows,
               const std::vector<double> &meteredW, bool monitorOn,
               size_t total)
{
    serve::FleetServer server;
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    monitor::QualityMonitorConfig qualityConfig;
    // Arm the detector early so the whole run pays the full
    // per-sample monitoring cost, not just the warmup accumulation.
    qualityConfig.warmupSamples = 100;
    monitor::FleetMonitor fleetMonitor(qualityConfig);
    if (monitorOn)
        fleetMonitor.attach(server);
    server.start();

    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
        const size_t r = i % rows.size();
        server.submitTo(*entries[i % entries.size()], rows[r],
                        meteredW[r]);
    }
    server.waitIdle();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(server.processed()) / seconds;
}

/**
 * Monitored blast with an armed (but idle) autopilot: every machine
 * has a live reference window, the drift listener is installed, and
 * the controller ticks every ~1000 submissions the way a live
 * deployment would tick once a second. Nothing drifts, so this
 * measures the pure drain-path cost of being remediable.
 * @return Sustained samples/sec.
 */
double
autopilotBlast(const MachinePowerModel &model,
               const std::vector<std::vector<double>> &rows,
               const std::vector<double> &meteredW, bool autopilotOn,
               size_t total)
{
    serve::FleetServer server;
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    monitor::QualityMonitorConfig qualityConfig;
    qualityConfig.warmupSamples = 100;
    monitor::FleetMonitor fleetMonitor(qualityConfig);
    fleetMonitor.attach(server);
    autopilot::AutopilotController pilot(server, fleetMonitor);
    if (autopilotOn)
        pilot.start();
    server.start();

    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
        const size_t r = i % rows.size();
        server.submitTo(*entries[i % entries.size()], rows[r],
                        meteredW[r]);
        if (autopilotOn && i % 1000 == 999)
            pilot.tick();
    }
    server.waitIdle();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();
    if (autopilotOn)
        pilot.stop();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(server.processed()) / seconds;
}

/** Result of one paired-overhead measurement (see file comment). */
struct OverheadResult
{
    double offSps = 0.0;       ///< Median baseline samples/sec.
    double onSps = 0.0;        ///< Median treated samples/sec.
    double rawNsPerSample = 0.0; ///< Median of per-pair differences.
    double nsPerSample = 0.0;  ///< Headline: raw clamped at >= 0.
    double rawPct = 0.0;       ///< From the median sps values.
    double pct = 0.0;          ///< Headline: raw clamped at >= 0.
    double noiseNs = 0.0;      ///< MAD of the per-pair differences.
};

/**
 * Run @p reps measured off/on pairs of @p run (after one discarded
 * warmup pair) and reduce them with the median-of-differences
 * estimator described in the file comment.
 */
template <typename RunFn>
OverheadResult
measureOverhead(const char *label, RunFn run, int reps)
{
    run(false);
    run(true); // Warmup pair: discarded (see file comment).

    std::vector<double> offRuns, onRuns, diffsNs;
    for (int rep = 0; rep < reps; ++rep) {
        const double off = run(false);
        const double on = run(true);
        std::printf("  %s rep %d: off %.0f/s, on %.0f/s\n", label,
                    rep + 1, off, on);
        offRuns.push_back(off);
        onRuns.push_back(on);
        if (off > 0.0 && on > 0.0)
            diffsNs.push_back(1e9 / on - 1e9 / off);
    }

    OverheadResult result;
    result.offSps = median(offRuns);
    result.onSps = median(onRuns);
    result.rawNsPerSample = median(diffsNs);
    result.nsPerSample = std::max(result.rawNsPerSample, 0.0);
    result.rawPct = result.offSps > 0.0
                        ? (result.offSps - result.onSps) /
                              result.offSps * 100.0
                        : 0.0;
    result.pct = std::max(result.rawPct, 0.0);
    std::vector<double> deviations;
    for (double d : diffsNs)
        deviations.push_back(std::fabs(d - result.rawNsPerSample));
    result.noiseNs = median(deviations);
    return result;
}

/** JSON fragment shared by both overhead sections. */
std::string
overheadJson(const OverheadResult &r, size_t samples, int reps)
{
    return "{\"samples\": " + std::to_string(samples) +
           ", \"reps\": " + std::to_string(reps) +
           ", \"off_samples_per_sec\": " + formatDouble(r.offSps, 0) +
           ", \"on_samples_per_sec\": " + formatDouble(r.onSps, 0) +
           ", \"overhead_pct\": " + formatDouble(r.pct, 4) +
           ", \"raw_overhead_pct\": " + formatDouble(r.rawPct, 4) +
           ", \"overhead_ns_per_sample\": " +
           formatDouble(r.nsPerSample, 2) +
           ", \"raw_overhead_ns_per_sample\": " +
           formatDouble(r.rawNsPerSample, 2) +
           ", \"noise_ns_per_sample\": " +
           formatDouble(r.noiseNs, 2) + "}";
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    std::printf("== serve_throughput: streaming serving path ==\n\n");

    // A small recorded campaign supplies realistic catalog rows and
    // the training data for the deployed model.
    CampaignConfig config;
    config.numMachines = kFleetSize;
    config.runsPerWorkload = 1;
    config.seed = 2012;
    config.run.durationScale = fast ? 0.05 : 0.2;
    const ClusterCampaign campaign =
        collectClusterData(MachineClass::Core2, config);
    const Dataset &data = campaign.data;

    FeatureSet features{"bench",
                        {"Processor(0)\\% Processor Time",
                         "Processor(1)\\% Processor Time"}};
    const MachinePowerModel model = MachinePowerModel::fit(
        data, features, ModelType::Linear, MarsConfig());

    std::vector<std::vector<double>> rows;
    const size_t pool = std::min<size_t>(data.numRows(), 1024);
    rows.reserve(pool);
    for (size_t r = 0; r < pool; ++r)
        rows.push_back(data.features().row(r));

    // --- Blast phase: sustained end-to-end throughput. ---
    const size_t total = fast ? 50'000 : 400'000;
    std::vector<BlastResult> results;
    std::printf("%8s %14s %10s %10s %12s %12s\n", "threads",
                "samples/sec", "processed", "dropped", "p50 drain",
                "p99 drain");
    for (size_t threads : {1, 2, 4, 8}) {
        const BlastResult r = blast(model, rows, threads, total);
        results.push_back(r);
        std::printf("%8zu %14.0f %10llu %10llu %9.3f ms %9.3f ms\n",
                    r.threads, r.samplesPerSec,
                    static_cast<unsigned long long>(r.processed),
                    static_cast<unsigned long long>(r.dropped),
                    r.p50DrainMs, r.p99DrainMs);
    }

    // --- Batched drain phase: the evaluation path in isolation. ---
    std::vector<BlastResult> batchedResults;
    std::printf("\nbatched drain (queues preloaded, drain loop only):\n");
    std::printf("%8s %14s %10s %10s %12s %12s\n", "threads",
                "samples/sec", "processed", "dropped", "p50 drain",
                "p99 drain");
    for (size_t threads : {1, 2, 4, 8}) {
        const BlastResult r = drainBlast(model, rows, threads, total);
        batchedResults.push_back(r);
        std::printf("%8zu %14.0f %10llu %10llu %9.3f ms %9.3f ms\n",
                    r.threads, r.samplesPerSec,
                    static_cast<unsigned long long>(r.processed),
                    static_cast<unsigned long long>(r.dropped),
                    r.p50DrainMs, r.p99DrainMs);
    }

    // --- Replay phase: paced 1 Hz-per-machine trace, zero drops. ---
    setGlobalThreadCount(4);
    serve::FleetServer replayServer;
    serve::TraceReplayer replayer(data);
    for (const std::string &id : replayer.machineIds())
        replayServer.addMachine(id, model);
    serve::ReplayConfig replayConfig;
    replayConfig.speed = 100.0;
    replayServer.start();
    const serve::ReplayStats replayStats =
        replayer.replayInto(replayServer, replayConfig);
    replayServer.stop();
    setGlobalThreadCount(1);
    std::printf("\nreplay @%gx: %llu ticks, %llu samples, "
                "%llu dropped\n",
                replayConfig.speed,
                static_cast<unsigned long long>(replayStats.ticks),
                static_cast<unsigned long long>(
                    replayStats.submitted),
                static_cast<unsigned long long>(
                    replayServer.dropped()));

    // --- Monitor overhead: metered blast with/without FleetMonitor. ---
    std::vector<double> meteredPool;
    meteredPool.reserve(pool);
    for (size_t r = 0; r < pool; ++r)
        meteredPool.push_back(data.powerW()[r]);
    // 4 threads (the headline config) and runs long enough that each
    // timed side spans many OS timeslices: on a small host the
    // scheduler's ~3 ms slices are the dominant noise term, and a
    // ~100 ms run gives the median pair little to average over.
    setGlobalThreadCount(4);
    const size_t monitorTotal = fast ? 50'000 : 600'000;
    const int monitorReps = 7;
    const OverheadResult monitorOverhead = measureOverhead(
        "monitor",
        [&](bool on) {
            return monitoredBlast(model, rows, meteredPool, on,
                                  monitorTotal);
        },
        monitorReps);
    setGlobalThreadCount(1);
    // Absolute per-sample cost: the honest unit for the hot-path
    // budget. Short fast-mode runs on a loaded host carry several
    // percent of scheduler noise, so the relative gate alone would
    // flap; 20 ns/sample is < 1% of any realistic per-sample serving
    // cost.
    const double overheadNsBudget = 20.0;
    std::printf("\nmonitor overhead (median of %d pairs, metered "
                "refs): off %.0f/s, on %.0f/s (%+.3f%% raw, %+.1f "
                "ns/sample raw, noise %.1f ns), budget 1%% or %.0f "
                "ns/sample + noise\n",
                monitorReps, monitorOverhead.offSps,
                monitorOverhead.onSps, monitorOverhead.rawPct,
                monitorOverhead.rawNsPerSample,
                monitorOverhead.noiseNs, overheadNsBudget);

    // --- Autopilot overhead: armed-and-idle vs monitor-only. ---
    // Longer runs and more reps than the monitor phase: the budget
    // compares two already-monitored configurations, so the signal
    // is a few ns/sample and a 30 ms fast-mode run would be pure
    // scheduler noise.
    setGlobalThreadCount(4);
    const size_t autopilotTotal = fast ? 150'000 : 600'000;
    const int autopilotReps = 7;
    const OverheadResult autopilotOverhead = measureOverhead(
        "autopilot",
        [&](bool on) {
            return autopilotBlast(model, rows, meteredPool, on,
                                  autopilotTotal);
        },
        autopilotReps);
    setGlobalThreadCount(1);
    std::printf("\nautopilot overhead (median of %d pairs, armed "
                "idle): off %.0f/s, on %.0f/s (%+.3f%% raw, %+.1f "
                "ns/sample raw, noise %.1f ns), budget 1%% or %.0f "
                "ns/sample + noise\n",
                autopilotReps, autopilotOverhead.offSps,
                autopilotOverhead.onSps, autopilotOverhead.rawPct,
                autopilotOverhead.rawNsPerSample,
                autopilotOverhead.noiseNs, overheadNsBudget);

    // --- Stage-tracing overhead: batched drain off/on. ---
    // The batched drain is the fastest path stage tracing rides
    // (millions of samples/sec, so tens of ns/sample of tracing work
    // would show immediately). Off-side runs drain unstamped samples;
    // on-side runs pay the submit stamp (outside the timed drain),
    // the per-sample guard + two histogram observes, and the
    // per-batch clock reads.
    const size_t stageTotal = fast ? 150'000 : 400'000;
    const int stageReps = 7;
    const OverheadResult stageOverhead = measureOverhead(
        "stage-tracing",
        [&](bool on) {
            serve::setStageTracingEnabled(on);
            const BlastResult r =
                drainBlast(model, rows, 4, stageTotal);
            serve::setStageTracingEnabled(true);
            setGlobalThreadCount(1);
            return r.samplesPerSec;
        },
        stageReps);
    std::printf("\nstage-tracing overhead (median of %d pairs, "
                "batched drain): off %.0f/s, on %.0f/s (%+.3f%% raw, "
                "%+.1f ns/sample raw, noise %.1f ns), budget 1%% or "
                "%.0f ns/sample + noise\n",
                stageReps, stageOverhead.offSps, stageOverhead.onSps,
                stageOverhead.rawPct, stageOverhead.rawNsPerSample,
                stageOverhead.noiseNs, overheadNsBudget);

    // --- Assertions. ---
    // The scalar floor gates the end-to-end producer+drain path; the
    // batched floor gates the isolated drain path at 4 threads. Both
    // apply in fast mode too: per-sample speed does not depend on
    // how many samples the run pushes.
    const double floorSps = 1'000'000.0;
    const double batchedFloorSps = 5'000'000.0;
    const double p99BudgetMs = 1.5;
    double bestBlastSps = 0.0;
    for (const BlastResult &r : results)
        bestBlastSps = std::max(bestBlastSps, r.samplesPerSec);
    const BlastResult *batchedAt4 = nullptr;
    for (const BlastResult &r : batchedResults) {
        if (r.threads == 4)
            batchedAt4 = &r;
    }
    bool ok = true;
    if (bestBlastSps < floorSps) {
        std::printf("FAIL: best blast throughput %.0f samples/sec "
                    "is below the %.0f scalar floor\n",
                    bestBlastSps, floorSps);
        ok = false;
    }
    if (batchedAt4 == nullptr ||
        batchedAt4->samplesPerSec < batchedFloorSps) {
        std::printf("FAIL: batched drain throughput %.0f "
                    "samples/sec at 4 threads is below the %.0f "
                    "batched floor\n",
                    batchedAt4 ? batchedAt4->samplesPerSec : 0.0,
                    batchedFloorSps);
        ok = false;
    }
    // The p99 budget gates the *batched drain* phase only: there the
    // drainer owns the core, so pass latency reflects the scheduler's
    // work (bounded batch x per-sample cost). Blast-phase p99 is
    // reported but ungated — with producers and drainer sharing one
    // core, a drain pass can span an OS timeslice (~3 ms) while the
    // producer runs, which measures preemption, not drain work.
    for (const BlastResult &r : batchedResults) {
        if (r.p99DrainMs > p99BudgetMs) {
            std::printf("FAIL: batched p99 drain %.3f ms at %zu "
                        "threads exceeds the %.1f ms budget\n",
                        r.p99DrainMs, r.threads, p99BudgetMs);
            ok = false;
        }
        if (r.dropped != 0) {
            std::printf("FAIL: batched drain dropped %llu samples "
                        "(preload overflowed a shard)\n",
                        static_cast<unsigned long long>(r.dropped));
            ok = false;
        }
    }
    if (replayServer.dropped() != 0) {
        std::printf("FAIL: paced replay dropped %llu samples\n",
                    static_cast<unsigned long long>(
                        replayServer.dropped()));
        ok = false;
    }
    if (replayServer.processed() != replayStats.submitted) {
        std::printf("FAIL: replay processed %llu of %llu submitted "
                    "(lost or duplicated samples)\n",
                    static_cast<unsigned long long>(
                        replayServer.processed()),
                    static_cast<unsigned long long>(
                        replayStats.submitted));
        ok = false;
    }
    // The absolute-cost gate allows one noise bound (the MAD of the
    // per-pair differences) on top of the budget: a median within
    // noise of the budget is not evidence of a regression, and on a
    // loaded host the MAD widens exactly when a hard cutoff would be
    // meaningless. A real regression shows a median clear of both.
    if (monitorOverhead.onSps <
            0.99 * monitorOverhead.offSps &&
        monitorOverhead.nsPerSample >
            overheadNsBudget + monitorOverhead.noiseNs) {
        std::printf("FAIL: monitored throughput %.0f/s is more than "
                    "1%% below unmonitored %.0f/s and the absolute "
                    "cost %.1f ns/sample exceeds %.0f ns + %.1f ns "
                    "noise\n",
                    monitorOverhead.onSps, monitorOverhead.offSps,
                    monitorOverhead.nsPerSample, overheadNsBudget,
                    monitorOverhead.noiseNs);
        ok = false;
    }
    if (monitorOverhead.onSps < floorSps) {
        std::printf("FAIL: monitored throughput %.0f/s is below the "
                    "%.0f floor\n",
                    monitorOverhead.onSps, floorSps);
        ok = false;
    }
    if (autopilotOverhead.onSps <
            0.99 * autopilotOverhead.offSps &&
        autopilotOverhead.nsPerSample >
            overheadNsBudget + autopilotOverhead.noiseNs) {
        std::printf("FAIL: autopilot-armed throughput %.0f/s is more "
                    "than 1%% below monitor-only %.0f/s and the "
                    "absolute cost %.1f ns/sample exceeds %.0f ns + "
                    "%.1f ns noise\n",
                    autopilotOverhead.onSps, autopilotOverhead.offSps,
                    autopilotOverhead.nsPerSample, overheadNsBudget,
                    autopilotOverhead.noiseNs);
        ok = false;
    }
    if (autopilotOverhead.onSps < floorSps) {
        std::printf("FAIL: autopilot-armed throughput %.0f/s is "
                    "below the %.0f floor\n",
                    autopilotOverhead.onSps, floorSps);
        ok = false;
    }
    // Stage tracing rides the hottest path in the process; the same
    // dual gate (relative AND absolute-beyond-noise) applies.
    if (stageOverhead.onSps < 0.99 * stageOverhead.offSps &&
        stageOverhead.nsPerSample >
            overheadNsBudget + stageOverhead.noiseNs) {
        std::printf("FAIL: traced batched drain %.0f/s is more than "
                    "1%% below untraced %.0f/s and the absolute cost "
                    "%.1f ns/sample exceeds %.0f ns + %.1f ns "
                    "noise\n",
                    stageOverhead.onSps, stageOverhead.offSps,
                    stageOverhead.nsPerSample, overheadNsBudget,
                    stageOverhead.noiseNs);
        ok = false;
    }
    // The blast phases all ran with tracing on (the default), so the
    // stage histograms must hold a real end-to-end distribution by
    // now — an empty or zero p99 means the stamps stopped flowing.
    const double e2eP99Us =
        serve::StageMetrics::get().e2eUs.percentile(0.99);
    if (!(e2eP99Us > 0.0)) {
        std::printf("FAIL: end-to-end stage latency p99 is %.3f us "
                    "(stage stamps are not reaching the drain)\n",
                    e2eP99Us);
        ok = false;
    }

    // --- BENCH_serve.json. ---
    const auto throughputArray =
        [](const std::vector<BlastResult> &list) {
            std::string json;
            for (size_t i = 0; i < list.size(); ++i) {
                const BlastResult &r = list[i];
                json += "    {\"threads\": " +
                        std::to_string(r.threads) +
                        ", \"samples_per_sec\": " +
                        formatDouble(r.samplesPerSec, 0) +
                        ", \"processed\": " +
                        std::to_string(r.processed) +
                        ", \"dropped\": " +
                        std::to_string(r.dropped) +
                        ", \"p50_drain_ms\": " +
                        formatDouble(r.p50DrainMs, 4) +
                        ", \"p99_drain_ms\": " +
                        formatDouble(r.p99DrainMs, 4) + "}";
                json += (i + 1 < list.size()) ? ",\n" : "\n";
            }
            return json;
        };
    std::string json = "{\n";
    json += "  \"bench\": \"serve_throughput\",\n";
    json += "  \"fast_mode\": " +
            std::string(fast ? "true" : "false") + ",\n";
    json += "  \"fleet_size\": " + std::to_string(kFleetSize) + ",\n";
    json += "  \"samples_per_config\": " + std::to_string(total) +
            ",\n";
    json += "  \"throughput\": [\n" + throughputArray(results) +
            "  ],\n";
    json += "  \"batched_throughput\": [\n" +
            throughputArray(batchedResults) + "  ],\n";
    json += "  \"replay\": {\"speed\": " +
            formatDouble(replayConfig.speed, 0) +
            ", \"ticks\": " + std::to_string(replayStats.ticks) +
            ", \"submitted\": " +
            std::to_string(replayStats.submitted) +
            ", \"processed\": " +
            std::to_string(replayServer.processed()) +
            ", \"dropped\": " +
            std::to_string(replayServer.dropped()) + "},\n";
    json += "  \"monitor_overhead\": " +
            overheadJson(monitorOverhead, monitorTotal, monitorReps) +
            ",\n";
    json += "  \"autopilot_overhead\": " +
            overheadJson(autopilotOverhead, autopilotTotal,
                         autopilotReps) +
            ",\n";
    json += "  \"stage_overhead\": " +
            overheadJson(stageOverhead, stageTotal, stageReps) +
            ",\n";
    // Cumulative stage distributions across every traced phase of
    // this run: the committed artifact that proves end-to-end stamps
    // flow (tier-1 checks e2e p99 here is nonzero).
    json += "  \"stage_latency\": " + serve::stageLatencyJson() +
            ",\n";
    json += "  \"throughput_floor_sps\": " +
            formatDouble(floorSps, 0) + ",\n";
    json += "  \"batched_throughput_floor_sps\": " +
            formatDouble(batchedFloorSps, 0) + ",\n";
    json += "  \"p99_drain_budget_ms\": " +
            formatDouble(p99BudgetMs, 1) + ",\n";
    // Blast-phase p99 summary (worst thread config), reported but
    // ungated: blast drains run whatever accumulated between passes,
    // so this tracks ingest bursts, not the bounded evaluation path.
    double blastP99 = 0.0;
    for (const BlastResult &r : results)
        blastP99 = std::max(blastP99, r.p99DrainMs);
    json += "  \"blast_p99_drain_ms\": " +
            formatDouble(blastP99, 4) + ",\n";
    json += "  \"pass\": " + std::string(ok ? "true" : "false") +
            "\n}\n";
    std::ofstream out("BENCH_serve.json");
    out << json;
    std::printf("\nwrote BENCH_serve.json (%s)\n",
                ok ? "pass" : "FAIL");
    return ok ? 0 : 1;
}
