/**
 * @file
 * Streaming serving-path throughput benchmark.
 *
 * Measures the fleet server (src/serve) on a 5-machine Core2 fleet
 * with a deployed linear model, in two phases:
 *
 *  - blast: a single producer submits recorded catalog rows as fast
 *    as possible while the drainer evaluates them through the thread
 *    pool at 1, 2, 4, and 8 threads; reports sustained samples/sec
 *    and the p50/p99 per-pass drain latency;
 *  - replay: the trace replayer streams the same fleet at a paced
 *    speed multiplier (a 1 Hz-per-machine trace accelerated, still
 *    far below saturation) and asserts that not a single sample was
 *    dropped;
 *  - monitor overhead: the blast is repeated with metered reference
 *    readings on every sample, with and without a FleetMonitor
 *    attached (interleaved, best-of-N each), and the monitored
 *    throughput must stay within 1% of the unmonitored one, or the
 *    absolute cost under 20 ns/sample (the resolution floor of a
 *    short run on a noisy host) — the model-quality layer's hot-path
 *    budget;
 *  - autopilot overhead: the monitored blast is repeated with an
 *    armed AutopilotController (reference windows enabled on every
 *    machine, drift listener installed, ticked periodically from the
 *    producer) against a monitor-only baseline, under the same
 *    1%-or-20 ns steady-state budget: self-healing must be free
 *    while nothing drifts.
 *
 * Writes BENCH_serve.json into the working directory and exits
 * nonzero if the throughput floor (100k samples/sec at 8 threads;
 * 10k in CHAOS_BENCH_FAST=1 mode), the zero-drop replay assertion,
 * or the monitor overhead budget fails, so tier-1 can run it as a
 * smoke test.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "autopilot/autopilot.hpp"
#include "common/bench_support.hpp"
#include "monitor/fleet_monitor.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"
#include "util/string_utils.hpp"

using namespace chaos;

namespace {

constexpr size_t kFleetSize = 5;

/** Percentile of a latency sample (by sorted rank). */
double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(p * static_cast<double>(values.size())));
    return values[rank];
}

struct BlastResult
{
    size_t threads = 0;
    double samplesPerSec = 0.0;
    uint64_t submitted = 0;
    uint64_t processed = 0;
    uint64_t dropped = 0;
    double p50DrainMs = 0.0;
    double p99DrainMs = 0.0;
};

/** Saturate a fresh server with @p total samples round-robin. */
BlastResult
blast(const MachinePowerModel &model,
      const std::vector<std::vector<double>> &rows, size_t threads,
      size_t total)
{
    setGlobalThreadCount(threads);
    serve::FleetServerConfig config;
    config.recordDrainLatencies = true;
    serve::FleetServer server(config);
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    server.start();

    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
        server.submitTo(*entries[i % entries.size()],
                        std::vector<double>(rows[i % rows.size()]));
    }
    server.waitIdle();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();

    BlastResult result;
    result.threads = threads;
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    result.submitted = server.submitted();
    result.processed = server.processed();
    result.dropped = server.dropped();
    result.samplesPerSec =
        static_cast<double>(result.processed) / seconds;
    const std::vector<double> latencies = server.drainLatenciesMs();
    result.p50DrainMs = percentile(latencies, 0.50);
    result.p99DrainMs = percentile(latencies, 0.99);
    return result;
}

/**
 * Blast with metered references on every sample, optionally with a
 * FleetMonitor attached. @return Sustained samples/sec.
 */
double
monitoredBlast(const MachinePowerModel &model,
               const std::vector<std::vector<double>> &rows,
               const std::vector<double> &meteredW, bool monitorOn,
               size_t total)
{
    serve::FleetServer server;
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    monitor::QualityMonitorConfig qualityConfig;
    // Arm the detector early so the whole run pays the full
    // per-sample monitoring cost, not just the warmup accumulation.
    qualityConfig.warmupSamples = 100;
    monitor::FleetMonitor fleetMonitor(qualityConfig);
    if (monitorOn)
        fleetMonitor.attach(server);
    server.start();

    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
        const size_t r = i % rows.size();
        server.submitTo(*entries[i % entries.size()],
                        std::vector<double>(rows[r]), meteredW[r]);
    }
    server.waitIdle();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(server.processed()) / seconds;
}

/**
 * Monitored blast with an armed (but idle) autopilot: every machine
 * has a live reference window, the drift listener is installed, and
 * the controller ticks every ~1000 submissions the way a live
 * deployment would tick once a second. Nothing drifts, so this
 * measures the pure drain-path cost of being remediable.
 * @return Sustained samples/sec.
 */
double
autopilotBlast(const MachinePowerModel &model,
               const std::vector<std::vector<double>> &rows,
               const std::vector<double> &meteredW, bool autopilotOn,
               size_t total)
{
    serve::FleetServer server;
    std::vector<serve::MachineEntry *> entries;
    for (size_t m = 0; m < kFleetSize; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), model));
    }
    monitor::QualityMonitorConfig qualityConfig;
    qualityConfig.warmupSamples = 100;
    monitor::FleetMonitor fleetMonitor(qualityConfig);
    fleetMonitor.attach(server);
    autopilot::AutopilotController pilot(server, fleetMonitor);
    if (autopilotOn)
        pilot.start();
    server.start();

    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < total; ++i) {
        const size_t r = i % rows.size();
        server.submitTo(*entries[i % entries.size()],
                        std::vector<double>(rows[r]), meteredW[r]);
        if (autopilotOn && i % 1000 == 999)
            pilot.tick();
    }
    server.waitIdle();
    const auto stop = std::chrono::steady_clock::now();
    server.stop();
    if (autopilotOn)
        pilot.stop();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return static_cast<double>(server.processed()) / seconds;
}

} // namespace

int
main()
{
    const bool fast = bench::fastMode();
    std::printf("== serve_throughput: streaming serving path ==\n\n");

    // A small recorded campaign supplies realistic catalog rows and
    // the training data for the deployed model.
    CampaignConfig config;
    config.numMachines = kFleetSize;
    config.runsPerWorkload = 1;
    config.seed = 2012;
    config.run.durationScale = fast ? 0.05 : 0.2;
    const ClusterCampaign campaign =
        collectClusterData(MachineClass::Core2, config);
    const Dataset &data = campaign.data;

    FeatureSet features{"bench",
                        {"Processor(0)\\% Processor Time",
                         "Processor(1)\\% Processor Time"}};
    const MachinePowerModel model = MachinePowerModel::fit(
        data, features, ModelType::Linear, MarsConfig());

    std::vector<std::vector<double>> rows;
    const size_t pool = std::min<size_t>(data.numRows(), 1024);
    rows.reserve(pool);
    for (size_t r = 0; r < pool; ++r)
        rows.push_back(data.features().row(r));

    // --- Blast phase: sustained throughput per thread count. ---
    const size_t total = fast ? 50'000 : 400'000;
    std::vector<BlastResult> results;
    std::printf("%8s %14s %10s %10s %12s %12s\n", "threads",
                "samples/sec", "processed", "dropped", "p50 drain",
                "p99 drain");
    for (size_t threads : {1, 2, 4, 8}) {
        const BlastResult r = blast(model, rows, threads, total);
        results.push_back(r);
        std::printf("%8zu %14.0f %10llu %10llu %9.3f ms %9.3f ms\n",
                    r.threads, r.samplesPerSec,
                    static_cast<unsigned long long>(r.processed),
                    static_cast<unsigned long long>(r.dropped),
                    r.p50DrainMs, r.p99DrainMs);
    }

    // --- Replay phase: paced 1 Hz-per-machine trace, zero drops. ---
    setGlobalThreadCount(4);
    serve::FleetServer replayServer;
    serve::TraceReplayer replayer(data);
    for (const std::string &id : replayer.machineIds())
        replayServer.addMachine(id, model);
    serve::ReplayConfig replayConfig;
    replayConfig.speed = 100.0;
    replayServer.start();
    const serve::ReplayStats replayStats =
        replayer.replayInto(replayServer, replayConfig);
    replayServer.stop();
    setGlobalThreadCount(1);
    std::printf("\nreplay @%gx: %llu ticks, %llu samples, "
                "%llu dropped\n",
                replayConfig.speed,
                static_cast<unsigned long long>(replayStats.ticks),
                static_cast<unsigned long long>(
                    replayStats.submitted),
                static_cast<unsigned long long>(
                    replayServer.dropped()));

    // --- Monitor overhead: metered blast with/without FleetMonitor. ---
    std::vector<double> meteredPool;
    meteredPool.reserve(pool);
    for (size_t r = 0; r < pool; ++r)
        meteredPool.push_back(data.powerW()[r]);
    setGlobalThreadCount(8);
    const size_t monitorTotal = fast ? 50'000 : 200'000;
    const int monitorReps = 5;
    // Gate on the best *pair*, not independent best-of-N per side:
    // off and on run back-to-back inside each rep, so the per-rep
    // delta is the clean signal, while per-side bests let one side
    // catch a scheduler window the other never saw and report that
    // asymmetry as overhead. A real per-sample cost shows up in
    // every pair.
    double offSps = 0.0, onSps = 0.0;
    double monBestPairNs = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < monitorReps; ++rep) {
        const double off = monitoredBlast(model, rows, meteredPool,
                                          false, monitorTotal);
        const double on = monitoredBlast(model, rows, meteredPool,
                                         true, monitorTotal);
        std::printf("  monitor rep %d: off %.0f/s, on %.0f/s\n",
                    rep + 1, off, on);
        const double pairNs = (off > 0.0 && on > 0.0)
                                  ? (1e9 / on - 1e9 / off)
                                  : 0.0;
        if (pairNs < monBestPairNs) {
            monBestPairNs = pairNs;
            offSps = off;
            onSps = on;
        }
    }
    setGlobalThreadCount(1);
    const double monitorOverheadPct =
        offSps > 0.0 ? (offSps - onSps) / offSps * 100.0 : 0.0;
    // Absolute per-sample cost: the honest unit for the hot-path
    // budget. Short fast-mode runs on a loaded host carry several
    // percent of scheduler noise, so the relative gate alone would
    // flap; 20 ns/sample is < 1% of any realistic per-sample serving
    // cost (row validation + prediction alone is ~600 ns here).
    const double monitorOverheadNs =
        (offSps > 0.0 && onSps > 0.0)
            ? (1e9 / onSps - 1e9 / offSps)
            : 0.0;
    const double overheadNsBudget = 20.0;
    std::printf("\nmonitor overhead (best pair of %d, metered refs): "
                "off %.0f/s, on %.0f/s (%+.3f%%, %+.1f ns/sample), "
                "budget 1%% or %.0f ns/sample\n",
                monitorReps, offSps, onSps, monitorOverheadPct,
                monitorOverheadNs, overheadNsBudget);

    // --- Autopilot overhead: armed-and-idle vs monitor-only. ---
    // Longer runs and more reps than the monitor phase: the budget
    // compares two already-monitored configurations, so the signal
    // is a few ns/sample and a 30 ms fast-mode run would be pure
    // scheduler noise. Each rep runs off and on back-to-back under
    // near-identical host load, so the per-rep delta is the clean
    // signal; independent best-of-N per side lets one side catch a
    // scheduler window the other never saw and reports that
    // asymmetry as overhead, so the gate uses the best *pair* — a
    // real per-sample cost shows up in every pair.
    setGlobalThreadCount(8);
    const size_t autopilotTotal = fast ? 150'000 : 400'000;
    const int autopilotReps = 7;
    double apOffSps = 0.0, apOnSps = 0.0;
    double bestPairNs = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < autopilotReps; ++rep) {
        const double off = autopilotBlast(model, rows, meteredPool,
                                          false, autopilotTotal);
        const double on = autopilotBlast(model, rows, meteredPool,
                                         true, autopilotTotal);
        std::printf("  autopilot rep %d: off %.0f/s, on %.0f/s\n",
                    rep + 1, off, on);
        const double pairNs = (off > 0.0 && on > 0.0)
                                  ? (1e9 / on - 1e9 / off)
                                  : 0.0;
        if (pairNs < bestPairNs) {
            bestPairNs = pairNs;
            apOffSps = off;
            apOnSps = on;
        }
    }
    setGlobalThreadCount(1);
    const double autopilotOverheadPct =
        apOffSps > 0.0 ? (apOffSps - apOnSps) / apOffSps * 100.0
                       : 0.0;
    const double autopilotOverheadNs =
        (apOffSps > 0.0 && apOnSps > 0.0)
            ? (1e9 / apOnSps - 1e9 / apOffSps)
            : 0.0;
    std::printf("\nautopilot overhead (best pair of %d, armed idle): "
                "off %.0f/s, on %.0f/s (%+.3f%%, %+.1f ns/sample), "
                "budget 1%% or %.0f ns/sample\n",
                autopilotReps, apOffSps, apOnSps,
                autopilotOverheadPct, autopilotOverheadNs,
                overheadNsBudget);

    // --- Assertions. ---
    const double floorSps = fast ? 10'000.0 : 100'000.0;
    const BlastResult &eightThreads = results.back();
    bool ok = true;
    if (eightThreads.samplesPerSec < floorSps) {
        std::printf("FAIL: %.0f samples/sec at %zu threads is below "
                    "the %.0f floor\n",
                    eightThreads.samplesPerSec, eightThreads.threads,
                    floorSps);
        ok = false;
    }
    if (replayServer.dropped() != 0) {
        std::printf("FAIL: paced replay dropped %llu samples\n",
                    static_cast<unsigned long long>(
                        replayServer.dropped()));
        ok = false;
    }
    if (replayServer.processed() != replayStats.submitted) {
        std::printf("FAIL: replay processed %llu of %llu submitted "
                    "(lost or duplicated samples)\n",
                    static_cast<unsigned long long>(
                        replayServer.processed()),
                    static_cast<unsigned long long>(
                        replayStats.submitted));
        ok = false;
    }
    if (onSps < 0.99 * offSps &&
        monitorOverheadNs > overheadNsBudget) {
        std::printf("FAIL: monitored throughput %.0f/s is more than "
                    "1%% below unmonitored %.0f/s and the absolute "
                    "cost %.1f ns/sample exceeds %.0f ns\n",
                    onSps, offSps, monitorOverheadNs,
                    overheadNsBudget);
        ok = false;
    }
    if (onSps < floorSps) {
        std::printf("FAIL: monitored throughput %.0f/s is below the "
                    "%.0f floor\n",
                    onSps, floorSps);
        ok = false;
    }
    if (apOnSps < 0.99 * apOffSps &&
        autopilotOverheadNs > overheadNsBudget) {
        std::printf("FAIL: autopilot-armed throughput %.0f/s is more "
                    "than 1%% below monitor-only %.0f/s and the "
                    "absolute cost %.1f ns/sample exceeds %.0f ns\n",
                    apOnSps, apOffSps, autopilotOverheadNs,
                    overheadNsBudget);
        ok = false;
    }
    if (apOnSps < floorSps) {
        std::printf("FAIL: autopilot-armed throughput %.0f/s is "
                    "below the %.0f floor\n",
                    apOnSps, floorSps);
        ok = false;
    }

    // --- BENCH_serve.json. ---
    std::string json = "{\n";
    json += "  \"bench\": \"serve_throughput\",\n";
    json += "  \"fast_mode\": " +
            std::string(fast ? "true" : "false") + ",\n";
    json += "  \"fleet_size\": " + std::to_string(kFleetSize) + ",\n";
    json += "  \"samples_per_config\": " + std::to_string(total) +
            ",\n";
    json += "  \"throughput\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const BlastResult &r = results[i];
        json += "    {\"threads\": " + std::to_string(r.threads) +
                ", \"samples_per_sec\": " +
                formatDouble(r.samplesPerSec, 0) +
                ", \"processed\": " + std::to_string(r.processed) +
                ", \"dropped\": " + std::to_string(r.dropped) +
                ", \"p50_drain_ms\": " +
                formatDouble(r.p50DrainMs, 4) +
                ", \"p99_drain_ms\": " +
                formatDouble(r.p99DrainMs, 4) + "}";
        json += (i + 1 < results.size()) ? ",\n" : "\n";
    }
    json += "  ],\n";
    json += "  \"replay\": {\"speed\": " +
            formatDouble(replayConfig.speed, 0) +
            ", \"ticks\": " + std::to_string(replayStats.ticks) +
            ", \"submitted\": " +
            std::to_string(replayStats.submitted) +
            ", \"processed\": " +
            std::to_string(replayServer.processed()) +
            ", \"dropped\": " +
            std::to_string(replayServer.dropped()) + "},\n";
    json += "  \"monitor_overhead\": {\"samples\": " +
            std::to_string(monitorTotal) +
            ", \"reps\": " + std::to_string(monitorReps) +
            ", \"off_samples_per_sec\": " + formatDouble(offSps, 0) +
            ", \"on_samples_per_sec\": " + formatDouble(onSps, 0) +
            ", \"overhead_pct\": " +
            formatDouble(monitorOverheadPct, 4) +
            ", \"overhead_ns_per_sample\": " +
            formatDouble(monitorOverheadNs, 2) + "},\n";
    json += "  \"autopilot_overhead\": {\"samples\": " +
            std::to_string(autopilotTotal) +
            ", \"reps\": " + std::to_string(autopilotReps) +
            ", \"off_samples_per_sec\": " +
            formatDouble(apOffSps, 0) +
            ", \"on_samples_per_sec\": " + formatDouble(apOnSps, 0) +
            ", \"overhead_pct\": " +
            formatDouble(autopilotOverheadPct, 4) +
            ", \"overhead_ns_per_sample\": " +
            formatDouble(autopilotOverheadNs, 2) + "},\n";
    json += "  \"throughput_floor_sps\": " +
            formatDouble(floorSps, 0) + ",\n";
    json += "  \"pass\": " + std::string(ok ? "true" : "false") +
            "\n}\n";
    std::ofstream out("BENCH_serve.json");
    out << json;
    std::printf("\nwrote BENCH_serve.json (%s)\n",
                ok ? "pass" : "FAIL");
    return ok ? 0 : 1;
}
