/**
 * @file
 * Tests for the four workload generators: scale, structure, and the
 * per-workload characteristics the paper describes (Section III-A).
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "workloads/standard_workloads.hpp"

namespace chaos {
namespace {

struct Totals
{
    double cpu = 0.0, disk = 0.0, net = 0.0;
    double taskSeconds = 0.0;
};

Totals
totalsOf(const std::vector<Task> &tasks)
{
    Totals totals;
    for (const auto &task : tasks) {
        const double dur = task.durationSeconds;
        totals.cpu += task.demand.cpuCoreSeconds * dur;
        totals.disk += (task.demand.diskReadBytes +
                        task.demand.diskWriteBytes) *
                       dur;
        totals.net +=
            (task.demand.netRxBytes + task.demand.netTxBytes) * dur;
        totals.taskSeconds += dur;
    }
    return totals;
}

TEST(Workloads, StandardSetHasPaperOrder)
{
    const auto names = standardWorkloadNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "Sort");
    EXPECT_EQ(names[1], "PageRank");
    EXPECT_EQ(names[2], "Prime");
    EXPECT_EQ(names[3], "WordCount");

    const auto workloads = standardWorkloads();
    ASSERT_EQ(workloads.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(workloads[i]->name(), names[i]);
}

TEST(Workloads, ByNameConstructsAndUnknownIsFatal)
{
    EXPECT_EQ(workloadByName("Prime")->name(), "Prime");
    EXPECT_RAISES(workloadByName("TensorFlow"), "unknown workload");
}

TEST(Workloads, PageRankGeneratesHundredsOfTasks)
{
    // Paper: PageRank has over 800 tasks on the 5-machine clusters.
    PageRankWorkload workload;
    Rng rng(1);
    const auto tasks = workload.generateTasks(10.0, rng);
    EXPECT_GT(tasks.size(), 500u);
}

TEST(Workloads, TaskCountsScaleWithClusterCapacity)
{
    for (const auto &workload : standardWorkloads()) {
        Rng rng_small(2), rng_large(2);
        const auto small = workload->generateTasks(10.0, rng_small);
        const auto large = workload->generateTasks(40.0, rng_large);
        EXPECT_GT(large.size(), small.size()) << workload->name();
    }
}

TEST(Workloads, DemandsAreNonNegativeAndBounded)
{
    for (const auto &workload : standardWorkloads()) {
        Rng rng(3);
        for (const auto &task : workload->generateTasks(40.0, rng)) {
            EXPECT_GT(task.durationSeconds, 0.0);
            EXPECT_GE(task.demand.cpuCoreSeconds, 0.0);
            EXPECT_LE(task.demand.cpuCoreSeconds, 2.0);
            EXPECT_GE(task.demand.diskReadBytes, 0.0);
            EXPECT_GE(task.demand.netRxBytes, 0.0);
            EXPECT_GE(task.demand.memIntensity, 0.0);
            EXPECT_LE(task.demand.memIntensity, 1.0);
        }
    }
}

TEST(Workloads, StagesAreContiguousFromZero)
{
    for (const auto &workload : standardWorkloads()) {
        Rng rng(4);
        const auto tasks = workload->generateTasks(10.0, rng);
        std::set<size_t> stages;
        for (const auto &task : tasks)
            stages.insert(task.stage);
        ASSERT_FALSE(stages.empty());
        EXPECT_EQ(*stages.begin(), 0u) << workload->name();
        EXPECT_EQ(*stages.rbegin(), stages.size() - 1)
            << workload->name();
    }
}

TEST(Workloads, DifferentRunSeedsChangeTheTaskGraph)
{
    SortWorkload workload;
    Rng rng_a(5), rng_b(6);
    const auto a = workload.generateTasks(10.0, rng_a);
    const auto b = workload.generateTasks(10.0, rng_b);
    bool any_difference = a.size() != b.size();
    for (size_t i = 0; !any_difference && i < a.size(); ++i)
        any_difference = a[i].durationSeconds != b[i].durationSeconds;
    EXPECT_TRUE(any_difference);
}

TEST(Workloads, PrimeIsCpuBoundWithLittleTraffic)
{
    // Paper: "CPU-intensive and produces little network traffic".
    PrimeWorkload prime;
    SortWorkload sort;
    Rng rng_a(7), rng_b(7);
    const Totals prime_totals = totalsOf(prime.generateTasks(10, rng_a));
    const Totals sort_totals = totalsOf(sort.generateTasks(10, rng_b));

    const double prime_net_per_cpu =
        prime_totals.net / prime_totals.cpu;
    const double sort_net_per_cpu = sort_totals.net / sort_totals.cpu;
    EXPECT_LT(prime_net_per_cpu, 0.05 * sort_net_per_cpu);
    EXPECT_LT(prime_totals.disk, 0.01 * sort_totals.disk + 1.0);
}

TEST(Workloads, SortIsDiskAndNetworkHeavy)
{
    SortWorkload sort;
    WordCountWorkload wordcount;
    Rng rng_a(8), rng_b(8);
    const Totals sort_totals = totalsOf(sort.generateTasks(10, rng_a));
    const Totals wc_totals =
        totalsOf(wordcount.generateTasks(10, rng_b));

    EXPECT_GT(sort_totals.disk / sort_totals.taskSeconds,
              3.0 * wc_totals.disk / wc_totals.taskSeconds);
    EXPECT_GT(sort_totals.net / sort_totals.taskSeconds,
              3.0 * wc_totals.net / wc_totals.taskSeconds);
}

TEST(Workloads, PageRankIsNetworkHeavy)
{
    PageRankWorkload pagerank;
    PrimeWorkload prime;
    Rng rng_a(9), rng_b(9);
    const Totals pr = totalsOf(pagerank.generateTasks(10, rng_a));
    const Totals pm = totalsOf(prime.generateTasks(10, rng_b));
    EXPECT_GT(pr.net / pr.taskSeconds, 20.0 * pm.net / pm.taskSeconds);
}

TEST(Workloads, PageRankHasLongestAggregateWork)
{
    // Paper: PageRank has the longest running time.
    Rng rng(10);
    double pagerank_work = 0.0, other_max = 0.0;
    for (const auto &workload : standardWorkloads()) {
        Rng local(11);
        const Totals totals =
            totalsOf(workload->generateTasks(10.0, local));
        if (workload->name() == "PageRank")
            pagerank_work = totals.taskSeconds;
        else
            other_max = std::max(other_max, totals.taskSeconds);
    }
    EXPECT_GT(pagerank_work, other_max);
}

} // namespace
} // namespace chaos
