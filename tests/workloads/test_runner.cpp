/**
 * @file
 * Tests for the cluster workload runner and its Dryad-like scheduler.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "workloads/runner.hpp"
#include "workloads/standard_workloads.hpp"

namespace chaos {
namespace {

RunConfig
quickConfig()
{
    RunConfig config;
    config.idleLeadInSeconds = 5.0;
    config.idleLeadOutSeconds = 5.0;
    config.durationScale = 0.25;
    return config;
}

TEST(Runner, CompletesAndRecordsEveryMachineSecond)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 3, 1);
    WordCountWorkload workload;
    const RunResult result =
        runWorkload(cluster, workload, 11, 0, quickConfig());

    EXPECT_EQ(result.workloadName, "WordCount");
    ASSERT_EQ(result.machineRecords.size(), 3u);
    const size_t len = result.machineRecords[0].size();
    EXPECT_GT(len, 10u);
    for (const auto &records : result.machineRecords)
        EXPECT_EQ(records.size(), len);
    EXPECT_DOUBLE_EQ(result.durationSeconds,
                     static_cast<double>(len));
}

TEST(Runner, StaysUnderTheMaxSecondsCap)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 2, 2);
    SortWorkload workload;
    RunConfig config = quickConfig();
    config.maxSeconds = 40.0;
    const RunResult result =
        runWorkload(cluster, workload, 3, 0, config);
    EXPECT_LE(result.durationSeconds, 40.0);
}

TEST(Runner, IdleLeadInShowsNearIdlePower)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Athlon, 2, 3);
    PrimeWorkload workload;
    RunConfig config = quickConfig();
    config.idleLeadInSeconds = 10.0;
    const RunResult result =
        runWorkload(cluster, workload, 4, 0, config);

    // During the lead-in, power sits near the bottom of the envelope;
    // once Prime saturates the CPUs it rises far above it.
    const auto &records = result.machineRecords[0];
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    double lead_in_max = 0.0;
    for (size_t t = 2; t < 9; ++t) {
        lead_in_max =
            std::max(lead_in_max, records[t].measuredPowerW);
    }
    double busy_max = 0.0;
    for (const auto &record : records)
        busy_max = std::max(busy_max, record.measuredPowerW);
    EXPECT_LT(lead_in_max, spec.idlePowerW + 0.4 * spec.dynamicRangeW());
    EXPECT_GT(busy_max, lead_in_max + 0.3 * spec.dynamicRangeW());
}

TEST(Runner, ClusterPowerSeriesSumsMachines)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 3, 5);
    WordCountWorkload workload;
    const RunResult result =
        runWorkload(cluster, workload, 6, 0, quickConfig());
    const auto series = result.clusterPowerSeries();
    ASSERT_EQ(series.size(), result.machineRecords[0].size());
    for (size_t t = 0; t < series.size(); t += 10) {
        double manual = 0.0;
        for (const auto &records : result.machineRecords)
            manual += records[t].measuredPowerW;
        EXPECT_DOUBLE_EQ(series[t], manual);
    }
}

TEST(Runner, SameSeedIsBitReproducible)
{
    SortWorkload workload;
    Cluster a = Cluster::homogeneous(MachineClass::Core2, 2, 7);
    Cluster b = Cluster::homogeneous(MachineClass::Core2, 2, 7);
    const RunResult ra = runWorkload(a, workload, 8, 0, quickConfig());
    const RunResult rb = runWorkload(b, workload, 8, 0, quickConfig());
    ASSERT_EQ(ra.durationSeconds, rb.durationSeconds);
    for (size_t m = 0; m < 2; ++m) {
        for (size_t t = 0; t < ra.machineRecords[m].size(); t += 7) {
            ASSERT_DOUBLE_EQ(ra.machineRecords[m][t].measuredPowerW,
                             rb.machineRecords[m][t].measuredPowerW);
        }
    }
}

TEST(Runner, DifferentSeedsPartitionWorkDifferently)
{
    // The paper's nondeterministic scheduler: different runs place
    // tasks differently, so per-machine power traces differ.
    SortWorkload workload;
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 3, 9);
    const RunResult ra =
        runWorkload(cluster, workload, 100, 0, quickConfig());
    const RunResult rb =
        runWorkload(cluster, workload, 200, 1, quickConfig());
    EXPECT_NE(ra.durationSeconds, rb.durationSeconds);
}

TEST(Runner, RunIdIsStamped)
{
    WordCountWorkload workload;
    Cluster cluster = Cluster::homogeneous(MachineClass::Atom, 2, 10);
    const RunResult result =
        runWorkload(cluster, workload, 11, 42, quickConfig());
    EXPECT_EQ(result.runId, 42);
}

TEST(Runner, StandardCampaignCoversAllWorkloadsAndRuns)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 2, 11);
    RunConfig config = quickConfig();
    config.durationScale = 0.1;
    const auto results = runStandardCampaign(cluster, 2, 123, config);
    ASSERT_EQ(results.size(), 8u);  // 4 workloads x 2 runs.

    // Distinct run ids 0..7, workloads in paper order.
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].runId, static_cast<int>(i));
    EXPECT_EQ(results[0].workloadName, "Sort");
    EXPECT_EQ(results[2].workloadName, "PageRank");
    EXPECT_EQ(results[7].workloadName, "WordCount");
}

TEST(Runner, WorkloadsShowDistinctPowerSignatures)
{
    // Fig. 1's premise: the four workloads have dramatically
    // different cluster power profiles. Check Prime sustains higher
    // mean power than Sort (CPU saturation vs I/O waits) on a
    // desktop-class cluster.
    Cluster cluster = Cluster::homogeneous(MachineClass::Athlon, 3, 12);
    PrimeWorkload prime;
    SortWorkload sort;
    RunConfig config = quickConfig();

    const RunResult rp = runWorkload(cluster, prime, 5, 0, config);
    const RunResult rs = runWorkload(cluster, sort, 5, 1, config);

    auto busy_mean = [](const RunResult &run) {
        const auto series = run.clusterPowerSeries();
        std::vector<double> busy(series.begin() + 8,
                                 series.end() - 6);
        return mean(busy);
    };
    EXPECT_GT(busy_mean(rp), busy_mean(rs));
}

} // namespace
} // namespace chaos
