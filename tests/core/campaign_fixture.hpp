/**
 * @file
 * Shared, lazily-built mini campaigns for the core-pipeline tests.
 * Collection is the expensive part, so each cluster's campaign is
 * materialized once per test binary and reused.
 */
#ifndef CHAOS_TESTS_CORE_CAMPAIGN_FIXTURE_HPP
#define CHAOS_TESTS_CORE_CAMPAIGN_FIXTURE_HPP

#include "core/chaos.hpp"

namespace chaos {
namespace testing_support {

/** Quick campaign knobs: 3 machines, 3 runs, shortened workloads. */
inline CampaignConfig
quickCampaignConfig()
{
    CampaignConfig config;
    config.numMachines = 3;
    config.runsPerWorkload = 3;
    config.seed = 7;
    config.run.durationScale = 0.3;
    config.run.idleLeadInSeconds = 10.0;
    config.run.idleLeadOutSeconds = 8.0;
    config.evaluation.folds = 3;
    return config;
}

/** Cached Core 2 campaign (with Algorithm-1 selection). */
inline const ClusterCampaign &
core2Campaign()
{
    static const ClusterCampaign campaign =
        runClusterCampaign(MachineClass::Core2, quickCampaignConfig());
    return campaign;
}

/** Cached Atom campaign (with Algorithm-1 selection). */
inline const ClusterCampaign &
atomCampaign()
{
    static const ClusterCampaign campaign =
        runClusterCampaign(MachineClass::Atom, quickCampaignConfig());
    return campaign;
}

} // namespace testing_support
} // namespace chaos

#endif // CHAOS_TESTS_CORE_CAMPAIGN_FIXTURE_HPP
