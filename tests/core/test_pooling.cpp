/**
 * @file
 * Tests for the pooling ablation (paper Section IV): pooled,
 * per-machine, and partially pooled strategies.
 */
#include <gtest/gtest.h>

#include "campaign_fixture.hpp"
#include "core/pooling.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

PoolingComparison
core2Comparison()
{
    const auto &campaign = core2Campaign();
    return comparePooling(campaign.data,
                          clusterFeatureSet(campaign.selection),
                          ModelType::Quadratic, campaign.envelopes,
                          quickCampaignConfig().evaluation);
}

TEST(Pooling, AllStrategiesAreAccurate)
{
    const PoolingComparison comparison = core2Comparison();
    EXPECT_LT(comparison.pooledDre, 0.15);
    EXPECT_LT(comparison.perMachineDre, 0.15);
    EXPECT_LT(comparison.partialDre, 0.15);
    EXPECT_GT(comparison.pooledDre, 0.0);
}

TEST(Pooling, PoolingIsAdequateOnPaperStyleClusters)
{
    // The paper's §IV conclusion: pooled residual variance is close
    // to the per-machine models' (their Gelman-style test).
    const PoolingComparison comparison = core2Comparison();
    EXPECT_GT(comparison.varianceRatio, 0.5);
    EXPECT_LT(comparison.varianceRatio, 1.6);
    EXPECT_TRUE(comparison.poolingAdequate ||
                comparison.varianceRatio < 1.6);
}

TEST(Pooling, PartialPoolingNeverFarWorseThanPooled)
{
    // Adding per-machine intercepts can only help or be neutral
    // (up to CV noise): it nests the pooled model.
    const PoolingComparison comparison = core2Comparison();
    EXPECT_LT(comparison.partialDre,
              comparison.pooledDre + 0.02);
}

TEST(Pooling, ResidualVariancesArePositive)
{
    const PoolingComparison comparison = core2Comparison();
    EXPECT_GT(comparison.pooledResidualVar, 0.0);
    EXPECT_GT(comparison.perMachineResidualVar, 0.0);
}

TEST(Pooling, AdequacyThresholdIsRespected)
{
    const auto &campaign = core2Campaign();
    // With an absurdly strict threshold, adequacy must fail;
    // with an absurdly lax one, it must pass.
    const auto strict = comparePooling(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Linear, campaign.envelopes,
        quickCampaignConfig().evaluation, 1e-6);
    EXPECT_FALSE(strict.poolingAdequate);
    const auto lax = comparePooling(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Linear, campaign.envelopes,
        quickCampaignConfig().evaluation, 1e6);
    EXPECT_TRUE(lax.poolingAdequate);
}

} // namespace
} // namespace chaos
