/**
 * @file
 * Tests for the named feature sets (U, C, CP, G) and general-set
 * derivation.
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "campaign_fixture.hpp"
#include "oscounters/counter_catalog.hpp"

namespace chaos {
namespace {

using testing_support::atomCampaign;
using testing_support::core2Campaign;

TEST(FeatureSets, CpuOnlyHasExactlyUtilization)
{
    const FeatureSet set = cpuOnlyFeatureSet();
    EXPECT_EQ(set.name, "U");
    ASSERT_EQ(set.counters.size(), 1u);
    EXPECT_EQ(set.counters[0], counters::kCpuUtilization);
}

TEST(FeatureSets, ClusterSetWrapsSelection)
{
    const FeatureSet set =
        clusterFeatureSet(core2Campaign().selection);
    EXPECT_EQ(set.name, "C");
    EXPECT_EQ(set.counters, core2Campaign().selection.selected);
}

TEST(FeatureSets, ClusterPlusLagAppendsLagOnce)
{
    const FeatureSet set =
        clusterPlusLagFeatureSet(core2Campaign().selection);
    EXPECT_EQ(set.name, "CP");
    EXPECT_EQ(set.counters.size(),
              core2Campaign().selection.selected.size() + 1);
    EXPECT_EQ(std::count(set.counters.begin(), set.counters.end(),
                         counters::kCore0FrequencyLag),
              1);
}

TEST(FeatureSets, PaperGeneralSetMatchesTableTwo)
{
    const FeatureSet set = paperGeneralFeatureSet();
    EXPECT_EQ(set.counters.size(), 8u);
    const auto &catalog = CounterCatalog::instance();
    for (const auto &name : set.counters)
        EXPECT_TRUE(catalog.contains(name)) << name;
}

TEST(FeatureSets, DeriveGeneralFromTwoClusters)
{
    const std::vector<FeatureSelectionResult> selections{
        core2Campaign().selection, atomCampaign().selection};
    const FeatureSet general = deriveGeneralFeatureSet(selections, 2);
    EXPECT_EQ(general.name, "G");
    EXPECT_FALSE(general.counters.empty());

    // Counters in both cluster sets must be in the general set.
    for (const auto &name : core2Campaign().selection.selected) {
        const auto &other = atomCampaign().selection.selected;
        if (std::find(other.begin(), other.end(), name) !=
            other.end()) {
            EXPECT_NE(std::find(general.counters.begin(),
                                general.counters.end(), name),
                      general.counters.end())
                << name;
        }
    }
}

TEST(FeatureSets, GeneralSetCoversAllSelectedCategories)
{
    const std::vector<FeatureSelectionResult> selections{
        core2Campaign().selection, atomCampaign().selection};
    const FeatureSet general = deriveGeneralFeatureSet(selections, 2);

    const auto &catalog = CounterCatalog::instance();
    std::set<CounterCategory> wanted, covered;
    for (const auto &selection : selections) {
        for (const auto &name : selection.selected)
            wanted.insert(
                catalog.def(catalog.indexOf(name)).category);
    }
    for (const auto &name : general.counters)
        covered.insert(catalog.def(catalog.indexOf(name)).category);
    EXPECT_EQ(covered, wanted);
}

TEST(FeatureSets, LagWindowSetsGrowByWindow)
{
    const auto &selection = core2Campaign().selection;
    const size_t base = selection.selected.size();
    for (size_t window = 1; window <= 3; ++window) {
        const FeatureSet set =
            clusterPlusLagWindowFeatureSet(selection, window);
        EXPECT_EQ(set.name, "CP" + std::to_string(window));
        EXPECT_EQ(set.counters.size(), base + window);
    }
    // Window 1 matches the classic CP set's counters.
    EXPECT_EQ(clusterPlusLagWindowFeatureSet(selection, 1).counters,
              clusterPlusLagFeatureSet(selection).counters);
}

TEST(FeatureSets, LagWindowBoundsRaise)
{
    const auto &selection = core2Campaign().selection;
    EXPECT_RAISES(clusterPlusLagWindowFeatureSet(selection, 0),
                  "lag window");
    EXPECT_RAISES(clusterPlusLagWindowFeatureSet(selection, 4),
                  "lag window");
}

TEST(FeatureSets, DeriveFromNothingRaises)
{
    EXPECT_RAISES(deriveGeneralFeatureSet({}), "no cluster");
}

} // namespace
} // namespace chaos
