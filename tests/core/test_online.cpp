/**
 * @file
 * Tests for the hardened online estimation path: input validation,
 * last-known-good imputation, envelope clamping, health-state
 * transitions, and graceful cluster composition under telemetry loss.
 */
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "campaign_fixture.hpp"
#include "core/online.hpp"
#include "obs/events.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

MachinePowerModel
core2Model()
{
    const auto &campaign = core2Campaign();
    return MachinePowerModel::fit(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, quickCampaignConfig().evaluation.mars);
}

OnlineEstimatorConfig
core2Config()
{
    return OnlineEstimatorConfig::forSpec(
        machineSpecFor(MachineClass::Core2));
}

std::vector<double>
cleanRow(size_t r)
{
    return core2Campaign().data.features().row(r);
}

TEST(OnlineEstimator, HealthyOnCleanTelemetry)
{
    OnlinePowerEstimator estimator(core2Model(), core2Config());
    for (size_t r = 0; r < 20; ++r)
        estimator.estimate(cleanRow(r));
    EXPECT_EQ(estimator.health(), MachineHealth::Healthy);
    EXPECT_EQ(estimator.healthCounters().rejectedInputs, 0u);
    EXPECT_EQ(estimator.healthCounters().imputedInputs, 0u);
}

TEST(OnlineEstimator, NanInputIsImputedFromLastGood)
{
    const MachinePowerModel model = core2Model();
    OnlinePowerEstimator estimator(model, core2Config());

    const double before = estimator.estimate(cleanRow(5));
    std::vector<double> corrupted = cleanRow(5);
    corrupted[model.catalogIndices()[0]] = kNan;
    const double after = estimator.estimate(corrupted);

    // The bad input was bridged with its last-known-good value, so
    // the estimate is unchanged and still finite.
    EXPECT_TRUE(std::isfinite(after));
    EXPECT_DOUBLE_EQ(after, before);
    EXPECT_EQ(estimator.health(), MachineHealth::Degraded);
    EXPECT_GT(estimator.healthCounters().imputedInputs, 0u);
    EXPECT_GT(estimator.healthCounters().rejectedInputs, 0u);
}

TEST(OnlineEstimator, ImplausiblyLargeInputIsRejected)
{
    const MachinePowerModel model = core2Model();
    OnlinePowerEstimator estimator(model, core2Config());
    estimator.estimate(cleanRow(0));

    const size_t idx = model.catalogIndices()[0];
    const double bound = CounterCatalog::instance().def(idx).maxPlausible;
    std::vector<double> corrupted = cleanRow(0);
    corrupted[idx] = bound * 2.0;
    const double watts = estimator.estimate(corrupted);

    EXPECT_TRUE(std::isfinite(watts));
    EXPECT_EQ(estimator.health(), MachineHealth::Degraded);
    EXPECT_GT(estimator.healthCounters().rejectedInputs, 0u);

    std::vector<double> negative = cleanRow(0);
    negative[idx] = -5.0;
    estimator.estimate(negative);
    EXPECT_EQ(estimator.health(), MachineHealth::Degraded);
}

TEST(OnlineEstimator, EmptyCatalogRowNeverCrashes)
{
    OnlinePowerEstimator estimator(core2Model(), core2Config());
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    // No telemetry at all, from the very first second: every
    // estimate must still be finite and inside the envelope.
    for (int t = 0; t < 30; ++t) {
        const double watts = estimator.estimate({});
        EXPECT_TRUE(std::isfinite(watts));
        EXPECT_GE(watts, spec.idlePowerW);
        EXPECT_LE(watts, spec.maxPowerW);
    }
    EXPECT_EQ(estimator.health(), MachineHealth::Lost);
    EXPECT_GT(estimator.healthCounters().substitutedEstimates, 0u);
}

TEST(OnlineEstimator, TransitionsToLostAndBack)
{
    OnlinePowerEstimator estimator(core2Model(), core2Config());
    const size_t catalogSize = CounterCatalog::instance().size();
    const std::vector<double> allNan(catalogSize, kNan);

    for (size_t r = 0; r < 20; ++r)
        estimator.estimate(cleanRow(r));
    const double trusted = estimator.meanEstimateW();

    // Stale imputation first, Lost once the outage outlives the
    // threshold; the substitute tracks the recent trusted mean.
    double lastWatts = 0.0;
    for (int t = 0; t < 15; ++t)
        lastWatts = estimator.estimate(allNan);
    EXPECT_EQ(estimator.health(), MachineHealth::Lost);
    EXPECT_NEAR(lastWatts, trusted, 5.0);

    // Telemetry returns: health recovers immediately.
    estimator.estimate(cleanRow(21));
    EXPECT_EQ(estimator.health(), MachineHealth::Healthy);
}

TEST(OnlineEstimator, ClampsToEnvelope)
{
    // A deliberately absurd envelope forces every prediction through
    // the clamp.
    OnlineEstimatorConfig config;
    config.idlePowerW = 30.0;
    config.maxPowerW = 31.0;
    OnlinePowerEstimator estimator(core2Model(), config);
    for (size_t r = 0; r < 50; ++r) {
        const double watts = estimator.estimate(cleanRow(r));
        EXPECT_GE(watts, 30.0);
        EXPECT_LE(watts, 31.0);
    }
    EXPECT_GT(estimator.healthCounters().clampedEstimates, 0u);
}

TEST(OnlineEstimator, ResidualStatsAccumulateOnlyForFiniteMeter)
{
    const auto &campaign = core2Campaign();
    OnlinePowerEstimator estimator(core2Model(), core2Config());

    for (size_t r = 0; r < 10; ++r) {
        estimator.estimateWithReference(cleanRow(r),
                                        campaign.data.powerW()[r]);
    }
    EXPECT_EQ(estimator.residuals().count(), 10u);
    EXPECT_LT(std::fabs(estimator.residuals().mean()), 5.0);

    // Meter dropouts must not poison the residual statistics.
    estimator.estimateWithReference(cleanRow(10), kNan);
    estimator.estimateWithReference(
        cleanRow(11), std::numeric_limits<double>::infinity());
    EXPECT_EQ(estimator.residuals().count(), 10u);
    EXPECT_EQ(estimator.samples(), 12u);
    EXPECT_TRUE(std::isfinite(estimator.residuals().mean()));
}

TEST(OnlineEstimator, EstimateBatchMatchesScalarBitwise)
{
    // The batched path must be sample-for-sample, bit-for-bit the
    // serial path — through every hardening branch, not just the
    // happy one. The script mixes clean rows, NaN counters (imputed),
    // implausible values (rejected), all-NaN stretches long enough to
    // go Lost, recovery, short rows, and intermittent metered
    // references; the batch estimator consumes it in ragged chunks.
    const auto &campaign = core2Campaign();
    OnlinePowerEstimator scalar(core2Model(), core2Config());
    OnlinePowerEstimator batched(core2Model(), core2Config());

    std::vector<std::vector<double>> rows;
    std::vector<double> metered;
    for (size_t t = 0; t < 200; ++t) {
        std::vector<double> row = cleanRow(t % 40);
        if (t % 7 == 3)
            row[t % row.size()] = kNan;          // provider restart
        if (t % 11 == 5)
            row[(t + 1) % row.size()] = 1e18;    // corrupted counter
        if (t >= 60 && t < 75)
            row.assign(row.size(), kNan);        // telemetry loss
        if (t % 13 == 8)
            row.resize(row.size() / 2);          // short row
        rows.push_back(std::move(row));
        metered.push_back(t % 3 == 0 ? campaign.data.powerW()[t % 40]
                                     : kNan);
    }

    std::vector<double> scalarWatts;
    for (size_t t = 0; t < rows.size(); ++t)
        scalarWatts.push_back(
            scalar.estimateWithReference(rows[t], metered[t]));

    // Ragged chunk sizes, including 1 and a chunk spanning the whole
    // Lost episode.
    const size_t chunks[] = {1, 3, 17, 9, 1, 40, 64, 25, 40};
    size_t at = 0;
    for (size_t chunk : chunks) {
        const size_t n = std::min(chunk, rows.size() - at);
        std::vector<SampleView> views(n);
        std::vector<double> watts(n);
        for (size_t i = 0; i < n; ++i)
            views[i] = SampleView{rows[at + i].data(),
                                  rows[at + i].size(),
                                  metered[at + i]};
        batched.estimateBatch(views.data(), n, watts.data());
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(watts[i], scalarWatts[at + i])
                << "sample " << at + i;
        at += n;
    }
    ASSERT_EQ(at, rows.size());

    // All derived serial state agrees exactly, not approximately.
    EXPECT_EQ(batched.health(), scalar.health());
    EXPECT_EQ(batched.samples(), scalar.samples());
    EXPECT_EQ(batched.lastEstimateW(), scalar.lastEstimateW());
    EXPECT_EQ(batched.meanEstimateW(), scalar.meanEstimateW());
    EXPECT_EQ(batched.residuals().count(), scalar.residuals().count());
    EXPECT_EQ(batched.residuals().mean(), scalar.residuals().mean());
    EXPECT_EQ(batched.residuals().stddev(),
              scalar.residuals().stddev());
    const OnlineHealthCounters &a = batched.healthCounters();
    const OnlineHealthCounters &b = scalar.healthCounters();
    EXPECT_EQ(a.validInputs, b.validInputs);
    EXPECT_EQ(a.rejectedInputs, b.rejectedInputs);
    EXPECT_EQ(a.imputedInputs, b.imputedInputs);
    EXPECT_EQ(a.substitutedEstimates, b.substitutedEstimates);
    EXPECT_EQ(a.clampedEstimates, b.clampedEstimates);
}

TEST(OnlineEstimator, HealthNamesAreDistinct)
{
    EXPECT_EQ(machineHealthName(MachineHealth::Healthy), "Healthy");
    EXPECT_EQ(machineHealthName(MachineHealth::Degraded), "Degraded");
    EXPECT_EQ(machineHealthName(MachineHealth::Stale), "Stale");
    EXPECT_EQ(machineHealthName(MachineHealth::Lost), "Lost");
}

TEST(OnlineEstimator, HealthEventsFollowScriptedFaultSequence)
{
    const MachinePowerModel model = core2Model();
    OnlineEstimatorConfig config = core2Config();
    config.sourceLabel = "scripted-machine";
    OnlinePowerEstimator estimator(model, config);
    obs::EventLog::instance().clear();

    // Scripted sequence: clean, one corrupt feature, clean again,
    // then a total blackout long enough to reach Stale and Lost.
    estimator.estimate(cleanRow(0));
    std::vector<double> corrupted = cleanRow(1);
    corrupted[model.catalogIndices()[0]] = kNan;
    estimator.estimate(corrupted);
    estimator.estimate(cleanRow(2));
    const std::vector<double> allNan(
        CounterCatalog::instance().size(), kNan);
    for (int t = 0; t < 15; ++t)
        estimator.estimate(allNan);
    ASSERT_EQ(estimator.health(), MachineHealth::Lost);

    std::vector<obs::Event> mine;
    for (const auto &e : obs::EventLog::instance().snapshot()) {
        if (e.source == "scripted-machine")
            mine.push_back(e);
    }
    ASSERT_FALSE(mine.empty());
    for (size_t i = 1; i < mine.size(); ++i)
        EXPECT_GT(mine[i].seq, mine[i - 1].seq);

    std::vector<std::string> transitions;
    bool imputation_before_first_transition = false;
    bool substitution_after_lost = false;
    bool lost_seen = false;
    for (const auto &e : mine) {
        if (e.kind == obs::EventKind::HealthTransition) {
            transitions.push_back(e.detail);
            lost_seen = lost_seen || e.detail == "Stale -> Lost";
        } else if (e.kind == obs::EventKind::Imputation &&
                   transitions.empty()) {
            imputation_before_first_transition = true;
        } else if (e.kind == obs::EventKind::Substitution &&
                   lost_seen) {
            substitution_after_lost = true;
        }
    }
    const std::vector<std::string> expected = {
        "Healthy -> Degraded", "Degraded -> Healthy",
        "Healthy -> Degraded", "Degraded -> Stale", "Stale -> Lost"};
    EXPECT_EQ(transitions, expected);
    EXPECT_TRUE(imputation_before_first_transition);
    EXPECT_TRUE(substitution_after_lost);
}

TEST(ClusterEstimator, AssignsDefaultSourceLabels)
{
    ClusterPowerEstimator cluster;
    cluster.addMachine(core2Model(), core2Config());
    OnlineEstimatorConfig labelled = core2Config();
    labelled.sourceLabel = "rack7";
    cluster.addMachine(core2Model(), labelled);

    obs::EventLog::instance().clear();
    const std::vector<double> allNan(
        CounterCatalog::instance().size(), kNan);
    cluster.estimateCluster({cleanRow(0), cleanRow(0)});
    cluster.estimateCluster({allNan, allNan});

    bool saw_machine0 = false, saw_rack7 = false;
    for (const auto &e : obs::EventLog::instance().snapshot()) {
        saw_machine0 = saw_machine0 || e.source == "machine0";
        saw_rack7 = saw_rack7 || e.source == "rack7";
    }
    EXPECT_TRUE(saw_machine0);
    EXPECT_TRUE(saw_rack7);
}

TEST(ClusterEstimator, SurvivesSingleMachineLoss)
{
    const MachinePowerModel model = core2Model();
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    const std::vector<double> allNan(
        CounterCatalog::instance().size(), kNan);

    ClusterPowerEstimator cluster;
    for (int m = 0; m < 3; ++m)
        cluster.addMachine(model, core2Config());
    ASSERT_EQ(cluster.numMachines(), 3u);

    for (size_t r = 0; r < 20; ++r) {
        cluster.estimateCluster(
            {cleanRow(r), cleanRow(r), cleanRow(r)});
    }
    EXPECT_EQ(cluster.countInHealth(MachineHealth::Healthy), 3u);

    // Machine 0 goes dark; the cluster total must stay finite and
    // the lost machine's substitute must stay inside its envelope,
    // bounding its error by the dynamic range.
    double total = 0.0;
    for (size_t r = 20; r < 40; ++r) {
        total = cluster.estimateCluster(
            {allNan, cleanRow(r), cleanRow(r)});
        EXPECT_TRUE(std::isfinite(total));
    }
    EXPECT_EQ(cluster.machineHealth(0), MachineHealth::Lost);
    EXPECT_EQ(cluster.countInHealth(MachineHealth::Lost), 1u);
    EXPECT_EQ(cluster.countInHealth(MachineHealth::Healthy), 2u);
    EXPECT_GE(total, 3.0 * spec.idlePowerW);
    EXPECT_LE(total, 3.0 * spec.maxPowerW);
    EXPECT_EQ(cluster.clusterEstimates().count(), 40u);
}

TEST(ClusterEstimator, LostMachineRecoverySnapsClusterSumBack)
{
    const MachinePowerModel model = core2Model();
    const std::vector<double> allNan(
        CounterCatalog::instance().size(), kNan);

    ClusterPowerEstimator cluster;
    for (int m = 0; m < 3; ++m)
        cluster.addMachine(model, core2Config());

    // Warm up healthy, then machine 0 goes dark long enough for Lost.
    for (size_t r = 0; r < 20; ++r) {
        cluster.estimateCluster(
            {cleanRow(r), cleanRow(r), cleanRow(r)});
    }
    for (size_t r = 20; r < 35; ++r) {
        cluster.estimateCluster(
            {allNan, cleanRow(r), cleanRow(r)});
    }
    ASSERT_EQ(cluster.machineHealth(0), MachineHealth::Lost);

    // Telemetry returns: the very next clean sample flips the
    // machine back to Healthy, and — because a fully-valid row is
    // evaluated by the model alone, independent of outage history —
    // the cluster sum snaps back to exactly three healthy machines'
    // worth of the same row.
    const double total = cluster.estimateCluster(
        {cleanRow(36), cleanRow(36), cleanRow(36)});
    EXPECT_EQ(cluster.machineHealth(0), MachineHealth::Healthy);
    EXPECT_EQ(cluster.countInHealth(MachineHealth::Healthy), 3u);
    EXPECT_EQ(cluster.countInHealth(MachineHealth::Lost), 0u);

    OnlinePowerEstimator reference(model, core2Config());
    const double healthyOne = reference.estimate(cleanRow(36));
    EXPECT_DOUBLE_EQ(total, 3.0 * healthyOne);
}

TEST(ClusterEstimator, MismatchedRowCountPanics)
{
    ClusterPowerEstimator cluster;
    cluster.addMachine(core2Model(), core2Config());
    EXPECT_DEATH(cluster.estimateCluster({}), "count mismatch");
}

} // namespace
} // namespace chaos
