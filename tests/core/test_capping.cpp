/**
 * @file
 * Tests for the power-capping support: guard bands from residuals
 * and the cap controller.
 */
#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "core/capping.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

std::vector<double>
normalResiduals(double mean, double sd, size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out(n);
    for (auto &v : out)
        v = rng.normal(mean, sd);
    return out;
}

TEST(GuardBand, WidthIsSigmasTimesSd)
{
    const auto residuals = normalResiduals(0.0, 2.0, 20000, 1);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    EXPECT_NEAR(band.sigmaW(), 2.0, 0.1);
    EXPECT_NEAR(band.perMachineW(), 6.0, 0.4);
    EXPECT_NEAR(band.biasW(), 0.0, 0.1);
}

TEST(GuardBand, UnderestimationBiasWidensTheBand)
{
    // Positive residual (meter > estimate) = model underestimates.
    const auto residuals = normalResiduals(1.5, 1.0, 20000, 2);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    EXPECT_NEAR(band.perMachineW(), 1.5 + 3.0, 0.3);
}

TEST(GuardBand, OverestimationBiasIsNotCreditedBack)
{
    const auto residuals = normalResiduals(-2.0, 1.0, 20000, 3);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    // Only the noise term remains.
    EXPECT_NEAR(band.perMachineW(), 3.0, 0.3);
}

TEST(GuardBand, ClusterBandGrowsSublinearlyForNoise)
{
    const auto residuals = normalResiduals(0.0, 2.0, 20000, 4);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    const double one = band.clusterW(1);
    const double sixteen = band.clusterW(16);
    // Independent noise: sqrt(16) = 4x, not 16x.
    EXPECT_NEAR(sixteen / one, 4.0, 0.1);
}

TEST(GuardBand, ClusterBandGrowsLinearlyForBias)
{
    const auto residuals = normalResiduals(5.0, 1e-3, 1000, 5);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    EXPECT_NEAR(band.clusterW(10) / band.clusterW(1), 10.0, 0.1);
}

TEST(GuardBand, TooFewResidualsRaises)
{
    EXPECT_RAISES(GuardBand::fromResiduals({1, 2, 3}), "at least 10");
}

TEST(CapController, ThrottlesAboveThresholdOnly)
{
    const auto residuals = normalResiduals(0.0, 1.0, 1000, 6);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    PowerCapController controller(500.0, band, 4);

    const double threshold = controller.thresholdW();
    EXPECT_LT(threshold, 500.0);
    EXPECT_GT(threshold, 450.0);

    const CapDecision below = controller.evaluate(threshold - 10.0);
    EXPECT_FALSE(below.throttle);
    EXPECT_NEAR(below.headroomW, 10.0, 1e-9);

    const CapDecision above = controller.evaluate(threshold + 5.0);
    EXPECT_TRUE(above.throttle);
    EXPECT_DOUBLE_EQ(above.headroomW, 0.0);

    EXPECT_EQ(controller.seconds(), 2u);
    EXPECT_EQ(controller.throttleSeconds(), 1u);
}

TEST(CapController, StrandedPowerEqualsClusterBand)
{
    const auto residuals = normalResiduals(0.0, 2.0, 1000, 7);
    const GuardBand band = GuardBand::fromResiduals(residuals, 3.0);
    PowerCapController controller(1000.0, band, 9);
    EXPECT_NEAR(controller.meanStrandedW(), band.clusterW(9), 1e-9);
}

TEST(CapController, TighterModelStrandsLessPower)
{
    // The paper's argument, quantified: halving model error halves
    // the stranded capacity.
    const GuardBand loose = GuardBand::fromResiduals(
        normalResiduals(0.0, 4.0, 20000, 8));
    const GuardBand tight = GuardBand::fromResiduals(
        normalResiduals(0.0, 2.0, 20000, 9));
    PowerCapController loose_ctl(800.0, loose, 5);
    PowerCapController tight_ctl(800.0, tight, 5);
    EXPECT_NEAR(loose_ctl.meanStrandedW() / tight_ctl.meanStrandedW(),
                2.0, 0.15);
}

TEST(CapController, ImpossibleBandRaises)
{
    const GuardBand band = GuardBand::fromResiduals(
        normalResiduals(50.0, 1.0, 1000, 10));
    EXPECT_RAISES(PowerCapController(100.0, band, 10),
                  "no usable capacity");
}

} // namespace
} // namespace chaos
