/**
 * @file
 * Tests for machine-model persistence (features + fitted model).
 */
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "campaign_fixture.hpp"
#include "core/model_store.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

MachinePowerModel
trainedModel()
{
    const auto &campaign = core2Campaign();
    return MachinePowerModel::fit(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, quickCampaignConfig().evaluation.mars);
}

TEST(ModelStore, StreamRoundTripPreservesPredictions)
{
    const MachinePowerModel original = trainedModel();
    std::stringstream buffer;
    saveMachineModel(buffer, original);
    const MachinePowerModel loaded = loadMachineModel(buffer);

    EXPECT_EQ(loaded.featureSet().counters,
              original.featureSet().counters);
    const auto &campaign = core2Campaign();
    for (size_t r = 0; r < 200; r += 17) {
        const auto row = campaign.data.features().row(r);
        EXPECT_DOUBLE_EQ(loaded.predictFromCatalogRow(row),
                         original.predictFromCatalogRow(row));
    }
}

TEST(ModelStore, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "machine.txt";
    const MachinePowerModel original = trainedModel();
    saveMachineModelFile(path, original);
    const MachinePowerModel loaded = loadMachineModelFile(path);
    const auto row = core2Campaign().data.features().row(5);
    EXPECT_DOUBLE_EQ(loaded.predictFromCatalogRow(row),
                     original.predictFromCatalogRow(row));
    std::remove(path.c_str());
}

TEST(ModelStore, RejectsWrongMagic)
{
    std::stringstream buffer("chaos-model 1\nlinear\n");
    EXPECT_RAISES(loadMachineModel(buffer),
                  "not a chaos machine model");
}

TEST(ModelStore, RejectsUnknownCounterName)
{
    const MachinePowerModel original = trainedModel();
    std::stringstream buffer;
    saveMachineModel(buffer, original);
    std::string text = buffer.str();
    // Corrupt the first counter name.
    const size_t pos = text.find("Processor");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 9, "Imaginary");
    std::stringstream corrupted(text);
    EXPECT_RAISES(loadMachineModel(corrupted), "unknown counter");
}

TEST(ModelStore, FromPartsRejectsNull)
{
    EXPECT_RAISES(MachinePowerModel::fromParts(FeatureSet{}, nullptr),
                  "null model");
}

} // namespace
} // namespace chaos
