/**
 * @file
 * Tests for the cross-validated evaluation harness and the headline
 * accuracy shapes of the paper.
 */
#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "campaign_fixture.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

TEST(Evaluation, EnvelopesFromSpecCoverAllMachines)
{
    const auto envelopes =
        envelopesFromSpec(machineSpecFor(MachineClass::Core2), 5);
    EXPECT_EQ(envelopes.size(), 5u);
    EXPECT_DOUBLE_EQ(envelopes.at(3).idlePowerW, 25.0);
    EXPECT_DOUBLE_EQ(envelopes.at(3).maxPowerW, 46.0);
}

TEST(Evaluation, QuadraticClusterModelHitsPaperAccuracyBand)
{
    // Paper: all best models achieve DRE < 12% and median relative
    // error in the 0.5-2.5% band.
    const auto &campaign = core2Campaign();
    const EvaluationOutcome outcome = evaluateTechnique(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, campaign.envelopes,
        quickCampaignConfig().evaluation);
    ASSERT_TRUE(outcome.valid);
    EXPECT_LT(outcome.avgDre, 0.14);
    EXPECT_LT(outcome.medianRelErr, 0.04);
    EXPECT_GT(outcome.r2, 0.7);
    EXPECT_GT(outcome.foldsRun, 0u);
}

TEST(Evaluation, UndefinedCombinationsAreInvalidNotFatal)
{
    const auto &campaign = core2Campaign();
    const auto config = quickCampaignConfig().evaluation;

    // Quadratic and switching require multiple features.
    EXPECT_FALSE(evaluateTechnique(campaign.data, cpuOnlyFeatureSet(),
                                   ModelType::Quadratic,
                                   campaign.envelopes, config)
                     .valid);
    EXPECT_FALSE(evaluateTechnique(campaign.data, cpuOnlyFeatureSet(),
                                   ModelType::Switching,
                                   campaign.envelopes, config)
                     .valid);

    // Switching requires the frequency counter in the set.
    FeatureSet no_freq{"X",
                       {counters::kCpuUtilization,
                        "Memory\\Pages/sec"}};
    EXPECT_FALSE(evaluateTechnique(campaign.data, no_freq,
                                   ModelType::Switching,
                                   campaign.envelopes, config)
                     .valid);

    // Empty feature set.
    FeatureSet empty{"E", {}};
    EXPECT_FALSE(evaluateTechnique(campaign.data, empty,
                                   ModelType::Linear,
                                   campaign.envelopes, config)
                     .valid);
}

TEST(Evaluation, CpuOnlyLinearIsWorseThanQuadraticCluster)
{
    // The cross-platform claim: CPU-utilization-only linear models
    // cannot capture data-intensive cluster behaviour.
    const auto &campaign = core2Campaign();
    const auto config = quickCampaignConfig().evaluation;

    const auto cpu_linear = evaluateTechnique(
        campaign.data, cpuOnlyFeatureSet(), ModelType::Linear,
        campaign.envelopes, config);
    const auto quad_cluster = evaluateTechnique(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, campaign.envelopes, config);
    ASSERT_TRUE(cpu_linear.valid);
    ASSERT_TRUE(quad_cluster.valid);
    EXPECT_GT(cpu_linear.avgDre, quad_cluster.avgDre);
}

TEST(Evaluation, FitPooledModelPredictsWithinEnvelope)
{
    const auto &campaign = core2Campaign();
    const auto model = fitPooledModel(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, quickCampaignConfig().evaluation.mars);

    const Dataset subset = campaign.data.selectFeaturesByName(
        campaign.selection.selected);
    const auto predictions = model->predictAll(subset.features());
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    size_t in_envelope = 0;
    for (double p : predictions) {
        if (p > spec.idlePowerW - 5.0 && p < spec.maxPowerW + 5.0)
            ++in_envelope;
    }
    EXPECT_GT(static_cast<double>(in_envelope) /
                  static_cast<double>(predictions.size()),
              0.99);
}

TEST(Evaluation, FitPooledModelOnUndefinedComboRaises)
{
    const auto &campaign = core2Campaign();
    EXPECT_RAISES(fitPooledModel(campaign.data, cpuOnlyFeatureSet(),
                                 ModelType::Quadratic, MarsConfig()),
                  "undefined");
}

TEST(Evaluation, SweepCoversAllCellsAndFindsABest)
{
    const auto &campaign = core2Campaign();
    const std::vector<FeatureSet> sets = {
        cpuOnlyFeatureSet(), clusterFeatureSet(campaign.selection)};
    const auto sweeps = sweepWorkloads(
        campaign.data, sets, allModelTypes(), campaign.envelopes,
        quickCampaignConfig().evaluation, {"Prime", "Sort"});

    ASSERT_EQ(sweeps.size(), 2u);
    for (const auto &sweep : sweeps) {
        EXPECT_EQ(sweep.cells.size(), 8u);  // 4 types x 2 sets.
        const SweepCell *best = sweep.best();
        ASSERT_NE(best, nullptr);
        EXPECT_TRUE(best->outcome.valid);
        EXPECT_LT(best->outcome.avgDre, 0.2);
        // Labels follow the paper's convention.
        EXPECT_FALSE(best->label().empty());
    }
    EXPECT_GT(totalModelsFitted(sweeps), 0u);
}

TEST(Evaluation, SweepLabelsCombineTypeAndSet)
{
    SweepCell cell;
    cell.type = ModelType::Quadratic;
    cell.featureSetName = "C";
    EXPECT_EQ(cell.label(), "QC");
}

} // namespace
} // namespace chaos
