/**
 * @file
 * Tests for Algorithm 1: the six-step feature reduction pipeline.
 */
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "campaign_fixture.hpp"
#include "oscounters/counter_catalog.hpp"
#include "stats/correlation.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;

TEST(FeatureSelection, FunnelShrinksMonotonically)
{
    const auto &selection = core2Campaign().selection;
    EXPECT_GT(selection.catalogSize, 150u);
    EXPECT_LT(selection.afterConstantDrop, selection.catalogSize);
    EXPECT_LE(selection.afterCorrelation, selection.afterConstantDrop);
    EXPECT_LE(selection.afterCoDependency, selection.afterCorrelation);
    EXPECT_LE(selection.selected.size(), selection.afterCoDependency);
    // Paper: 250 -> ~50 -> ~order-10 features.
    EXPECT_GE(selection.selected.size(), 3u);
    EXPECT_LE(selection.selected.size(), 25u);
}

TEST(FeatureSelection, SelectsUtilizationAsCoreSignal)
{
    // "Processor utilization was the most commonly identified
    // feature" (paper Fig. 2 discussion).
    const auto &selection = core2Campaign().selection;
    const auto &selected = selection.selected;
    EXPECT_NE(std::find(selected.begin(), selected.end(),
                        counters::kCpuUtilization),
              selected.end());
}

TEST(FeatureSelection, Core2SelectsFrequency)
{
    // On a DVFS platform the frequency counter is a dominant feature
    // (paper Table II: every DVFS platform selects Processor_0
    // Frequency).
    const auto &selected = core2Campaign().selection.selected;
    EXPECT_NE(std::find(selected.begin(), selected.end(),
                        counters::kCore0Frequency),
              selected.end());
}

TEST(FeatureSelection, ExcludedCountersNeverSelected)
{
    const auto &selected = core2Campaign().selection.selected;
    for (const auto &name : selected) {
        EXPECT_NE(name, counters::kCore0FrequencyLag);
        EXPECT_NE(name, "System\\System Up Time");
    }
}

TEST(FeatureSelection, SelectedFeaturesAreDecorrelated)
{
    // Step 1's contract: no surviving pair correlates above the
    // threshold on the screening data.
    const auto &campaign = core2Campaign();
    const auto &selected = campaign.selection.selected;
    const Dataset sub =
        campaign.data.selectFeaturesByName(selected);
    const Matrix corr = correlationMatrix(sub.features());
    for (size_t i = 0; i < selected.size(); ++i) {
        for (size_t j = i + 1; j < selected.size(); ++j) {
            EXPECT_LE(std::fabs(corr(i, j)), 0.97)
                << selected[i] << " vs " << selected[j];
        }
    }
}

TEST(FeatureSelection, HistogramCoversSelectedFeatures)
{
    const auto &selection = core2Campaign().selection;
    for (const auto &name : selection.selected) {
        const auto it = selection.histogram.find(name);
        ASSERT_NE(it, selection.histogram.end()) << name;
        EXPECT_GE(it->second, selection.finalThreshold) << name;
    }
}

TEST(FeatureSelection, ThresholdStartsAtConfiguredValue)
{
    // The paper starts at 5; stepwise may push it up (to 7 there).
    const auto &selection = core2Campaign().selection;
    EXPECT_GE(selection.finalThreshold, 5.0);
    EXPECT_LE(selection.finalThreshold, 20.0);
}

TEST(FeatureSelection, PerMachineRecordsCoverMachinesAndWorkloads)
{
    const auto &campaign = core2Campaign();
    const auto &records = campaign.selection.perMachine;
    ASSERT_FALSE(records.empty());

    std::set<int> machines;
    std::set<std::string> workloads;
    for (const auto &record : records) {
        machines.insert(record.machineId);
        workloads.insert(record.workload);
        // Step 4 output is a subset of step 3 output.
        for (const auto &name : record.significant) {
            EXPECT_NE(std::find(record.lassoSelected.begin(),
                                record.lassoSelected.end(), name),
                      record.lassoSelected.end());
        }
    }
    EXPECT_EQ(machines.size(), 3u);
    EXPECT_EQ(workloads.size(), 4u);
}

TEST(FeatureSelection, ScreeningDropsCoDependentSums)
{
    // After step 2, a derived counter and its addend cannot both
    // survive alongside each other.
    const auto &campaign = core2Campaign();
    FeatureSelectionConfig config;
    Rng rng(3);
    FeatureSelectionResult funnel;
    const auto survivors =
        screenCounters(campaign.data, config, rng, &funnel);

    std::set<std::string> names;
    for (size_t idx : survivors)
        names.insert(campaign.data.featureNames()[idx]);

    for (const auto &dep : CounterCatalog::instance().coDependencies()) {
        if (!names.count(dep.sum))
            continue;
        // If the sum survived, no addend may have survived.
        for (const auto &part : dep.parts)
            EXPECT_FALSE(names.count(part))
                << dep.sum << " and " << part << " both survived";
    }
}

TEST(FeatureSelection, ScreeningDropsConstantCounters)
{
    // Core2 has 2 cores: core 5's utilization is constant zero and
    // must not survive screening.
    const auto &campaign = core2Campaign();
    FeatureSelectionConfig config;
    Rng rng(4);
    const auto survivors =
        screenCounters(campaign.data, config, rng, nullptr);
    for (size_t idx : survivors) {
        EXPECT_NE(campaign.data.featureNames()[idx],
                  "Processor(5)\\% Processor Time");
    }
}

TEST(FeatureSelection, TighterCorrelationThresholdKeepsMore)
{
    // Sensitivity knob from the paper: |r| > 0.95 with diminishing
    // returns below. A looser threshold (0.999) must keep at least
    // as many counters as 0.95.
    const auto &campaign = core2Campaign();
    Rng rng_a(5), rng_b(5);

    FeatureSelectionConfig strict;
    strict.correlationThreshold = 0.95;
    FeatureSelectionConfig loose;
    loose.correlationThreshold = 0.999;

    const auto kept_strict =
        screenCounters(campaign.data, strict, rng_a, nullptr);
    const auto kept_loose =
        screenCounters(campaign.data, loose, rng_b, nullptr);
    EXPECT_GE(kept_loose.size(), kept_strict.size());
}

} // namespace
} // namespace chaos
