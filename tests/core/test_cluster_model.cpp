/**
 * @file
 * Tests for cluster model composition (Eq. 5) and the online
 * estimator.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "campaign_fixture.hpp"

namespace chaos {
namespace {

using testing_support::atomCampaign;
using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

MachinePowerModel
core2Model()
{
    const auto &campaign = core2Campaign();
    return MachinePowerModel::fit(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, quickCampaignConfig().evaluation.mars);
}

TEST(MachinePowerModel, CatalogAndFeatureRowsAgree)
{
    const MachinePowerModel model = core2Model();
    const auto &campaign = core2Campaign();
    const Dataset subset = campaign.data.selectFeaturesByName(
        campaign.selection.selected);

    for (size_t r = 0; r < 50; r += 7) {
        const auto catalog_row = campaign.data.features().row(r);
        const auto feature_row = subset.features().row(r);
        EXPECT_DOUBLE_EQ(model.predictFromCatalogRow(catalog_row),
                         model.predictFromFeatureRow(feature_row));
    }
}

TEST(MachinePowerModel, NarrowRowPanics)
{
    const MachinePowerModel model = core2Model();
    EXPECT_DEATH(model.predictFromCatalogRow({1.0, 2.0}),
                 "narrower");
}

TEST(ClusterPowerModel, SumsPerMachinePredictions)
{
    const MachinePowerModel machine_model = core2Model();
    ClusterPowerModel cluster_model;
    cluster_model.setClassModel(MachineClass::Core2, machine_model);

    const auto &campaign = core2Campaign();
    std::vector<MachineClass> classes(3, MachineClass::Core2);
    std::vector<std::vector<double>> rows;
    for (size_t r = 0; r < 3; ++r)
        rows.push_back(campaign.data.features().row(r));

    double manual = 0.0;
    for (const auto &row : rows)
        manual += cluster_model.predictMachine(MachineClass::Core2, row);
    EXPECT_DOUBLE_EQ(cluster_model.predictCluster(classes, rows),
                     manual);
}

TEST(ClusterPowerModel, HeterogeneousComposition)
{
    // Eq. 5 across machine classes: each machine gets its class's
    // model, no retraining needed (the paper's "essentially free"
    // heterogeneous capability).
    ClusterPowerModel cluster_model;
    cluster_model.setClassModel(MachineClass::Core2, core2Model());
    const auto &atom = atomCampaign();
    // The Atom's cluster feature set can be a single counter (no
    // DVFS, tiny range) — use the piecewise technique, which is
    // defined for one feature (and is what wins on the Atom in
    // Table IV anyway).
    cluster_model.setClassModel(
        MachineClass::Atom,
        MachinePowerModel::fit(
            atom.data, clusterFeatureSet(atom.selection),
            ModelType::PiecewiseLinear,
            quickCampaignConfig().evaluation.mars));

    EXPECT_TRUE(cluster_model.hasClassModel(MachineClass::Core2));
    EXPECT_TRUE(cluster_model.hasClassModel(MachineClass::Atom));
    EXPECT_FALSE(cluster_model.hasClassModel(MachineClass::XeonSas));

    const auto core2_row = core2Campaign().data.features().row(0);
    const auto atom_row = atomCampaign().data.features().row(0);
    const double total = cluster_model.predictCluster(
        {MachineClass::Core2, MachineClass::Atom},
        {core2_row, atom_row});
    const double manual =
        cluster_model.predictMachine(MachineClass::Core2, core2_row) +
        cluster_model.predictMachine(MachineClass::Atom, atom_row);
    EXPECT_DOUBLE_EQ(total, manual);
}

TEST(ClusterPowerModel, UnknownClassIsFatal)
{
    ClusterPowerModel cluster_model;
    const std::vector<double> row(
        CounterCatalog::instance().size(), 0.0);
    EXPECT_RAISES(cluster_model.predictMachine(MachineClass::XeonSas, row),
                  "no cluster model");
}

TEST(ClusterPowerModel, MismatchedShapesPanic)
{
    ClusterPowerModel cluster_model;
    cluster_model.setClassModel(MachineClass::Core2, core2Model());
    std::vector<MachineClass> classes(2, MachineClass::Core2);
    std::vector<std::vector<double>> rows(1);
    EXPECT_DEATH(cluster_model.predictCluster(classes, rows),
                 "count mismatch");
}

TEST(OnlineEstimator, TracksResidualsAgainstMeter)
{
    const auto &campaign = core2Campaign();
    OnlinePowerEstimator estimator(core2Model());

    for (size_t r = 0; r < 400; ++r) {
        estimator.estimateWithReference(
            campaign.data.features().row(r),
            campaign.data.powerW()[r]);
    }
    EXPECT_EQ(estimator.samples(), 400u);
    EXPECT_EQ(estimator.residuals().count(), 400u);
    // In-sample residuals: small bias, bounded spread.
    EXPECT_LT(std::fabs(estimator.residuals().mean()), 1.0);
    EXPECT_LT(estimator.residuals().stddev(), 3.0);
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    EXPECT_GT(estimator.meanEstimateW(), spec.idlePowerW * 0.9);
    EXPECT_LT(estimator.meanEstimateW(), spec.maxPowerW * 1.1);
}

TEST(OnlineEstimator, PureEstimateDoesNotTouchResiduals)
{
    const auto &campaign = core2Campaign();
    OnlinePowerEstimator estimator(core2Model());
    estimator.estimate(campaign.data.features().row(0));
    EXPECT_EQ(estimator.samples(), 1u);
    EXPECT_EQ(estimator.residuals().count(), 0u);
}

} // namespace
} // namespace chaos
