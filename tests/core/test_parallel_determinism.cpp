/**
 * @file
 * Determinism of the parallelized training pipeline: every result —
 * fitted MARS bases and coefficients, cross-validated metrics, the
 * pooling comparison — must be identical for any thread count. The
 * pipeline earns this by construction (tasks write only their own
 * output slot; reductions run serially in index order), and these
 * tests pin the contract with exact floating-point comparisons
 * between CHAOS_THREADS=1 and CHAOS_THREADS=8 runs.
 */
#include <gtest/gtest.h>

#include "campaign_fixture.hpp"
#include "core/pooling.hpp"
#include "models/mars.hpp"
#include "util/parallel.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

/** Restore the environment-resolved thread count on scope exit. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { setGlobalThreadCount(0); }
};

TEST(ParallelDeterminism, EvaluationIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const auto &campaign = core2Campaign();
    const auto config = quickCampaignConfig().evaluation;
    const FeatureSet features = clusterFeatureSet(campaign.selection);

    setGlobalThreadCount(1);
    const EvaluationOutcome serial = evaluateTechnique(
        campaign.data, features, ModelType::Quadratic,
        campaign.envelopes, config);
    setGlobalThreadCount(8);
    const EvaluationOutcome parallel = evaluateTechnique(
        campaign.data, features, ModelType::Quadratic,
        campaign.envelopes, config);

    ASSERT_TRUE(serial.valid);
    ASSERT_TRUE(parallel.valid);
    EXPECT_EQ(serial.foldsRun, parallel.foldsRun);
    EXPECT_EQ(serial.avgParameters, parallel.avgParameters);
    EXPECT_DOUBLE_EQ(serial.avgDre, parallel.avgDre);
    EXPECT_DOUBLE_EQ(serial.avgRmse, parallel.avgRmse);
    EXPECT_DOUBLE_EQ(serial.avgPctErr, parallel.avgPctErr);
    EXPECT_DOUBLE_EQ(serial.medianRelErr, parallel.medianRelErr);
    EXPECT_DOUBLE_EQ(serial.medianAbsErr, parallel.medianAbsErr);
    EXPECT_DOUBLE_EQ(serial.r2, parallel.r2);
}

TEST(ParallelDeterminism, MarsFitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const auto &campaign = core2Campaign();
    const Dataset subset = campaign.data.selectFeaturesByName(
        clusterFeatureSet(campaign.selection).counters);

    MarsConfig config;
    config.maxDegree = 2;

    setGlobalThreadCount(1);
    MarsModel serial(config);
    serial.fit(subset.features(), subset.powerW());
    setGlobalThreadCount(8);
    MarsModel parallel(config);
    parallel.fit(subset.features(), subset.powerW());

    ASSERT_EQ(serial.terms().size(), parallel.terms().size());
    for (size_t t = 0; t < serial.terms().size(); ++t) {
        const auto &a = serial.terms()[t];
        const auto &b = parallel.terms()[t];
        ASSERT_EQ(a.hinges.size(), b.hinges.size());
        for (size_t h = 0; h < a.hinges.size(); ++h) {
            EXPECT_EQ(a.hinges[h].feature, b.hinges[h].feature);
            EXPECT_EQ(a.hinges[h].direction, b.hinges[h].direction);
            EXPECT_DOUBLE_EQ(a.hinges[h].knot, b.hinges[h].knot);
        }
    }
    ASSERT_EQ(serial.coefficients().size(),
              parallel.coefficients().size());
    for (size_t i = 0; i < serial.coefficients().size(); ++i) {
        EXPECT_DOUBLE_EQ(serial.coefficients()[i],
                         parallel.coefficients()[i]);
    }
}

TEST(ParallelDeterminism, PoolingComparisonIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const auto &campaign = core2Campaign();
    const auto config = quickCampaignConfig().evaluation;
    const FeatureSet features = clusterFeatureSet(campaign.selection);

    setGlobalThreadCount(1);
    const PoolingComparison serial =
        comparePooling(campaign.data, features,
                       ModelType::PiecewiseLinear,
                       campaign.envelopes, config);
    setGlobalThreadCount(8);
    const PoolingComparison parallel =
        comparePooling(campaign.data, features,
                       ModelType::PiecewiseLinear,
                       campaign.envelopes, config);

    EXPECT_DOUBLE_EQ(serial.pooledDre, parallel.pooledDre);
    EXPECT_DOUBLE_EQ(serial.perMachineDre, parallel.perMachineDre);
    EXPECT_DOUBLE_EQ(serial.partialDre, parallel.partialDre);
    EXPECT_DOUBLE_EQ(serial.pooledResidualVar,
                     parallel.pooledResidualVar);
    EXPECT_DOUBLE_EQ(serial.perMachineResidualVar,
                     parallel.perMachineResidualVar);
    EXPECT_DOUBLE_EQ(serial.varianceRatio, parallel.varianceRatio);
    EXPECT_EQ(serial.poolingAdequate, parallel.poolingAdequate);
}

TEST(ParallelDeterminism, SweepIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const auto &campaign = core2Campaign();
    const auto config = quickCampaignConfig().evaluation;
    const std::vector<FeatureSet> sets = {
        cpuOnlyFeatureSet(), clusterFeatureSet(campaign.selection)};

    setGlobalThreadCount(1);
    const auto serial =
        sweepWorkloads(campaign.data, sets, allModelTypes(),
                       campaign.envelopes, config, {"Prime"});
    setGlobalThreadCount(8);
    const auto parallel =
        sweepWorkloads(campaign.data, sets, allModelTypes(),
                       campaign.envelopes, config, {"Prime"});

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.front().cells.size(),
              parallel.front().cells.size());
    for (size_t c = 0; c < serial.front().cells.size(); ++c) {
        const auto &a = serial.front().cells[c];
        const auto &b = parallel.front().cells[c];
        EXPECT_EQ(a.type, b.type);
        EXPECT_EQ(a.featureSetName, b.featureSetName);
        EXPECT_EQ(a.outcome.valid, b.outcome.valid);
        EXPECT_DOUBLE_EQ(a.outcome.avgDre, b.outcome.avgDre);
        EXPECT_DOUBLE_EQ(a.outcome.r2, b.outcome.r2);
    }
}

} // namespace
} // namespace chaos
