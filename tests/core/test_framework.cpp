/**
 * @file
 * End-to-end tests of the campaign framework.
 */
#include <set>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "campaign_fixture.hpp"

namespace chaos {
namespace {

using testing_support::atomCampaign;
using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

TEST(Framework, CampaignCollectsExpectedShape)
{
    const auto &campaign = core2Campaign();
    const auto config = quickCampaignConfig();

    EXPECT_EQ(campaign.machineClass, MachineClass::Core2);
    ASSERT_NE(campaign.cluster, nullptr);
    EXPECT_EQ(campaign.cluster->size(), config.numMachines);
    // 4 workloads x runsPerWorkload runs.
    EXPECT_EQ(campaign.runs.size(), 4 * config.runsPerWorkload);
    EXPECT_GT(campaign.data.numRows(), 1000u);
    EXPECT_EQ(campaign.envelopes.size(), config.numMachines);

    // All four workloads present in the dataset.
    std::set<std::string> names(campaign.data.workloadNames().begin(),
                                campaign.data.workloadNames().end());
    EXPECT_EQ(names.size(), 4u);
}

TEST(Framework, RunIdsAreDistinctAcrossCampaign)
{
    const auto &campaign = core2Campaign();
    std::set<int> run_ids;
    for (const auto &run : campaign.runs)
        EXPECT_TRUE(run_ids.insert(run.runId).second);
}

TEST(Framework, CollectWithoutSelectionLeavesSelectionEmpty)
{
    CampaignConfig config = quickCampaignConfig();
    config.runsPerWorkload = 1;
    config.run.durationScale = 0.1;
    const ClusterCampaign campaign =
        collectClusterData(MachineClass::Atom, config);
    EXPECT_TRUE(campaign.selection.selected.empty());
    EXPECT_GT(campaign.data.numRows(), 0u);
}

TEST(Framework, DefaultModelDeploysAndPredictsSanely)
{
    const auto &campaign = core2Campaign();
    const MachinePowerModel model =
        fitDefaultModel(campaign, quickCampaignConfig());
    EXPECT_EQ(model.model().type(), ModelType::Quadratic);
    EXPECT_EQ(model.featureSet().counters,
              campaign.selection.selected);

    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    const double watts = model.predictFromCatalogRow(
        campaign.data.features().row(10));
    EXPECT_GT(watts, spec.idlePowerW - 5.0);
    EXPECT_LT(watts, spec.maxPowerW + 5.0);
}

TEST(Framework, DefaultModelWithoutSelectionRaises)
{
    CampaignConfig config = quickCampaignConfig();
    config.runsPerWorkload = 1;
    config.run.durationScale = 0.1;
    const ClusterCampaign campaign =
        collectClusterData(MachineClass::Atom, config);
    EXPECT_RAISES(fitDefaultModel(campaign, config),
                  "no feature selection");
}

TEST(Framework, AtomSelectsNoFrequencyCounter)
{
    // The Atom has no DVFS: its frequency counter is constant and
    // must not appear in the cluster feature set (paper Table II has
    // no frequency row for the Atom).
    const auto &selected = atomCampaign().selection.selected;
    for (const auto &name : selected)
        EXPECT_EQ(name.find("Frequency"), std::string::npos) << name;
}

TEST(Framework, DistinctSeedsProduceDistinctData)
{
    CampaignConfig a = quickCampaignConfig();
    a.runsPerWorkload = 1;
    a.run.durationScale = 0.1;
    CampaignConfig b = a;
    b.seed = a.seed + 1;

    const auto ca = collectClusterData(MachineClass::Atom, a);
    const auto cb = collectClusterData(MachineClass::Atom, b);
    ASSERT_GT(ca.data.numRows(), 10u);
    // Same machine count but different traces.
    bool differs = ca.data.numRows() != cb.data.numRows();
    if (!differs) {
        differs = ca.data.powerW()[5] != cb.data.powerW()[5];
    }
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace chaos
