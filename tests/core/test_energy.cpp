/**
 * @file
 * Tests for energy accounting from model estimates.
 */
#include <gtest/gtest.h>

#include "campaign_fixture.hpp"
#include "core/energy.hpp"
#include "workloads/standard_workloads.hpp"

namespace chaos {
namespace {

using testing_support::core2Campaign;
using testing_support::quickCampaignConfig;

ClusterPowerModel
composedModel()
{
    ClusterPowerModel model;
    model.setClassModel(MachineClass::Core2,
                        fitDefaultModel(core2Campaign(),
                                        quickCampaignConfig()));
    return model;
}

TEST(Energy, AccountsMeteredAndEstimatedJoules)
{
    const auto config = quickCampaignConfig();
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 2,
                                           909);
    PrimeWorkload workload;
    const RunResult run =
        runWorkload(cluster, workload, 11, 0, config.run);

    EnergyAccountant accountant(composedModel());
    const RunEnergy &energy = accountant.account(cluster, run);

    EXPECT_EQ(energy.workload, "Prime");
    EXPECT_GT(energy.meteredJ, 0.0);
    EXPECT_GT(energy.estimatedJ, 0.0);
    // Energy ~ mean power x duration x machines; sanity bounds from
    // the platform envelope.
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    const double seconds = energy.durationSeconds * 2.0;
    EXPECT_GT(energy.meteredJ, spec.idlePowerW * seconds * 0.8);
    EXPECT_LT(energy.meteredJ, spec.maxPowerW * seconds * 1.2);

    // The model integrates to within a few percent of the meters.
    EXPECT_LT(energy.relativeError(), 0.05);

    // Per-machine energies sum to the cluster estimate.
    double per_machine = 0.0;
    for (double joules : energy.perMachineEstimatedJ)
        per_machine += joules;
    EXPECT_NEAR(per_machine, energy.estimatedJ, 1e-6);

    EXPECT_NEAR(energy.meanPowerW() * energy.durationSeconds,
                energy.meteredJ, 1e-6);
}

TEST(Energy, AggregatesByWorkload)
{
    const auto config = quickCampaignConfig();
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 2,
                                           910);
    EnergyAccountant accountant(composedModel());

    PrimeWorkload prime;
    WordCountWorkload wordcount;
    accountant.account(cluster,
                       runWorkload(cluster, prime, 21, 0, config.run));
    accountant.account(cluster,
                       runWorkload(cluster, prime, 22, 1, config.run));
    accountant.account(
        cluster, runWorkload(cluster, wordcount, 23, 2, config.run));

    ASSERT_EQ(accountant.runs().size(), 3u);
    const auto by_workload = accountant.meanEnergyByWorkloadJ();
    ASSERT_EQ(by_workload.size(), 2u);
    EXPECT_GT(by_workload.at("Prime"), 0.0);
    EXPECT_GT(by_workload.at("WordCount"), 0.0);

    EXPECT_NEAR(accountant.totalEstimatedJ(),
                accountant.runs()[0].estimatedJ +
                    accountant.runs()[1].estimatedJ +
                    accountant.runs()[2].estimatedJ,
                1e-6);
    EXPECT_GT(accountant.totalMeteredJ(), 0.0);
}

TEST(Energy, MismatchedClusterPanics)
{
    const auto config = quickCampaignConfig();
    Cluster small = Cluster::homogeneous(MachineClass::Core2, 2, 911);
    Cluster large = Cluster::homogeneous(MachineClass::Core2, 3, 912);
    PrimeWorkload workload;
    const RunResult run =
        runWorkload(small, workload, 31, 0, config.run);
    EnergyAccountant accountant(composedModel());
    EXPECT_DEATH(accountant.account(large, run),
                 "does not match");
}

} // namespace
} // namespace chaos
