/**
 * @file
 * Integration tests for the fleet model-quality monitor: clean
 * replays stay quiet, an injected stuck-counter fault raises
 * ModelDrift within bounded ticks, drift state resets on hot-swap,
 * telemetry export is well-formed JSONL, and the chaos.monitor.*
 * metrics preserve the deterministic-snapshot contract.
 */
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_support.hpp"

#include "faults/injectors.hpp"
#include "monitor/exporter.hpp"
#include "monitor/fleet_monitor.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/result.hpp"

namespace chaos {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

constexpr double kBaseW = 25.0;

/** The true power the serve-test model approximates. */
double
truePowerW(double u0, double u1)
{
    return kBaseW + 0.1 * u0 + 0.08 * u1;
}

/** Drain everything currently queued, on the calling thread. */
void
drainAll(serve::FleetServer &server)
{
    while (server.processed() + server.dropped() < server.submitted())
        server.drainOnce();
}

monitor::QualityMonitorConfig
testMonitorConfig()
{
    monitor::QualityMonitorConfig config;
    config.warmupSamples = 100;
    config.windowSamples = 60;
    return config;
}

TEST(FleetMonitor, CleanReplayEmitsZeroDriftEvents)
{
    serve::FleetServer server;
    std::vector<serve::MachineEntry *> entries;
    for (int m = 0; m < 3; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), makeTestModel(17)));
    }
    monitor::FleetMonitor fleetMonitor(testMonitorConfig());
    fleetMonitor.attach(server);

    Rng rng(99);
    for (int t = 0; t < 500; ++t) {
        for (auto *entry : entries) {
            const double u0 = rng.uniform(0.0, 100.0);
            const double u1 = rng.uniform(0.0, 100.0);
            server.submitTo(*entry, catalogRow(u0, u1),
                            truePowerW(u0, u1) +
                                rng.normal(0.0, 0.05));
        }
        drainAll(server);
    }

    EXPECT_EQ(fleetMonitor.driftEvents(), 0u);
    const monitor::QualitySnapshot snap = fleetMonitor.snapshot();
    ASSERT_EQ(snap.machines.size(), 3u);
    for (const auto &machine : snap.machines) {
        EXPECT_EQ(machine.quality, ModelQuality::Ok) << machine.id;
        EXPECT_FALSE(machine.drifted);
        EXPECT_LT(machine.windowRmseW, 1.0);
    }
    EXPECT_EQ(snap.driftingCount(), 0u);
}

/**
 * The drift end-to-end: machine0's counter vectors pass through a
 * stuck-counter fault injector (freezing them at their tick-0
 * values) while the metered references stay true. While the workload
 * is stationary the frozen estimate still matches the meter; when
 * the true load shifts, the meter follows and the estimate cannot —
 * the residual mean jumps and the detector must latch within a
 * bounded number of ticks. machine1 sees the same load shift with
 * healthy telemetry and must NOT be flagged.
 */
TEST(FleetMonitor, StuckCounterFaultRaisesModelDriftWithinBoundedTicks)
{
    serve::FleetServer server;
    serve::MachineEntry &faulted =
        server.addMachine("machine0", makeTestModel(17));
    serve::MachineEntry &healthy =
        server.addMachine("machine1", makeTestModel(17));
    monitor::FleetMonitor fleetMonitor(testMonitorConfig());
    fleetMonitor.attach(server);

    FaultProfile profile;
    profile.stuckOnsetRate = 1.0;     // Freeze immediately...
    profile.stuckMeanSeconds = 1e9;   // ...and never recover.
    CounterFaultInjector injector(profile, Rng(5));

    const std::uint64_t eventsBefore =
        obs::EventLog::instance().totalEmitted();
    constexpr int kShiftTick = 200;  // After the 100-sample warmup.
    constexpr int kMaxTicks = 400;
    int firedAt = -1;
    Rng rng(31);
    for (int t = 0; t < kMaxTicks && firedAt < 0; ++t) {
        // Stationary load before the shift, high load after it.
        const double lo = t < kShiftTick ? 20.0 : 80.0;
        const double u0 = rng.uniform(lo, lo + 20.0);
        const double u1 = rng.uniform(lo, lo + 20.0);
        const double metered =
            truePowerW(u0, u1) + rng.normal(0.0, 0.05);
        server.submitTo(faulted, injector.apply(catalogRow(u0, u1)),
                        metered);
        server.submitTo(healthy, catalogRow(u0, u1), metered);
        drainAll(server);
        if (fleetMonitor.driftEvents() > 0)
            firedAt = t;
    }

    ASSERT_GE(firedAt, kShiftTick);
    EXPECT_LE(firedAt, kShiftTick + 30);
    EXPECT_EQ(fleetMonitor.driftEvents(), 1u);

    const monitor::QualitySnapshot snap = fleetMonitor.snapshot();
    ASSERT_EQ(snap.machines.size(), 2u);
    EXPECT_EQ(snap.machines[0].id, "machine0");
    EXPECT_EQ(snap.machines[0].quality, ModelQuality::Drifting);
    EXPECT_EQ(snap.machines[1].quality, ModelQuality::Ok);

    // The verdict is written back onto the estimator, so fleet
    // snapshots carry it too.
    const serve::FleetSnapshot fleet = server.snapshot();
    EXPECT_EQ(fleet.machines[0].quality, ModelQuality::Drifting);
    EXPECT_EQ(fleet.machines[1].quality, ModelQuality::Ok);
    EXPECT_EQ(fleet.drifting, 1u);

    // And a ModelDrift event names the faulted machine.
    bool found = false;
    for (const obs::Event &event :
         obs::EventLog::instance().snapshot()) {
        if (event.seq >= eventsBefore &&
            event.kind == obs::EventKind::ModelDrift &&
            event.source == "machine0")
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(FleetMonitor, HotSwapResetsTheQualityVerdict)
{
    serve::FleetServer server;
    serve::MachineEntry &entry =
        server.addMachine("machine0", makeTestModel(17));
    monitor::QualityMonitorConfig config = testMonitorConfig();
    config.warmupSamples = 50;
    monitor::FleetMonitor fleetMonitor(config);
    fleetMonitor.attach(server);

    // Warm up on unbiased residuals, then force a drift with a large
    // sustained bias.
    Rng rng(7);
    for (int t = 0; t < 60; ++t) {
        const double u0 = rng.uniform(0.0, 100.0);
        const double u1 = rng.uniform(0.0, 100.0);
        server.submitTo(entry, catalogRow(u0, u1),
                        truePowerW(u0, u1) + rng.normal(0.0, 0.05));
    }
    drainAll(server);
    for (int t = 0; t < 100 && fleetMonitor.driftEvents() == 0; ++t) {
        const double u0 = rng.uniform(0.0, 100.0);
        const double u1 = rng.uniform(0.0, 100.0);
        server.submitTo(entry, catalogRow(u0, u1),
                        truePowerW(u0, u1) + 25.0);
        drainAll(server);
    }
    ASSERT_EQ(fleetMonitor.driftEvents(), 1u);
    EXPECT_EQ(fleetMonitor.snapshot().machines[0].quality,
              ModelQuality::Drifting);

    // Deploying a replacement model clears the verdict: the tracker
    // restarts its warmup and the estimator reports Unknown again.
    server.swapModel("machine0", makeTestModel(17, 40.0));
    const monitor::QualitySnapshot snap = fleetMonitor.snapshot();
    EXPECT_EQ(snap.machines[0].quality, ModelQuality::Unknown);
    EXPECT_EQ(snap.machines[0].referenceSamples, 0u);
    entry.withEstimator([](OnlinePowerEstimator &e) {
        EXPECT_EQ(e.modelQuality(), ModelQuality::Unknown);
    });
}

/**
 * Hot-swap under live load with the monitor attached: a producer
 * streams samples through the background drainer while the main
 * thread repeatedly swaps models and reads quality snapshots. Run
 * under TSan this proves the swap path (deploy + tracker reset +
 * verdict write-back) cannot tear a ModelQuality transition; the
 * inline assertions pin every observed verdict to a valid state and
 * the final quiesced tracker to a coherent post-swap restart.
 */
TEST(FleetMonitor, HotSwapUnderLoadKeepsQualityTransitionsAtomic)
{
    serve::FleetServer server;
    serve::MachineEntry &entry =
        server.addMachine("machine0", makeTestModel(17));
    monitor::QualityMonitorConfig config;
    config.warmupSamples = 20;
    config.windowSamples = 16;
    monitor::FleetMonitor fleetMonitor(config);
    fleetMonitor.attach(server);
    server.start();

    std::atomic<bool> done{false};
    std::thread producer([&] {
        Rng rng(41);
        while (!done.load(std::memory_order_relaxed)) {
            const double u0 = rng.uniform(0.0, 100.0);
            const double u1 = rng.uniform(0.0, 100.0);
            server.submitTo(entry, catalogRow(u0, u1),
                            truePowerW(u0, u1) +
                                rng.normal(0.0, 0.05));
        }
    });

    for (int swap = 0; swap < 50; ++swap) {
        server.swapModel("machine0",
                         makeTestModel(17, 25.0 + (swap % 3) * 5.0));
        for (int reads = 0; reads < 20; ++reads) {
            const monitor::QualitySnapshot snap =
                fleetMonitor.snapshot();
            ASSERT_EQ(snap.machines.size(), 1u);
            const ModelQuality quality = snap.machines[0].quality;
            EXPECT_TRUE(quality == ModelQuality::Unknown ||
                        quality == ModelQuality::Ok ||
                        quality == ModelQuality::Drifting)
                << static_cast<int>(quality);
        }
    }
    done.store(true);
    producer.join();
    server.stop();

    // Quiesced: the last swap restarted the tracker, and whatever
    // samples landed since form a coherent (reference count, verdict)
    // pair — warmup incomplete reads Unknown, complete reads a real
    // verdict.
    const monitor::QualitySnapshot snap = fleetMonitor.snapshot();
    const auto &machine = snap.machines[0];
    if (machine.referenceSamples < config.warmupSamples) {
        EXPECT_EQ(machine.quality, ModelQuality::Unknown);
    } else {
        EXPECT_NE(machine.quality, ModelQuality::Unknown);
    }
    entry.withEstimator([&](OnlinePowerEstimator &e) {
        EXPECT_EQ(e.modelQuality(), machine.quality);
    });
}

TEST(FleetMonitor, TelemetryExportIsWellFormedJsonlPerLine)
{
    const std::string path =
        ::testing::TempDir() + "chaos_test_monitor_telemetry.jsonl";
    std::remove(path.c_str());

    serve::FleetServer server;
    serve::MachineEntry &entry =
        server.addMachine("machine0", makeTestModel(17));
    monitor::FleetMonitor fleetMonitor(testMonitorConfig());
    fleetMonitor.attach(server);
    monitor::TelemetryExporter telemetry(path);

    Rng rng(23);
    for (int t = 0; t < 20; ++t) {
        const double u0 = rng.uniform(0.0, 100.0);
        const double u1 = rng.uniform(0.0, 100.0);
        server.submitTo(entry, catalogRow(u0, u1),
                        truePowerW(u0, u1));
        drainAll(server);
        telemetry.writeFleet(server.snapshot(), t);
        telemetry.writeQuality(fleetMonitor.publishMetrics(), t);
        telemetry.writeMetrics(t);
    }
    telemetry.flush();
    EXPECT_EQ(telemetry.records(), 60u);

    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::string line;
    size_t lines = 0;
    bool sawFleet = false, sawQuality = false, sawMetrics = false;
    while (std::getline(file, line)) {
        ++lines;
        EXPECT_TRUE(obs::jsonWellFormed(line)) << "line " << lines;
        sawFleet |=
            line.find("\"type\": \"fleet\"") != std::string::npos;
        sawQuality |=
            line.find("\"type\": \"quality\"") != std::string::npos;
        if (line.find("\"type\": \"metrics\"") != std::string::npos) {
            sawMetrics = true;
            // Every metrics record carries the event-ring drop count
            // so collectors can spot lost flight-recorder context.
            EXPECT_NE(line.find("\"events_dropped\": "),
                      std::string::npos)
                << line;
        }
    }
    EXPECT_EQ(lines, 60u);
    EXPECT_TRUE(sawFleet);
    EXPECT_TRUE(sawQuality);
    EXPECT_TRUE(sawMetrics);
    std::remove(path.c_str());
}

TEST(FleetMonitor, TelemetryExporterRaisesOnUnwritablePath)
{
    // The exporter sits above chaos_util, so the bool error of the
    // underlying JsonlWriter surfaces as a catchable RecoverableError
    // at construction, not a crash or a silent no-op sink.
    EXPECT_THROW(
        monitor::TelemetryExporter("/nonexistent-dir/x/t.jsonl"),
        RecoverableError);
    try {
        monitor::TelemetryExporter bad("/nonexistent-dir/x/t.jsonl");
    } catch (const RecoverableError &e) {
        EXPECT_NE(e.message().find("telemetry"), std::string::npos);
    }
}

/**
 * The determinism contract extended to the monitor: the same
 * monitored workload produces a bit-identical Stable metrics
 * snapshot whether the drain pool runs 1 thread or 8.
 */
TEST(FleetMonitor, MonitorMetricsPreserveSnapshotDeterminism)
{
    const auto runWork = [](size_t threads) {
        setGlobalThreadCount(threads);
        obs::Registry::instance().resetAll();
        serve::FleetServer server;
        std::vector<serve::MachineEntry *> entries;
        for (int m = 0; m < 4; ++m) {
            entries.push_back(&server.addMachine(
                "machine" + std::to_string(m), makeTestModel(17)));
        }
        monitor::QualityMonitorConfig config;
        config.warmupSamples = 20;
        config.windowSamples = 16;
        monitor::FleetMonitor fleetMonitor(config);
        fleetMonitor.attach(server);

        Rng rng(3);
        // Pre-generate so both runs submit identical samples.
        for (int t = 0; t < 100; ++t) {
            for (auto *entry : entries) {
                const double u0 = rng.uniform(0.0, 100.0);
                const double u1 = rng.uniform(0.0, 100.0);
                server.submitTo(*entry, catalogRow(u0, u1),
                                truePowerW(u0, u1) + 20.0);
            }
            drainAll(server);
        }
        fleetMonitor.publishMetrics();
        return obs::Registry::instance().snapshotJson(false);
    };

    const std::string serial = runWork(1);
    const std::string threaded = runWork(8);
    setGlobalThreadCount(1);
    EXPECT_EQ(serial, threaded);
    EXPECT_NE(serial.find("chaos.monitor.drift_events"),
              std::string::npos);
}

} // namespace
} // namespace chaos
