/**
 * @file
 * Tests for the per-machine rolling quality tracker: window math
 * against a naive recomputation, warmup gating, Page-Hinkley drift
 * detection on synthetic residual streams, and reset semantics.
 */
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/quality.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

using monitor::QualityMonitorConfig;
using monitor::RollingQuality;

/** Naive rMSE/bias over the last @p window entries of @p values. */
void
naiveWindowStats(const std::vector<double> &values, size_t window,
                 double &rmse, double &bias)
{
    const size_t n = std::min(values.size(), window);
    double sum = 0.0, sum2 = 0.0;
    for (size_t i = values.size() - n; i < values.size(); ++i) {
        sum += values[i];
        sum2 += values[i] * values[i];
    }
    rmse = n > 0 ? std::sqrt(sum2 / static_cast<double>(n)) : 0.0;
    bias = n > 0 ? sum / static_cast<double>(n) : 0.0;
}

TEST(RollingQuality, WindowMatchesNaiveRecomputationAcrossWraparound)
{
    QualityMonitorConfig config;
    config.windowSamples = 8;
    config.warmupSamples = 4;
    RollingQuality rolling(config);

    Rng rng(42);
    std::vector<double> fed;
    for (int i = 0; i < 30; ++i) {
        const double r = rng.normal(0.5, 2.0);
        fed.push_back(r);
        rolling.addResidual(r);

        double rmse, bias;
        naiveWindowStats(fed, config.windowSamples, rmse, bias);
        EXPECT_NEAR(rolling.windowRmseW(), rmse, 1e-9)
            << "after sample " << i;
        EXPECT_NEAR(rolling.biasW(), bias, 1e-9)
            << "after sample " << i;
        EXPECT_EQ(rolling.windowFill(),
                  std::min<size_t>(fed.size(), config.windowSamples));
    }
    EXPECT_EQ(rolling.samples(), fed.size());
}

TEST(RollingQuality, WarmupGatesTheQualityState)
{
    QualityMonitorConfig config;
    config.warmupSamples = 10;
    RollingQuality rolling(config);

    for (int i = 0; i < 9; ++i) {
        rolling.addResidual(1.0);
        EXPECT_EQ(rolling.quality(), ModelQuality::Unknown);
        EXPECT_FALSE(rolling.warmedUp());
    }
    rolling.addResidual(1.0);
    EXPECT_TRUE(rolling.warmedUp());
    EXPECT_EQ(rolling.quality(), ModelQuality::Ok);
}

TEST(RollingQuality, StationaryNoiseDoesNotDrift)
{
    QualityMonitorConfig config;
    config.warmupSamples = 200;
    RollingQuality rolling(config);

    Rng rng(7);
    for (int i = 0; i < 5000; ++i)
        EXPECT_FALSE(rolling.addResidual(rng.normal(1.0, 3.0)));
    EXPECT_FALSE(rolling.drifted());
    EXPECT_EQ(rolling.quality(), ModelQuality::Ok);
}

TEST(RollingQuality, DetectsUpwardMeanShiftWithinBoundedSamples)
{
    QualityMonitorConfig config;
    config.warmupSamples = 200;
    RollingQuality rolling(config);

    Rng rng(11);
    for (int i = 0; i < 400; ++i)
        rolling.addResidual(rng.normal(0.0, 1.0));
    ASSERT_FALSE(rolling.drifted());

    // A +3 sigma shift accumulates ~(3 - delta) per sample; with the
    // default lambda it must latch within a few dozen samples.
    bool fired = false;
    int firedAt = -1;
    for (int i = 0; i < 100 && !fired; ++i) {
        fired = rolling.addResidual(rng.normal(3.0, 1.0));
        firedAt = i;
    }
    EXPECT_TRUE(fired);
    EXPECT_LE(firedAt, 60);
    EXPECT_EQ(rolling.quality(), ModelQuality::Drifting);
    // Latched: further samples do not re-fire.
    EXPECT_FALSE(rolling.addResidual(rng.normal(3.0, 1.0)));
    EXPECT_TRUE(rolling.drifted());
}

/**
 * acknowledge() clears the latched verdict but keeps the frozen
 * baseline: a drift that persists after acknowledgement refires
 * within a bounded number of samples, while a stream that went back
 * to baseline stays quiet. (reset() would instead forget everything
 * and restart the warmup — that path is for new models.)
 */
TEST(RollingQuality, AcknowledgeReArmsDetectionWithoutForgetting)
{
    QualityMonitorConfig config;
    config.warmupSamples = 200;
    RollingQuality rolling(config);

    Rng rng(17);
    for (int i = 0; i < 400; ++i)
        rolling.addResidual(rng.normal(0.0, 1.0));
    bool fired = false;
    for (int i = 0; i < 100 && !fired; ++i)
        fired = rolling.addResidual(rng.normal(3.0, 1.0));
    ASSERT_TRUE(fired);

    rolling.acknowledge();
    EXPECT_FALSE(rolling.drifted());
    EXPECT_EQ(rolling.quality(), ModelQuality::Ok);
    EXPECT_TRUE(rolling.warmedUp()); // Baseline survives.

    // Persisting shift: refires fast against the retained baseline.
    bool refired = false;
    int refiredAt = -1;
    for (int i = 0; i < 100 && !refired; ++i) {
        refired = rolling.addResidual(rng.normal(3.0, 1.0));
        refiredAt = i;
    }
    EXPECT_TRUE(refired);
    EXPECT_LE(refiredAt, 60);

    // Acknowledge again, return to baseline: stays quiet.
    rolling.acknowledge();
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(rolling.addResidual(rng.normal(0.0, 1.0)));
    EXPECT_EQ(rolling.quality(), ModelQuality::Ok);
}

TEST(RollingQuality, DetectsDownwardMeanShiftToo)
{
    QualityMonitorConfig config;
    config.warmupSamples = 200;
    RollingQuality rolling(config);

    Rng rng(13);
    for (int i = 0; i < 300; ++i)
        rolling.addResidual(rng.normal(0.0, 1.0));
    ASSERT_FALSE(rolling.drifted());

    bool fired = false;
    for (int i = 0; i < 100 && !fired; ++i)
        fired = rolling.addResidual(rng.normal(-3.0, 1.0));
    EXPECT_TRUE(fired);
    EXPECT_EQ(rolling.quality(), ModelQuality::Drifting);
}

TEST(RollingQuality, QuietWarmupIsFlooredByMinSigma)
{
    QualityMonitorConfig config;
    config.warmupSamples = 50;
    config.minSigmaW = 0.25;
    RollingQuality rolling(config);

    // A perfectly constant warmup would give sigma0 = 0 and make the
    // first noisy sample an infinite z-score without the floor.
    for (int i = 0; i < 50; ++i)
        rolling.addResidual(2.0);
    EXPECT_DOUBLE_EQ(rolling.baselineSigmaW(), 0.25);
    EXPECT_DOUBLE_EQ(rolling.baselineMeanW(), 2.0);
}

TEST(RollingQuality, IgnoresNonFiniteResiduals)
{
    QualityMonitorConfig config;
    config.windowSamples = 4;
    config.warmupSamples = 4;
    RollingQuality rolling(config);

    rolling.addResidual(1.0);
    rolling.addResidual(std::numeric_limits<double>::quiet_NaN());
    rolling.addResidual(std::numeric_limits<double>::infinity());
    EXPECT_EQ(rolling.samples(), 1u);
    EXPECT_EQ(rolling.windowFill(), 1u);
    EXPECT_DOUBLE_EQ(rolling.biasW(), 1.0);
}

TEST(RollingQuality, RollingDreUsesTheEnvelopeDenominator)
{
    QualityMonitorConfig config;
    config.windowSamples = 4;
    config.idlePowerW = 100.0;
    config.maxPowerW = 300.0;
    RollingQuality rolling(config);
    rolling.addResidual(4.0);
    EXPECT_DOUBLE_EQ(rolling.rollingDre(), 4.0 / 200.0);

    RollingQuality noEnvelope{QualityMonitorConfig{}};
    noEnvelope.addResidual(4.0);
    EXPECT_TRUE(std::isnan(noEnvelope.rollingDre()));
}

TEST(RollingQuality, ResetForgetsEverything)
{
    QualityMonitorConfig config;
    config.warmupSamples = 20;
    RollingQuality rolling(config);

    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        rolling.addResidual(rng.normal(0.0, 1.0));
    for (int i = 0; i < 200 && !rolling.drifted(); ++i)
        rolling.addResidual(rng.normal(10.0, 1.0));
    ASSERT_TRUE(rolling.drifted());

    rolling.reset();
    EXPECT_EQ(rolling.samples(), 0u);
    EXPECT_EQ(rolling.windowFill(), 0u);
    EXPECT_FALSE(rolling.drifted());
    EXPECT_EQ(rolling.quality(), ModelQuality::Unknown);
    EXPECT_DOUBLE_EQ(rolling.windowRmseW(), 0.0);
    EXPECT_DOUBLE_EQ(rolling.driftStatistic(), 0.0);
}

} // namespace
} // namespace chaos
