/**
 * @file
 * Tests for the hierarchical roll-up layer: mergeable aggregate
 * semantics (associativity, worst-N tournament), path-addressed tree
 * updates, the bitwise thread-count determinism contract on
 * aggregate(), and all three feeds (live snapshot join, JSONL replay,
 * synthetic topology).
 */
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/fleet_monitor.hpp"
#include "obs/json.hpp"
#include "rollup/feed.hpp"
#include "rollup/rollup.hpp"
#include "rollup/synthetic.hpp"
#include "serve/server.hpp"
#include "sim/fleet_topology.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"

namespace chaos {
namespace {

class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {}
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

rollup::MachineObservation
makeObservation(const std::string &id, double watts, double dre,
                const std::string &platform = "Core2")
{
    rollup::MachineObservation m;
    m.id = id;
    m.platform = platform;
    m.watts = watts;
    m.rollingDre = dre;
    m.windowRmseW = dre * 100.0;
    m.samples = 60;
    m.referenceSamples = std::isnan(dre) ? 0 : 4;
    m.quality = std::isnan(dre) ? ModelQuality::Unknown
                                : ModelQuality::Ok;
    return m;
}

TEST(RollupStats, AddMachineAccumulatesMixesAndSketches)
{
    rollup::RollupStats stats;
    auto healthy = makeObservation("m0", 100.0, 0.02);
    auto drifting = makeObservation("m1", 150.0, 0.10);
    drifting.quality = ModelQuality::Drifting;
    drifting.drifted = true;
    drifting.health = MachineHealth::Degraded;
    drifting.dropped = 7;
    auto unmetered = makeObservation(
        "m2", 50.0, std::numeric_limits<double>::quiet_NaN());

    stats.addMachine(healthy, "fleet0", 5);
    stats.addMachine(drifting, "fleet0", 5);
    stats.addMachine(unmetered, "fleet0", 5);

    EXPECT_EQ(stats.machines, 3u);
    EXPECT_EQ(stats.metered, 2u);  // NaN-DRE machine has no refs.
    EXPECT_DOUBLE_EQ(stats.watts, 300.0);
    EXPECT_EQ(stats.healthy, 2u);
    EXPECT_EQ(stats.degraded, 1u);
    EXPECT_EQ(stats.qualityOk, 1u);
    EXPECT_EQ(stats.qualityDrifting, 1u);
    EXPECT_EQ(stats.qualityUnknown, 1u);
    EXPECT_EQ(stats.dropped, 7u);
    // Only finite DREs enter the distribution: 2 points, not 3.
    EXPECT_EQ(stats.dre.count(), 2u);
    EXPECT_DOUBLE_EQ(stats.driftRate(), 0.5);  // 1 of 2 metered.
    // Worst ranking is DRE-descending and labels the path.
    ASSERT_EQ(stats.worst.size(), 2u);
    EXPECT_EQ(stats.worst[0].id, "m1");
    EXPECT_EQ(stats.worst[0].path, "fleet0");
    EXPECT_TRUE(stats.worst[0].drifted);
}

TEST(RollupStats, MergeIsAssociativeAndOrderInvariant)
{
    const auto build = [](int base, int n) {
        rollup::RollupStats s;
        for (int i = 0; i < n; ++i) {
            s.addMachine(
                makeObservation("m" + std::to_string(base + i),
                                50.0 + i, 0.01 * (1 + (base + i) % 9)),
                "g" + std::to_string(base / 100), 4);
        }
        return s;
    };
    const rollup::RollupStats a = build(0, 7);
    const rollup::RollupStats b = build(100, 5);
    const rollup::RollupStats c = build(200, 9);

    rollup::RollupStats left = a;  // (A + B) + C
    left.merge(b, 4);
    left.merge(c, 4);
    rollup::RollupStats bc = b;  // A + (B + C)
    bc.merge(c, 4);
    rollup::RollupStats right = a;
    right.merge(bc, 4);
    rollup::RollupStats reversed = c;  // C + B + A
    reversed.merge(b, 4);
    reversed.merge(a, 4);

    EXPECT_EQ(left.machines, 21u);
    EXPECT_EQ(left.machines, right.machines);
    EXPECT_DOUBLE_EQ(left.watts, right.watts);
    EXPECT_DOUBLE_EQ(left.watts, reversed.watts);
    EXPECT_EQ(left.dre.toJson(), right.dre.toJson());
    EXPECT_EQ(left.dre.toJson(), reversed.dre.toJson());
    ASSERT_EQ(left.worst.size(), 4u);
    for (std::size_t i = 0; i < left.worst.size(); ++i) {
        EXPECT_EQ(left.worst[i].id, right.worst[i].id);
        EXPECT_EQ(left.worst[i].id, reversed.worst[i].id);
    }
}

TEST(RollupStats, WorstRankingBoundedSortedAndTieBrokenById)
{
    rollup::RollupStats stats;
    // Two ties on DRE: the lexically smaller id must win its slot so
    // the ranking is deterministic.
    stats.addMachine(makeObservation("m3", 10.0, 0.05), "g", 3);
    stats.addMachine(makeObservation("m1", 10.0, 0.05), "g", 3);
    stats.addMachine(makeObservation("m2", 10.0, 0.90), "g", 3);
    stats.addMachine(makeObservation("m4", 10.0, 0.01), "g", 3);
    stats.addMachine(makeObservation("m0", 10.0, 0.02), "g", 3);

    ASSERT_EQ(stats.worst.size(), 3u);  // Bounded at worstN.
    EXPECT_EQ(stats.worst[0].id, "m2");
    EXPECT_EQ(stats.worst[1].id, "m1");  // Tie: id ascending.
    EXPECT_EQ(stats.worst[2].id, "m3");
}

TEST(RollupTree, PathsCreateTopologyAndUpsertReplaces)
{
    rollup::RollupTree tree;
    tree.update("dc0/row0/rack0", makeObservation("m0", 100.0, 0.02));
    tree.update("dc0/row0/rack1", makeObservation("m1", 50.0, 0.04));
    tree.update("dc0/row1/rack0", makeObservation("m2", 25.0, 0.08));
    // Replace m0: same id, same group — count stays 3.
    tree.update("dc0/row0/rack0", makeObservation("m0", 200.0, 0.03));

    EXPECT_EQ(tree.numMachines(), 3u);
    // root + dc0 + row0 + row1 + rack0 + rack1 + rack0.
    EXPECT_EQ(tree.numNodes(), 7u);

    const rollup::NodeSummary summary = tree.aggregate();
    EXPECT_DOUBLE_EQ(summary.stats.watts, 275.0);
    EXPECT_EQ(summary.stats.machines, 3u);

    const rollup::NodeSummary *row0 = summary.find("dc0/row0");
    ASSERT_NE(row0, nullptr);
    EXPECT_EQ(row0->stats.machines, 2u);
    EXPECT_DOUBLE_EQ(row0->stats.watts, 250.0);
    EXPECT_EQ(row0->path, "dc0/row0");
    EXPECT_EQ(row0->depth, 2u);
    ASSERT_EQ(row0->children.size(), 2u);
    EXPECT_EQ(row0->children[0].name, "rack0");  // Sorted.
    EXPECT_EQ(row0->children[1].name, "rack1");

    EXPECT_EQ(summary.find("dc0/nope"), nullptr);
    EXPECT_EQ(summary.find(""), &summary);  // "" names the node.
    EXPECT_TRUE(obs::jsonWellFormed(summary.toJson()));
}

TEST(RollupTree, RootAttachedMachinesWork)
{
    rollup::RollupTree tree;
    tree.update("", makeObservation("solo", 42.0, 0.01));
    EXPECT_EQ(tree.numMachines(), 1u);
    const auto summary = tree.aggregate();
    EXPECT_DOUBLE_EQ(summary.stats.watts, 42.0);
    ASSERT_EQ(summary.stats.worst.size(), 1u);
    EXPECT_EQ(summary.stats.worst[0].id, "solo");
}

/**
 * The acceptance criterion in miniature: one full aggregation pass
 * serializes to bit-identical JSON whether the top-level fan-out ran
 * on 1 thread or 8, and whatever order the updates arrived in.
 */
TEST(RollupTree, AggregateJsonBitIdenticalAcrossThreadCounts)
{
    FleetTopologyConfig config;
    config.machines = 600;
    config.seed = 11;
    const FleetTopology topology(config);

    const auto dump = [](const rollup::NodeSummary &node,
                         const auto &self) -> std::string {
        std::string out = node.toJson();
        out += '\n';
        for (const auto &child : node.children)
            out += self(child, self);
        return out;
    };

    const auto build = [&topology, &dump](size_t threads,
                                          bool reverse) {
        setGlobalThreadCount(threads);
        rollup::RollupTree tree;
        rollup::SyntheticRollupFeed feed(tree, topology);
        feed.tick(5);
        feed.tick(9);  // Later tick wins per machine.
        if (reverse) {
            // Re-feed tick 9 again: upserts are idempotent, so the
            // final state is unchanged.
            feed.tick(9);
        }
        const auto summary = tree.aggregate();
        return dump(summary, dump);
    };

    const std::string serial = build(1, false);
    const std::string threaded = build(8, true);
    setGlobalThreadCount(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, threaded);
}

TEST(LiveRollupFeed, JoinsFleetAndQualitySnapshotsById)
{
    rollup::RollupTree tree;
    rollup::LiveRollupFeed feed(tree);
    feed.place("m0", "dc0/row0/rack0/fleet0", "Core2");
    feed.place("m1", "dc0/row0/rack0/fleet1", "Xeon");
    // m2 has no placement: it must land under "unplaced".

    serve::FleetSnapshot fleet;
    for (int i = 0; i < 3; ++i) {
        serve::MachineSnapshot m;
        m.id = "m" + std::to_string(i);
        m.watts = 100.0 + i;
        m.samples = 60;
        m.residualSamples = (i == 1) ? 4 : 0;
        m.health = (i == 2) ? MachineHealth::Degraded
                            : MachineHealth::Healthy;
        m.quality = (i == 1) ? ModelQuality::Ok
                             : ModelQuality::Unknown;
        m.quarantined = (i == 2);
        m.dropped = i;
        fleet.machines.push_back(m);
    }

    monitor::QualitySnapshot quality;
    monitor::MachineQualityReport r;  // Only m1 has a verdict.
    r.id = "m1";
    r.quality = ModelQuality::Ok;
    r.windowRmseW = 1.25;
    r.rollingDre = 0.033;
    r.biasW = -0.4;
    r.referenceSamples = 4;
    quality.machines.push_back(r);

    feed.observe(fleet, quality);
    EXPECT_EQ(feed.observed(), 1u);
    EXPECT_EQ(tree.numMachines(), 3u);

    const auto summary = feed.aggregate();
    EXPECT_DOUBLE_EQ(summary.stats.watts, 303.0);
    EXPECT_EQ(summary.stats.quarantined, 1u);
    // Only m1 brought a finite DRE through the join.
    EXPECT_EQ(summary.stats.dre.count(), 1u);
    EXPECT_DOUBLE_EQ(summary.stats.dre.quantile(0.5), 0.033);

    const auto *fleet1 =
        summary.find("dc0/row0/rack0/fleet1");
    ASSERT_NE(fleet1, nullptr);
    ASSERT_EQ(fleet1->stats.platforms.count("Xeon"), 1u);
    EXPECT_EQ(fleet1->stats.platforms.at("Xeon").metered, 1u);

    const auto *unplaced = summary.find(rollup::kUnplacedGroup);
    ASSERT_NE(unplaced, nullptr);
    EXPECT_EQ(unplaced->stats.machines, 1u);
    ASSERT_EQ(unplaced->stats.platforms.count("unknown"), 1u);
}

TEST(JsonlRollupFeed, ReplaysFleetAndQualityRecordsLaterWins)
{
    TempPath path("chaos_test_rollup_replay.jsonl");
    {
        std::ofstream out(path.str());
        // Interleaved stream: fleet and quality halves of the same
        // machines, a metrics record to skip, and a later tick that
        // must win.
        out << "{\"type\": \"fleet\", \"tick\": 1, \"ts_ms\": 5, "
               "\"fleet\": {\"machines\": ["
               "{\"id\": \"m0\", \"watts\": 90.0, \"samples\": 60, "
               "\"residual_samples\": 4, \"health\": \"Healthy\", "
               "\"quality\": \"Ok\", \"quarantined\": false, "
               "\"dropped\": 0},"
               "{\"id\": \"m1\", \"watts\": 55.0, \"samples\": 60, "
               "\"residual_samples\": 0, \"health\": \"Degraded\", "
               "\"quality\": \"Unknown\", \"quarantined\": false, "
               "\"dropped\": 2}]}}\n";
        out << "{\"type\": \"metrics\", \"tick\": 1, \"ts_ms\": 5, "
               "\"metrics\": {}}\n";
        out << "{\"type\": \"quality\", \"tick\": 1, \"ts_ms\": 6, "
               "\"quality\": {\"machines\": ["
               "{\"id\": \"m0\", \"quality\": \"Ok\", "
               "\"reference_samples\": 4, \"window_rmse_w\": 2.0, "
               "\"rolling_dre\": 0.05, \"bias_w\": 0.1, "
               "\"drifted\": false},"
               "{\"id\": \"m1\", \"quality\": \"Unknown\", "
               "\"reference_samples\": 0, \"window_rmse_w\": 0.0, "
               "\"rolling_dre\": null, \"bias_w\": 0.0, "
               "\"drifted\": false}]}}\n";
        out << "{\"type\": \"fleet\", \"tick\": 2, \"ts_ms\": 7, "
               "\"fleet\": {\"machines\": ["
               "{\"id\": \"m0\", \"watts\": 110.0, \"samples\": 120, "
               "\"residual_samples\": 8, \"health\": \"Healthy\", "
               "\"quality\": \"Drifting\", \"quarantined\": true, "
               "\"dropped\": 0}]}}\n";
    }

    rollup::RollupTree tree;
    rollup::JsonlRollupFeed feed(tree);
    feed.place("m0", "dc0/fleet0", "Core2");
    feed.place("m1", "dc0/fleet1", "Atom");

    const rollup::JsonlReplayStats stats =
        feed.replayFile(path.str());
    EXPECT_EQ(stats.lines, 4u);
    EXPECT_EQ(stats.fleetRecords, 2u);
    EXPECT_EQ(stats.qualityRecords, 1u);
    EXPECT_EQ(stats.skipped, 1u);
    EXPECT_EQ(stats.lastTick, 2u);

    const auto summary = tree.aggregate();
    EXPECT_EQ(summary.stats.machines, 2u);
    // m0's tick-2 record won: 110 W, quarantined, Drifting — while
    // the quality half (DRE 0.05) from tick 1 is retained.
    EXPECT_DOUBLE_EQ(summary.stats.watts, 165.0);
    EXPECT_EQ(summary.stats.quarantined, 1u);
    EXPECT_EQ(summary.stats.qualityDrifting, 1u);
    EXPECT_EQ(summary.stats.dre.count(), 1u);
    EXPECT_DOUBLE_EQ(summary.stats.dre.quantile(0.5), 0.05);
    // m1's null rolling_dre parsed to NaN: no DRE point, no refs.
    const auto *fleet1 = summary.find("dc0/fleet1");
    ASSERT_NE(fleet1, nullptr);
    EXPECT_EQ(fleet1->stats.metered, 0u);
}

TEST(JsonlRollupFeed, RaisesOnMissingFileAndMalformedLine)
{
    rollup::RollupTree tree;
    rollup::JsonlRollupFeed feed(tree);
    EXPECT_THROW(feed.replayFile("/nonexistent/telemetry.jsonl"),
                 RecoverableError);

    TempPath path("chaos_test_rollup_malformed.jsonl");
    {
        std::ofstream out(path.str());
        out << "{\"type\": \"fleet\", \"tick\": 1, \"fleet\": "
               "{\"machines\": []}}\n";
        out << "{\"type\": \"fleet\", truncated\n";
    }
    EXPECT_THROW(feed.replayFile(path.str()), RecoverableError);
}

TEST(SyntheticRollupFeed, PushesTopologyWithGroundTruthPlatforms)
{
    FleetTopologyConfig config;
    config.machines = 200;
    config.meteredFraction = 1.0;  // Every machine earns a verdict.
    config.driftFraction = 0.2;
    config.seed = 3;
    const FleetTopology topology(config);

    rollup::RollupTree tree;
    rollup::SyntheticRollupFeed feed(tree, topology);
    const std::uint64_t late = 60;  // Well past every drift start.
    feed.tick(late);

    EXPECT_EQ(tree.numMachines(), 200u);
    const auto summary = tree.aggregate();
    EXPECT_EQ(summary.stats.machines, 200u);
    EXPECT_EQ(summary.stats.metered, 200u);
    EXPECT_GT(summary.stats.watts, 0.0);

    // With full metering and a late tick, detected drift equals the
    // generator's ground truth — the pooled-verdict oracle.
    std::uint64_t platformDrifting = 0;
    for (const auto &[name, slice] : summary.stats.platforms)
        platformDrifting += slice.drifting;
    EXPECT_EQ(platformDrifting, summary.stats.qualityDrifting);
    EXPECT_EQ(summary.stats.qualityDrifting,
              topology.driftTruthTotal());
}

} // namespace
} // namespace chaos
