/**
 * @file
 * Protocol-grade tests for the wire format (net/protocol.hpp): bitwise
 * round trips, arbitrary fragmentation, and an adversarial corpus —
 * truncations, oversized lengths, garbage streams, and >=10k mutated
 * frames, none of which may crash the decoder or yield an accepted
 * sample that differs from what was sent.
 */
#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "net/protocol.hpp"
#include "util/random.hpp"
#include "util/result.hpp"

namespace chaos::net {
namespace {

std::uint64_t
bits(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

SampleFrame
makeSample(Rng &rng, std::size_t rowLen)
{
    SampleFrame sample;
    sample.tick = rng.nextU64();
    sample.machineId =
        "machine" + std::to_string(rng.uniformInt(10000));
    sample.hasMetered = rng.uniformInt(2) == 0;
    sample.meteredW = sample.hasMetered
                          ? rng.uniform(-500.0, 500.0)
                          : std::numeric_limits<double>::quiet_NaN();
    sample.row.resize(rowLen);
    for (double &v : sample.row)
        v = rng.uniform(-1e6, 1e6);
    return sample;
}

TEST(Protocol, Crc32KnownAnswer)
{
    // The IEEE 802.3 check value for "123456789".
    const char *text = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(text), 9),
              0xCBF43926u);
}

TEST(Protocol, SampleRoundTripIsBitwise)
{
    Rng rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        SampleFrame sample = makeSample(rng, rng.uniformInt(64));
        // Exercise non-finite row values too: NaN payloads must
        // survive bit-for-bit, not collapse through text formatting.
        if (!sample.row.empty()) {
            sample.row[0] = std::numeric_limits<double>::quiet_NaN();
            if (sample.row.size() > 1)
                sample.row[1] =
                    -std::numeric_limits<double>::infinity();
        }

        std::vector<std::uint8_t> wire;
        const std::size_t n = encodeSample(sample, wire);
        EXPECT_EQ(n, wire.size());

        Frame decoded;
        const DecodeResult res =
            decodeFrame(wire.data(), wire.size(), decoded);
        ASSERT_EQ(res.status, DecodeStatus::Ok) << res.error;
        EXPECT_EQ(res.consumed, wire.size());
        ASSERT_EQ(decoded.type, FrameType::Sample);
        EXPECT_EQ(decoded.sample.tick, sample.tick);
        EXPECT_EQ(decoded.sample.machineId, sample.machineId);
        EXPECT_EQ(decoded.sample.hasMetered, sample.hasMetered);
        EXPECT_EQ(bits(decoded.sample.meteredW),
                  bits(sample.meteredW));
        ASSERT_EQ(decoded.sample.row.size(), sample.row.size());
        for (std::size_t i = 0; i < sample.row.size(); ++i)
            EXPECT_EQ(bits(decoded.sample.row[i]),
                      bits(sample.row[i]))
                << "row[" << i << "]";
    }
}

TEST(Protocol, CreditAndNackRoundTrip)
{
    CreditFrame credit;
    credit.acceptedTotal = 0xdeadbeefcafe1234ull;
    credit.rejectedTotal = 17;
    credit.granted = 4096;
    std::vector<std::uint8_t> wire;
    encodeCredit(credit, wire);

    Frame decoded;
    DecodeResult res = decodeFrame(wire.data(), wire.size(), decoded);
    ASSERT_EQ(res.status, DecodeStatus::Ok) << res.error;
    ASSERT_EQ(decoded.type, FrameType::Credit);
    EXPECT_EQ(decoded.credit.acceptedTotal, credit.acceptedTotal);
    EXPECT_EQ(decoded.credit.rejectedTotal, credit.rejectedTotal);
    EXPECT_EQ(decoded.credit.granted, credit.granted);

    NackFrame nack;
    nack.rejectedTotal = 99;
    nack.reason = NackReason::UnknownMachine;
    wire.clear();
    encodeNack(nack, wire);
    res = decodeFrame(wire.data(), wire.size(), decoded);
    ASSERT_EQ(res.status, DecodeStatus::Ok) << res.error;
    ASSERT_EQ(decoded.type, FrameType::Nack);
    EXPECT_EQ(decoded.nack.rejectedTotal, nack.rejectedTotal);
    EXPECT_EQ(decoded.nack.reason, nack.reason);
}

TEST(Protocol, EveryTruncationNeedsMore)
{
    Rng rng(11);
    const SampleFrame sample = makeSample(rng, 24);
    std::vector<std::uint8_t> wire;
    encodeSample(sample, wire);

    Frame out;
    for (std::size_t prefix = 0; prefix < wire.size(); ++prefix) {
        const DecodeResult res =
            decodeFrame(wire.data(), prefix, out);
        EXPECT_EQ(res.status, DecodeStatus::NeedMore)
            << "prefix " << prefix << " of " << wire.size();
    }
}

TEST(Protocol, SingleByteFragmentationDecodesAll)
{
    Rng rng(13);
    std::vector<std::uint8_t> wire;
    std::vector<SampleFrame> sent;
    for (int i = 0; i < 20; ++i) {
        sent.push_back(makeSample(rng, rng.uniformInt(32)));
        encodeSample(sent.back(), wire);
    }

    FrameReader reader;
    Frame frame;
    std::size_t decoded = 0;
    for (std::uint8_t byte : wire) {
        reader.append(&byte, 1);
        while (reader.next(frame) == DecodeStatus::Ok) {
            ASSERT_LT(decoded, sent.size());
            EXPECT_EQ(frame.sample.tick, sent[decoded].tick);
            EXPECT_EQ(frame.sample.machineId,
                      sent[decoded].machineId);
            ++decoded;
        }
        ASSERT_TRUE(reader.error().empty()) << reader.error();
    }
    EXPECT_EQ(decoded, sent.size());
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Protocol, InterleavedRandomChunksDecodeAll)
{
    Rng rng(17);
    std::vector<std::uint8_t> wire;
    std::size_t frames = 0;
    for (int i = 0; i < 50; ++i, ++frames)
        encodeSample(makeSample(rng, rng.uniformInt(48)), wire);

    FrameReader reader;
    Frame frame;
    std::size_t decoded = 0;
    std::size_t off = 0;
    while (off < wire.size()) {
        const std::size_t chunk = std::min<std::size_t>(
            1 + rng.uniformInt(97), wire.size() - off);
        reader.append(wire.data() + off, chunk);
        off += chunk;
        while (reader.next(frame) == DecodeStatus::Ok)
            ++decoded;
        ASSERT_TRUE(reader.error().empty()) << reader.error();
    }
    EXPECT_EQ(decoded, frames);
}

TEST(Protocol, FuzzMutatedFramesNeverAccepted)
{
    Rng rng(23);
    std::vector<std::uint8_t> wire;
    Frame out;
    int mutations = 0;
    while (mutations < 12000) {
        wire.clear();
        switch (rng.uniformInt(3)) {
        case 0:
            encodeSample(makeSample(rng, rng.uniformInt(32)), wire);
            break;
        case 1: {
            CreditFrame credit;
            credit.acceptedTotal = rng.nextU64();
            credit.rejectedTotal = rng.nextU64();
            credit.granted =
                static_cast<std::uint32_t>(rng.nextU64());
            encodeCredit(credit, wire);
            break;
        }
        default: {
            NackFrame nack;
            nack.rejectedTotal = rng.nextU64();
            nack.reason = NackReason::Backpressure;
            encodeNack(nack, wire);
            break;
        }
        }

        for (int m = 0; m < 8; ++m, ++mutations) {
            std::vector<std::uint8_t> corrupt = wire;
            const std::size_t pos = rng.uniformInt(corrupt.size());
            const std::uint8_t delta = static_cast<std::uint8_t>(
                1 + rng.uniformInt(255));
            corrupt[pos] = static_cast<std::uint8_t>(
                corrupt[pos] ^ delta);
            const DecodeResult res =
                decodeFrame(corrupt.data(), corrupt.size(), out);
            // A mutated frame may look like a prefix of a longer one
            // (length-field mutations) but must NEVER decode as Ok:
            // the checksum catches every content mutation.
            EXPECT_NE(res.status, DecodeStatus::Ok)
                << "mutation at byte " << pos << " xor "
                << static_cast<int>(delta) << " was accepted";
        }
    }
}

TEST(Protocol, GarbageStreamsErrorImmediately)
{
    Rng rng(29);
    Frame out;
    for (int iter = 0; iter < 2000; ++iter) {
        std::vector<std::uint8_t> junk(1 + rng.uniformInt(256));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.uniformInt(256));
        // Ensure it cannot be a valid stream start.
        if (junk[0] == 'C' || junk[0] == '{')
            junk[0] = 0xEE;
        FrameReader reader;
        reader.append(junk.data(), junk.size());
        EXPECT_EQ(reader.next(out), DecodeStatus::Error);
        EXPECT_FALSE(reader.error().empty());
        // Sticky: appending valid bytes afterwards cannot recover.
        std::vector<std::uint8_t> valid;
        encodeCredit(CreditFrame{}, valid);
        reader.append(valid.data(), valid.size());
        EXPECT_EQ(reader.next(out), DecodeStatus::Error);
    }
}

TEST(Protocol, OversizedLengthPrefixIsError)
{
    std::vector<std::uint8_t> wire;
    encodeCredit(CreditFrame{}, wire);
    // Patch the little-endian payload length (bytes 4..8) beyond the
    // cap; the decoder must refuse before buffering a "frame" that
    // large, whatever the checksum says.
    const std::uint32_t huge = kMaxPayloadLen + 1;
    std::memcpy(wire.data() + 4, &huge, sizeof(huge));
    Frame out;
    const DecodeResult res =
        decodeFrame(wire.data(), wire.size(), out);
    EXPECT_EQ(res.status, DecodeStatus::Error);
}

TEST(Protocol, OverlongMachineIdAndRowAreRejected)
{
    Rng rng(31);
    SampleFrame sample = makeSample(rng, 4);
    sample.machineId.assign(kMaxMachineIdLen + 1, 'x');
    std::vector<std::uint8_t> wire;
    EXPECT_THROW(encodeSample(sample, wire), RecoverableError);

    sample = makeSample(rng, 4);
    sample.row.assign(kMaxRowLen + 1, 0.0);
    wire.clear();
    EXPECT_THROW(encodeSample(sample, wire), RecoverableError);
}

TEST(Protocol, DecodeFrameOrRaiseContract)
{
    Rng rng(37);
    std::vector<std::uint8_t> wire;
    encodeSample(makeSample(rng, 8), wire);

    Frame out;
    std::size_t consumed = 0;
    // Prefix: false, no throw.
    EXPECT_FALSE(
        decodeFrameOrRaise(wire.data(), wire.size() - 1, out,
                           consumed));
    // Whole frame: true.
    EXPECT_TRUE(decodeFrameOrRaise(wire.data(), wire.size(), out,
                                   consumed));
    EXPECT_EQ(consumed, wire.size());
    // Corrupt frame: raises the library's recoverable error.
    wire[wire.size() / 2] ^= 0x5a;
    EXPECT_THROW(
        decodeFrameOrRaise(wire.data(), wire.size(), out, consumed),
        RecoverableError);
}

TEST(Protocol, JsonlRoundTrip)
{
    Rng rng(41);
    SampleFrame sample = makeSample(rng, 6);
    // JSONL carries tick as a JSON number (53-bit integer
    // precision); binary framing is the exact-u64 path.
    sample.tick %= 1ull << 53;
    sample.hasMetered = true;
    sample.meteredW = 123.25;

    Frame frame;
    frame.type = FrameType::Sample;
    frame.sample = sample;
    const std::string line = encodeJsonl(frame);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');

    Frame decoded;
    const DecodeResult res = decodeJsonlLine(
        line.substr(0, line.size() - 1), decoded);
    ASSERT_EQ(res.status, DecodeStatus::Ok) << res.error;
    ASSERT_EQ(decoded.type, FrameType::Sample);
    EXPECT_EQ(decoded.sample.tick, sample.tick);
    EXPECT_EQ(decoded.sample.machineId, sample.machineId);
    ASSERT_EQ(decoded.sample.row.size(), sample.row.size());
    for (std::size_t i = 0; i < sample.row.size(); ++i)
        EXPECT_DOUBLE_EQ(decoded.sample.row[i], sample.row[i]);

    // NaN row values travel as JSON null and come back NaN.
    sample.row[0] = std::numeric_limits<double>::quiet_NaN();
    frame.sample = sample;
    const std::string nanLine = encodeJsonl(frame);
    const DecodeResult nanRes = decodeJsonlLine(
        nanLine.substr(0, nanLine.size() - 1), decoded);
    ASSERT_EQ(nanRes.status, DecodeStatus::Ok) << nanRes.error;
    EXPECT_TRUE(std::isnan(decoded.sample.row[0]));
}

TEST(Protocol, MalformedJsonlLinesError)
{
    Frame out;
    for (const char *bad :
         {"{", "{}", "{\"type\": \"wat\"}", "not json at all",
          "{\"type\": \"sample\"}",
          "{\"type\": \"sample\", \"machine\": 3, \"tick\": 0, "
          "\"row\": []}"}) {
        const DecodeResult res = decodeJsonlLine(bad, out);
        EXPECT_EQ(res.status, DecodeStatus::Error) << bad;
    }
}

TEST(Protocol, JsonlReaderModeAndUnterminatedLineCap)
{
    // A stream starting with '{' commits the reader to JSONL.
    FrameReader reader;
    Frame frame;
    frame.type = FrameType::Credit;
    const std::string line = encodeJsonl(frame);
    Frame out;
    reader.append(
        reinterpret_cast<const std::uint8_t *>(line.data()),
        line.size());
    EXPECT_EQ(reader.next(out), DecodeStatus::Ok);
    EXPECT_TRUE(reader.jsonlMode());
    EXPECT_EQ(out.type, FrameType::Credit);

    // An endless unterminated line must hit the size cap, not grow
    // the buffer forever.
    FrameReader hog;
    std::vector<std::uint8_t> junk(kMaxPayloadLen + 2, 'a');
    junk[0] = '{';
    hog.append(junk.data(), junk.size());
    EXPECT_EQ(hog.next(out), DecodeStatus::Error);
}

TEST(Protocol, IntrospectAndSnapshotRoundTrip)
{
    IntrospectFrame ask;
    ask.seq = 0xfeedface12345678ull;
    std::vector<std::uint8_t> buf;
    encodeIntrospect(ask, buf);

    Frame out;
    std::size_t consumed = 0;
    ASSERT_TRUE(decodeFrameOrRaise(buf.data(), buf.size(), out,
                                   consumed));
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(out.type, FrameType::Introspect);
    EXPECT_EQ(out.introspect.seq, ask.seq);

    SnapshotFrame reply;
    reply.seq = ask.seq;
    reply.json = "{\"type\": \"chaos_top\", \"fleet\": {\"w\": 1.5},"
                 " \"stage_latency\": {\"e2e_us\": {\"p99\": 42}}}";
    buf.clear();
    encodeSnapshot(reply, buf);
    ASSERT_TRUE(decodeFrameOrRaise(buf.data(), buf.size(), out,
                                   consumed));
    EXPECT_EQ(consumed, buf.size());
    ASSERT_EQ(out.type, FrameType::Snapshot);
    EXPECT_EQ(out.snapshot.seq, reply.seq);
    EXPECT_EQ(out.snapshot.json, reply.json);
}

TEST(Protocol, SnapshotSurvivesSingleByteFragmentation)
{
    SnapshotFrame reply;
    reply.seq = 7;
    reply.json = "{\"nested\": {\"deep\": [1, 2, 3]}, "
                 "\"text\": \"quoted \\\"stuff\\\" here\"}";
    std::vector<std::uint8_t> buf;
    encodeIntrospect(IntrospectFrame{3}, buf);
    encodeSnapshot(reply, buf);

    FrameReader reader;
    Frame out;
    int decoded = 0;
    for (std::uint8_t byte : buf) {
        reader.append(&byte, 1);
        while (reader.next(out) == DecodeStatus::Ok) {
            ++decoded;
            if (out.type == FrameType::Snapshot) {
                EXPECT_EQ(out.snapshot.seq, reply.seq);
                EXPECT_EQ(out.snapshot.json, reply.json);
            }
        }
    }
    EXPECT_EQ(decoded, 2);
}

TEST(Protocol, IntrospectAndSnapshotJsonlRoundTrip)
{
    Frame frame;
    frame.type = FrameType::Introspect;
    frame.introspect.seq = 99;
    Frame out;
    std::string line = encodeJsonl(frame);
    ASSERT_EQ(decodeJsonlLine(line.substr(0, line.size() - 1), out)
                  .status,
              DecodeStatus::Ok);
    ASSERT_EQ(out.type, FrameType::Introspect);
    EXPECT_EQ(out.introspect.seq, 99u);

    // The snapshot payload travels as an escaped string on the JSONL
    // path; quotes and newlines inside it must survive.
    frame.type = FrameType::Snapshot;
    frame.snapshot.seq = 99;
    frame.snapshot.json =
        "{\"msg\": \"line one\\nline two \\\"quoted\\\"\"}";
    line = encodeJsonl(frame);
    const DecodeResult res =
        decodeJsonlLine(line.substr(0, line.size() - 1), out);
    ASSERT_EQ(res.status, DecodeStatus::Ok) << res.error;
    ASSERT_EQ(out.type, FrameType::Snapshot);
    EXPECT_EQ(out.snapshot.seq, 99u);
    EXPECT_EQ(out.snapshot.json, frame.snapshot.json);
}

TEST(Protocol, SnapshotEncodeRejectsBadPayloads)
{
    std::vector<std::uint8_t> buf;
    SnapshotFrame bad;
    bad.seq = 1;
    bad.json = "{\"unterminated\": ";
    EXPECT_RAISES(encodeSnapshot(bad, buf),
                  "not well-formed JSON");

    // A payload that would overflow the frame cap is a caller bug
    // surfaced at encode time, never a giant frame on the wire.
    SnapshotFrame huge;
    huge.seq = 1;
    huge.json = "{\"pad\": \"" +
                std::string(kMaxPayloadLen, 'x') + "\"}";
    EXPECT_RAISES(encodeSnapshot(huge, buf), "size cap");
}

TEST(Protocol, SnapshotDecodeRejectsNonJsonPayload)
{
    // encodeSnapshot refuses bad payloads, so hand-corrupt a valid
    // frame and re-seal its CRC: the decoder must then reject on the
    // JSON check, not the checksum.
    SnapshotFrame ok;
    ok.seq = 5;
    ok.json = "{\"a\": 1}";
    std::vector<std::uint8_t> buf;
    encodeSnapshot(ok, buf);
    buf[buf.size() - ok.json.size()] = '?'; // "{" -> "?"
    const std::size_t payloadLen = buf.size() - kHeaderSize;
    std::uint32_t crc = crc32(buf.data() + 2, 6);
    crc = crc32(buf.data() + kHeaderSize, payloadLen, crc);
    for (int i = 0; i < 4; ++i)
        buf[8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(crc >> (8 * i));

    Frame out;
    const DecodeResult res = decodeFrame(buf.data(), buf.size(), out);
    ASSERT_EQ(res.status, DecodeStatus::Error);
    EXPECT_NE(res.error.find("not JSON"), std::string::npos)
        << res.error;

    const DecodeResult jres = decodeJsonlLine(
        "{\"type\": \"snapshot\", \"seq\": 2, \"json\": \"not json\"}",
        out);
    EXPECT_EQ(jres.status, DecodeStatus::Error);
    EXPECT_NE(jres.error.find("not JSON"), std::string::npos)
        << jres.error;
}

} // namespace
} // namespace chaos::net
