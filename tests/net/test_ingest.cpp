/**
 * @file
 * Loopback integration tests for the ingest server: end-to-end
 * accounting (sent == accepted + rejected, accepted == processed),
 * explicit backpressure NACKs with per-connection attribution,
 * corrupt-stream connection drops that leave the server serving, the
 * JSONL fallback framing, and the multi-client soak whose snapshot
 * must be bit-identical to an in-process replay of the same samples.
 */
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unistd.h>

#include <gtest/gtest.h>

#include "net/client.hpp"
#include "net/ingest_server.hpp"
#include "net/loadgen.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/result.hpp"

#include "../serve/serve_support.hpp"

namespace chaos::net {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

/** A fleet of @p machines machine0..N-1 sharing one test model. */
std::unique_ptr<serve::FleetServer>
makeFleet(std::size_t machines, serve::FleetServerConfig config = {})
{
    auto server = std::make_unique<serve::FleetServer>(config);
    const MachinePowerModel model = makeTestModel(3);
    for (std::size_t i = 0; i < machines; ++i)
        server->addMachine("machine" + std::to_string(i), model);
    return server;
}

std::uint64_t
backpressureEvents()
{
    std::uint64_t n = 0;
    for (const obs::Event &event :
         obs::EventLog::instance().snapshot()) {
        if (event.kind == obs::EventKind::Backpressure)
            n += event.count;
    }
    return n;
}

std::uint64_t
connectionDropEvents()
{
    std::uint64_t n = 0;
    for (const obs::Event &event :
         obs::EventLog::instance().snapshot()) {
        if (event.kind == obs::EventKind::ConnectionDrop)
            n += event.count;
    }
    return n;
}

TEST(Ingest, SingleClientExactAccounting)
{
    auto fleet = makeFleet(2);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    IngestClientConfig cfg;
    cfg.port = ingest.port();
    cfg.window = 64;
    IngestClient client(cfg);
    client.connect();

    const std::vector<double> row = catalogRow(40.0, 60.0);
    const std::size_t samples = 500;
    for (std::size_t i = 0; i < samples; ++i)
        client.send(i, i % 2 == 0 ? "machine0" : "machine1",
                    row.data(), row.size(),
                    i % 10 == 0 ? 120.0 : std::numeric_limits<
                                              double>::quiet_NaN());
    ASSERT_TRUE(client.drain());
    EXPECT_EQ(client.sent(), samples);
    EXPECT_EQ(client.accepted(), samples);
    EXPECT_EQ(client.rejected(), 0u);

    fleet->waitIdle();
    ingest.stop();
    fleet->stop();

    // Network accounting must agree with the serving loop's.
    EXPECT_EQ(fleet->submitted(), samples);
    EXPECT_EQ(fleet->processed(), samples);
    EXPECT_EQ(fleet->dropped(), 0u);

    const IngestStats stats = ingest.stats();
    EXPECT_EQ(stats.connectionsAccepted, 1u);
    EXPECT_EQ(stats.samplesAccepted, samples);
    EXPECT_EQ(stats.badFrames, 0u);
    ASSERT_EQ(stats.connections.size(), 1u);
    EXPECT_EQ(stats.connections[0].samplesAccepted, samples);
    EXPECT_FALSE(stats.connections[0].open);

    const serve::FleetSnapshot snap = fleet->snapshot();
    EXPECT_EQ(snap.samplesProcessed, samples);
    std::uint64_t perMachine = 0;
    for (const auto &machine : snap.machines)
        perMachine += machine.samples;
    EXPECT_EQ(perMachine, samples);
}

TEST(Ingest, BackpressureNacksInsteadOfSilentDrop)
{
    // Tiny queues and NO drainer: the queues fill and stay full, so
    // overflow samples must come back as explicit rejections.
    serve::FleetServerConfig config;
    config.numShards = 1;
    config.queueCapacity = 16;
    auto fleet = makeFleet(1, config);
    ChaosIngestServer ingest(*fleet);
    ingest.start();

    const std::uint64_t backpressureBefore = backpressureEvents();
    auto &rejectedMetric =
        obs::Registry::instance().counter("chaos.net.rejected",
                                          obs::Stability::Scheduling);
    const std::uint64_t rejectedBefore = rejectedMetric.value();

    IngestClientConfig cfg;
    cfg.port = ingest.port();
    cfg.window = 8; // Window under creditBatch: idle flush acks it.
    IngestClient client(cfg);
    client.connect();

    const std::vector<double> row = catalogRow(10.0, 20.0);
    const std::size_t samples = 200;
    for (std::size_t i = 0; i < samples; ++i)
        client.send(i, "machine0", row.data(), row.size());
    ASSERT_TRUE(client.drain());

    // Nothing was lost silently: every sample is accounted for, the
    // overflow was rejected (reject-newest), and the client heard
    // about it via backpressure NACKs.
    EXPECT_EQ(client.accepted() + client.rejected(), samples);
    EXPECT_EQ(client.accepted(), config.queueCapacity);
    EXPECT_EQ(client.rejected(),
              samples - config.queueCapacity);
    EXPECT_TRUE(client.sawBackpressure());

    // Attribution: the connection's stats carry its rejections.
    const IngestStats stats = ingest.stats();
    ASSERT_EQ(stats.connections.size(), 1u);
    EXPECT_EQ(stats.connections[0].rejectedBackpressure,
              samples - config.queueCapacity);
    EXPECT_EQ(stats.rejectedBackpressure,
              samples - config.queueCapacity);

    // Observability: the metric moved and an event fired.
    EXPECT_GE(rejectedMetric.value() - rejectedBefore,
              samples - config.queueCapacity);
    EXPECT_GT(backpressureEvents(), backpressureBefore);

    // The server's own accounting never saw the refused samples.
    EXPECT_EQ(fleet->submitted(), config.queueCapacity);
    EXPECT_EQ(fleet->dropped(), 0u);

    client.close();
    ingest.stop();
}

TEST(Ingest, UnknownMachineNackKeepsConnectionOpen)
{
    auto fleet = makeFleet(1);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    IngestClientConfig cfg;
    cfg.port = ingest.port();
    cfg.window = 4;
    IngestClient client(cfg);
    client.connect();

    const std::vector<double> row = catalogRow(5.0, 5.0);
    client.send(0, "no-such-machine", row.data(), row.size());
    client.send(1, "machine0", row.data(), row.size());
    ASSERT_TRUE(client.drain());

    EXPECT_EQ(client.accepted(), 1u);
    EXPECT_EQ(client.rejected(), 1u);
    EXPECT_EQ(client.nacks(NackReason::UnknownMachine), 1u);

    const IngestStats stats = ingest.stats();
    ASSERT_EQ(stats.connections.size(), 1u);
    EXPECT_EQ(stats.connections[0].rejectedUnknown, 1u);
    EXPECT_TRUE(stats.connections[0].open);

    fleet->waitIdle();
    ingest.stop();
    fleet->stop();
}

TEST(Ingest, GarbageStreamDropsConnectionServerKeepsServing)
{
    auto fleet = makeFleet(1);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    const std::uint64_t dropsBefore = connectionDropEvents();

    // A peer that speaks neither framing gets dropped...
    {
        OwnedFd raw = connectTcp("127.0.0.1", ingest.port());
        const char junk[] = "GET / HTTP/1.1\r\n\r\n";
        ASSERT_GT(::write(raw.fd(), junk, sizeof(junk) - 1), 0);
        // Wait for the server to close our end.
        char byte;
        ssize_t n;
        do {
            n = ::read(raw.fd(), &byte, 1);
        } while (n > 0 || (n < 0 && errno == EINTR));
        EXPECT_EQ(n, 0);
    }

    // ...with an event and accounting...
    for (int i = 0; i < 100 && connectionDropEvents() == dropsBefore;
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GT(connectionDropEvents(), dropsBefore);
    IngestStats stats = ingest.stats();
    EXPECT_EQ(stats.connectionsDropped, 1u);
    ASSERT_GE(stats.connections.size(), 1u);
    EXPECT_FALSE(stats.connections[0].open);
    EXPECT_FALSE(stats.connections[0].closeReason.empty());

    // ...and the server keeps serving well-formed clients.
    IngestClientConfig cfg;
    cfg.port = ingest.port();
    IngestClient client(cfg);
    client.connect();
    const std::vector<double> row = catalogRow(30.0, 30.0);
    for (std::size_t i = 0; i < 50; ++i)
        client.send(i, "machine0", row.data(), row.size());
    ASSERT_TRUE(client.drain());
    EXPECT_EQ(client.accepted(), 50u);

    fleet->waitIdle();
    ingest.stop();
    fleet->stop();
}

TEST(Ingest, CorruptBinaryFrameDropsConnection)
{
    auto fleet = makeFleet(1);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    // A valid frame followed by a corrupted one: the first sample is
    // accepted, the corrupt frame kills the connection, and no
    // corrupt sample ever reaches the fleet.
    SampleFrame sample;
    sample.tick = 1;
    sample.machineId = "machine0";
    sample.row = catalogRow(50.0, 50.0);
    std::vector<std::uint8_t> wire;
    encodeSample(sample, wire);
    const std::size_t first = wire.size();
    encodeSample(sample, wire);
    wire[first + 20] ^= 0xff; // Corrupt the second frame's payload.

    OwnedFd raw = connectTcp("127.0.0.1", ingest.port());
    std::size_t off = 0;
    while (off < wire.size()) {
        const ssize_t n =
            ::write(raw.fd(), wire.data() + off, wire.size() - off);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
    // The server closes on the corrupt frame (possibly after a
    // best-effort NACK, which we are free to ignore).
    char buf[256];
    ssize_t n;
    do {
        n = ::read(raw.fd(), buf, sizeof(buf));
    } while (n > 0 || (n < 0 && errno == EINTR));
    EXPECT_EQ(n, 0);

    fleet->waitIdle();
    ingest.stop();
    fleet->stop();

    EXPECT_EQ(fleet->processed(), 1u);
    const IngestStats stats = ingest.stats();
    EXPECT_EQ(stats.samplesAccepted, 1u);
    EXPECT_EQ(stats.badFrames, 1u);
    EXPECT_EQ(stats.connectionsDropped, 1u);
}

TEST(Ingest, JsonlClientRoundTrips)
{
    auto fleet = makeFleet(2);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    IngestClientConfig cfg;
    cfg.port = ingest.port();
    cfg.jsonl = true;
    cfg.window = 16;
    IngestClient client(cfg);
    client.connect();

    const std::vector<double> row = catalogRow(25.0, 75.0);
    for (std::size_t i = 0; i < 120; ++i)
        client.send(i, "machine" + std::to_string(i % 2), row.data(),
                    row.size());
    ASSERT_TRUE(client.drain());
    EXPECT_EQ(client.accepted(), 120u);

    fleet->waitIdle();
    ingest.stop();
    fleet->stop();
    EXPECT_EQ(fleet->processed(), 120u);

    const IngestStats stats = ingest.stats();
    ASSERT_EQ(stats.connections.size(), 1u);
    EXPECT_TRUE(stats.connections[0].jsonl);
}

TEST(Ingest, MultiClientSoakMatchesInProcessReplayBitwise)
{
    // One connection per machine (exclusive mode): each machine sees
    // its samples in one connection's deterministic order, so an
    // in-process replay of the same rows must land on bit-identical
    // per-machine estimator state.
    const std::size_t machines = 6;
    const std::size_t samplesPerConn = 400;

    LoadGenConfig loadCfg;
    loadCfg.connections = machines;
    loadCfg.samplesPerConnection = samplesPerConn;
    loadCfg.exclusiveMachines = true;
    loadCfg.meteredEvery = 7;
    loadCfg.rowSize = CounterCatalog::instance().size();
    loadCfg.seed = 99;
    for (std::size_t i = 0; i < machines; ++i)
        loadCfg.machineIds.push_back("machine" + std::to_string(i));

    serve::FleetSnapshot netSnap;
    {
        auto fleet = makeFleet(machines);
        ChaosIngestServer ingest(*fleet);
        ingest.start();
        fleet->start();

        loadCfg.port = ingest.port();
        LoadGenerator generator(loadCfg);
        const LoadGenReport report = generator.run();
        ASSERT_EQ(report.connectionsFailed, 0u)
            << report.firstError;
        ASSERT_EQ(report.sent, machines * samplesPerConn);
        ASSERT_EQ(report.accepted + report.rejected, report.sent);
        ASSERT_EQ(report.rejected, 0u);

        fleet->waitIdle();
        ingest.stop();
        fleet->stop();
        EXPECT_EQ(fleet->processed(), report.accepted);
        netSnap = fleet->snapshot();
    }

    // In-process replay of the exact same samples.
    auto fleet = makeFleet(machines);
    LoadGenerator verifier(loadCfg);
    std::vector<double> row;
    for (std::size_t conn = 0; conn < machines; ++conn) {
        serve::MachineEntry *entry =
            fleet->machine(verifier.machineFor(conn, 0));
        ASSERT_NE(entry, nullptr);
        for (std::size_t i = 0; i < samplesPerConn; ++i) {
            verifier.fillRow(conn, i, row);
            fleet->submitTo(*entry, row.data(), row.size(),
                            verifier.meteredFor(conn, i));
        }
    }
    while (fleet->drainOnce() > 0) {
    }
    const serve::FleetSnapshot replaySnap = fleet->snapshot();

    ASSERT_EQ(netSnap.machines.size(), replaySnap.machines.size());
    EXPECT_EQ(netSnap.samplesProcessed, replaySnap.samplesProcessed);
    for (std::size_t i = 0; i < netSnap.machines.size(); ++i) {
        const auto &a = netSnap.machines[i];
        const auto &b = replaySnap.machines[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.samples, b.samples) << a.id;
        // Bit-identical, not approximately equal: the network path
        // must not reorder, rescale, or lossily re-encode samples.
        EXPECT_EQ(std::memcmp(&a.watts, &b.watts, sizeof(double)), 0)
            << a.id << ": " << a.watts << " vs " << b.watts;
        EXPECT_EQ(std::memcmp(&a.meanResidualW, &b.meanResidualW,
                              sizeof(double)),
                  0)
            << a.id;
        EXPECT_EQ(a.residualSamples, b.residualSamples) << a.id;
    }
}

TEST(Ingest, StatsJsonIsWellFormed)
{
    auto fleet = makeFleet(1);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    IngestClientConfig cfg;
    cfg.port = ingest.port();
    IngestClient client(cfg);
    client.connect();
    const std::vector<double> row = catalogRow(1.0, 2.0);
    client.send(0, "machine0", row.data(), row.size());
    ASSERT_TRUE(client.drain());

    fleet->waitIdle();
    ingest.stop();
    fleet->stop();

    obs::JsonValue parsed;
    ASSERT_TRUE(obs::jsonParse(ingest.stats().toJson(), parsed));
}

TEST(Ingest, IntrospectServesValidatedTopSnapshot)
{
    auto fleet = makeFleet(2);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    // Push a few samples first so the snapshot reflects live traffic.
    IngestClientConfig cfg;
    cfg.port = ingest.port();
    IngestClient client(cfg);
    client.connect();
    const std::vector<double> row = catalogRow(1.0, 2.0);
    for (std::uint64_t tick = 0; tick < 8; ++tick)
        client.send(tick, "machine0", row.data(), row.size());
    ASSERT_TRUE(client.drain());
    fleet->waitIdle();

    const std::string json =
        fetchSnapshot("127.0.0.1", ingest.port(), /*seq=*/42);
    obs::JsonValue snap;
    ASSERT_TRUE(obs::jsonParse(json, snap)) << json;
    ASSERT_TRUE(snap.isObject());
    const obs::JsonValue *type = snap.find("type");
    ASSERT_NE(type, nullptr);
    EXPECT_EQ(type->asString(), "chaos_top");
    for (const char *key :
         {"ts_ms", "fleet", "ingest", "stage_latency", "flight"})
        EXPECT_NE(snap.find(key), nullptr) << key;

    // The fleet section must carry the traffic we just pushed.
    const obs::JsonValue *fleetJson = snap.find("fleet");
    ASSERT_NE(fleetJson, nullptr);
    const obs::JsonValue *processed = fleetJson->find("processed");
    ASSERT_NE(processed, nullptr);
    EXPECT_EQ(processed->asNumber(), 8.0);

    // A second poll works on a fresh connection, and the server
    // counts both.
    const std::string again =
        fetchSnapshot("127.0.0.1", ingest.port(), /*seq=*/43);
    ASSERT_TRUE(obs::jsonParse(again, snap));

    ingest.stop();
    fleet->stop();
    EXPECT_EQ(ingest.stats().introspectsServed, 2u);

    obs::JsonValue statsJson;
    ASSERT_TRUE(obs::jsonParse(ingest.stats().toJson(), statsJson));
    const obs::JsonValue *served =
        statsJson.find("introspects_served");
    ASSERT_NE(served, nullptr);
    EXPECT_EQ(served->asNumber(), 2.0);
}

TEST(Ingest, StopWhileClientsConnectedIsClean)
{
    auto fleet = makeFleet(1);
    ChaosIngestServer ingest(*fleet);
    ingest.start();
    fleet->start();

    IngestClientConfig cfg;
    cfg.port = ingest.port();
    IngestClient client(cfg);
    client.connect();
    const std::vector<double> row = catalogRow(9.0, 9.0);
    client.send(0, "machine0", row.data(), row.size());

    ingest.stop(); // Client still connected: must not hang or crash.
    fleet->stop();
    EXPECT_FALSE(ingest.running());
}

} // namespace
} // namespace chaos::net
