/**
 * @file
 * LoadGenerator tests: deterministic row synthesis (what the soak
 * verifier depends on), machine targeting modes, pacing, report
 * aggregation against a live server, and graceful handling of a dead
 * target.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "net/ingest_server.hpp"
#include "net/loadgen.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"
#include "util/result.hpp"

#include "../serve/serve_support.hpp"

namespace chaos::net {
namespace {

using serve_testing::makeTestModel;

LoadGenConfig
baseConfig()
{
    LoadGenConfig cfg;
    cfg.machineIds = {"machine0", "machine1", "machine2"};
    cfg.rowSize = 8;
    cfg.samplesPerConnection = 10;
    cfg.connections = 2;
    return cfg;
}

TEST(LoadGen, RowSynthesisIsDeterministicPerSeed)
{
    const LoadGenConfig cfg = baseConfig();
    LoadGenerator a(cfg), b(cfg);
    std::vector<double> rowA, rowB;
    for (std::size_t conn = 0; conn < 3; ++conn) {
        for (std::size_t i = 0; i < 20; ++i) {
            a.fillRow(conn, i, rowA);
            b.fillRow(conn, i, rowB);
            EXPECT_EQ(rowA, rowB);
            const double ma = a.meteredFor(conn, i);
            const double mb = b.meteredFor(conn, i);
            EXPECT_TRUE((std::isnan(ma) && std::isnan(mb)) ||
                        ma == mb)
                << "conn " << conn << " i " << i;
        }
    }

    LoadGenConfig other = cfg;
    other.seed = cfg.seed + 1;
    LoadGenerator c(other);
    std::vector<double> rowC;
    a.fillRow(0, 0, rowA);
    c.fillRow(0, 0, rowC);
    EXPECT_NE(rowA, rowC);

    // Values are valid utilization-style inputs.
    for (double v : rowA) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 100.0);
    }
}

TEST(LoadGen, MachineTargetingModes)
{
    LoadGenConfig cfg = baseConfig();
    LoadGenerator roundRobin(cfg);
    // Default: every connection cycles through all machines.
    EXPECT_EQ(roundRobin.machineFor(0, 0), "machine0");
    EXPECT_EQ(roundRobin.machineFor(0, 1), "machine1");
    EXPECT_EQ(roundRobin.machineFor(1, 0), "machine1");
    EXPECT_EQ(roundRobin.machineFor(1, 5), "machine0");

    cfg.exclusiveMachines = true;
    LoadGenerator exclusive(cfg);
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_EQ(exclusive.machineFor(0, i), "machine0");
        EXPECT_EQ(exclusive.machineFor(1, i), "machine1");
        EXPECT_EQ(exclusive.machineFor(4, i), "machine1");
    }
}

TEST(LoadGen, MeteredEveryAttachesPeriodicReadings)
{
    LoadGenConfig cfg = baseConfig();
    cfg.meteredEvery = 4;
    LoadGenerator gen(cfg);
    for (std::size_t i = 0; i < 16; ++i) {
        const double metered = gen.meteredFor(0, i);
        if (i % 4 == 0) {
            EXPECT_FALSE(std::isnan(metered)) << i;
            EXPECT_GE(metered, 0.0);
            EXPECT_LT(metered, 200.0);
        } else {
            EXPECT_TRUE(std::isnan(metered)) << i;
        }
    }
}

TEST(LoadGen, RunAgainstLiveServerAggregatesExactly)
{
    serve::FleetServer fleet;
    const MachinePowerModel model = makeTestModel(3);
    for (int i = 0; i < 3; ++i)
        fleet.addMachine("machine" + std::to_string(i), model);
    ChaosIngestServer ingest(fleet);
    ingest.start();
    fleet.start();

    LoadGenConfig cfg = baseConfig();
    cfg.port = ingest.port();
    cfg.connections = 4;
    cfg.samplesPerConnection = 250;
    cfg.rowSize = CounterCatalog::instance().size();
    cfg.workers = 2;
    LoadGenerator gen(cfg);
    const LoadGenReport report = gen.run();

    EXPECT_EQ(report.connectionsFailed, 0u) << report.firstError;
    EXPECT_EQ(report.sent, 4u * 250u);
    EXPECT_EQ(report.accepted + report.rejected, report.sent);
    EXPECT_GT(report.elapsedSec, 0.0);
    EXPECT_GT(report.sentPerSec, 0.0);
    EXPECT_GE(report.p99LatencyMs, report.p50LatencyMs);
    EXPECT_GE(report.maxLatencyMs, report.p99LatencyMs);

    fleet.waitIdle();
    ingest.stop();
    fleet.stop();
    EXPECT_EQ(fleet.processed(), report.accepted);

    obs::JsonValue parsed;
    EXPECT_TRUE(obs::jsonParse(report.toJson(), parsed));
}

TEST(LoadGen, PacedRateStretchesTheRun)
{
    serve::FleetServer fleet;
    fleet.addMachine("machine0", makeTestModel(3));
    ChaosIngestServer ingest(fleet);
    ingest.start();
    fleet.start();

    LoadGenConfig cfg = baseConfig();
    cfg.machineIds = {"machine0"};
    cfg.port = ingest.port();
    cfg.connections = 1;
    cfg.samplesPerConnection = 20;
    cfg.ratePerConnection = 100.0; // 20 samples @ 100/s >= ~190 ms.
    cfg.rowSize = CounterCatalog::instance().size();
    LoadGenerator gen(cfg);
    const LoadGenReport report = gen.run();

    EXPECT_EQ(report.connectionsFailed, 0u) << report.firstError;
    EXPECT_GE(report.elapsedSec, 0.15);

    fleet.waitIdle();
    ingest.stop();
    fleet.stop();
}

TEST(LoadGen, DeadTargetFailsGracefully)
{
    // Grab an ephemeral port and close it again: nothing listens.
    std::uint16_t deadPort;
    {
        auto [sock, port] = listenTcp("127.0.0.1", 0);
        deadPort = port;
    }

    LoadGenConfig cfg = baseConfig();
    cfg.port = deadPort;
    cfg.connections = 3;
    LoadGenerator gen(cfg);
    const LoadGenReport report = gen.run();
    EXPECT_EQ(report.connectionsFailed, 3u);
    EXPECT_EQ(report.accepted, 0u);
    EXPECT_FALSE(report.firstError.empty());
}

TEST(LoadGen, NoMachineIdsRaises)
{
    LoadGenConfig cfg = baseConfig();
    cfg.machineIds.clear();
    LoadGenerator gen(cfg);
    EXPECT_THROW(gen.run(), RecoverableError);
}

} // namespace
} // namespace chaos::net
