/**
 * @file
 * End-to-end integration checks: the paper's qualitative claims on a
 * reduced-scale campaign. These are the repository's regression tests
 * for the *shapes* the benches reproduce at full scale.
 */
#include <gtest/gtest.h>

#include "core/capping.hpp"
#include "core/chaos.hpp"
#include "core/model_store.hpp"
#include "stats/metrics.hpp"
#include "workloads/standard_workloads.hpp"

namespace chaos {
namespace {

CampaignConfig
integrationConfig(uint64_t seed)
{
    CampaignConfig config;
    config.numMachines = 3;
    config.runsPerWorkload = 3;
    config.seed = seed;
    config.run.durationScale = 0.4;
    config.evaluation.folds = 3;
    return config;
}

/** Shared Athlon campaign (DVFS desktop: strong nonlinearity). */
const ClusterCampaign &
athlonCampaign()
{
    static const ClusterCampaign campaign =
        runClusterCampaign(MachineClass::Athlon,
                           integrationConfig(31415));
    return campaign;
}

TEST(EndToEnd, BestModelsStayUnderThePaperTwelvePercentBound)
{
    const auto &campaign = athlonCampaign();
    const auto config = integrationConfig(31415);
    const std::vector<FeatureSet> sets = {
        cpuOnlyFeatureSet(), clusterFeatureSet(campaign.selection)};
    const auto sweeps = sweepWorkloads(
        campaign.data, sets, allModelTypes(), campaign.envelopes,
        config.evaluation);
    for (const auto &sweep : sweeps) {
        const SweepCell *best = sweep.best();
        ASSERT_NE(best, nullptr) << sweep.workload;
        EXPECT_LT(best->outcome.avgDre, 0.12) << sweep.workload;
    }
}

TEST(EndToEnd, NonlinearTechniquesBeatLinearOnDvfsPlatform)
{
    const auto &campaign = athlonCampaign();
    const auto config = integrationConfig(31415);
    const FeatureSet cluster_set =
        clusterFeatureSet(campaign.selection);

    const auto linear = evaluateTechnique(
        campaign.data, cpuOnlyFeatureSet(), ModelType::Linear,
        campaign.envelopes, config.evaluation);
    const auto quadratic = evaluateTechnique(
        campaign.data, cluster_set, ModelType::Quadratic,
        campaign.envelopes, config.evaluation);
    ASSERT_TRUE(linear.valid);
    ASSERT_TRUE(quadratic.valid);
    EXPECT_GT(linear.avgDre, quadratic.avgDre);
}

TEST(EndToEnd, MedianRelativeErrorInPaperBand)
{
    // Paper: median relative errors of 0.5-2.5% for the best models.
    const auto &campaign = athlonCampaign();
    const auto config = integrationConfig(31415);
    const auto outcome = evaluateTechnique(
        campaign.data, clusterFeatureSet(campaign.selection),
        ModelType::Quadratic, campaign.envelopes, config.evaluation);
    ASSERT_TRUE(outcome.valid);
    EXPECT_LT(outcome.medianRelErr, 0.035);
    EXPECT_GT(outcome.medianRelErr, 0.001);
}

TEST(EndToEnd, DeployedModelTracksAnUnseenClusterRealization)
{
    const auto &campaign = athlonCampaign();
    const auto config = integrationConfig(31415);
    const MachinePowerModel model =
        fitDefaultModel(campaign, config);

    Cluster fresh = Cluster::homogeneous(MachineClass::Athlon, 2,
                                         271828);
    WordCountWorkload workload;
    const RunResult run =
        runWorkload(fresh, workload, 4321, 0, config.run);

    std::vector<double> estimated, metered;
    for (const auto &records : run.machineRecords) {
        for (const auto &record : records) {
            estimated.push_back(
                model.predictFromCatalogRow(record.counters));
            metered.push_back(record.measuredPowerW);
        }
    }
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    const double dre = dynamicRangeError(
        estimated, metered, spec.idlePowerW, spec.maxPowerW);
    EXPECT_LT(dre, 0.12);
}

TEST(EndToEnd, PersistedModelSurvivesDeployment)
{
    const auto &campaign = athlonCampaign();
    const auto config = integrationConfig(31415);
    const MachinePowerModel model =
        fitDefaultModel(campaign, config);

    std::stringstream buffer;
    saveMachineModel(buffer, model);
    const MachinePowerModel reloaded = loadMachineModel(buffer);

    const auto row = campaign.data.features().row(42);
    EXPECT_DOUBLE_EQ(reloaded.predictFromCatalogRow(row),
                     model.predictFromCatalogRow(row));
}

TEST(EndToEnd, CappingGuardBandFromDeployedModelIsUsable)
{
    const auto &campaign = athlonCampaign();
    const auto config = integrationConfig(31415);
    const MachinePowerModel model =
        fitDefaultModel(campaign, config);

    // Residuals on training data (optimistic but structured).
    std::vector<double> residuals;
    for (size_t r = 0; r < campaign.data.numRows(); r += 3) {
        residuals.push_back(
            campaign.data.powerW()[r] -
            model.predictFromCatalogRow(
                campaign.data.features().row(r)));
    }
    const GuardBand band = GuardBand::fromResiduals(residuals);
    // The band must be a small fraction of a machine's envelope.
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    EXPECT_LT(band.perMachineW(), 0.3 * spec.dynamicRangeW());
    EXPECT_GT(band.perMachineW(), 0.0);

    PowerCapController controller(
        spec.maxPowerW * 3.0, band, 3);
    EXPECT_GT(controller.thresholdW(), spec.idlePowerW * 3.0);
}

TEST(EndToEnd, HeterogeneousCompositionStaysAccurate)
{
    const auto config = integrationConfig(161803);
    const ClusterCampaign core2 =
        runClusterCampaign(MachineClass::Core2, config);

    ClusterPowerModel composed;
    composed.setClassModel(MachineClass::Athlon,
                           fitDefaultModel(athlonCampaign(),
                                           integrationConfig(31415)));
    composed.setClassModel(MachineClass::Core2,
                           fitDefaultModel(core2, config));

    Cluster hetero = Cluster::heterogeneous(
        {{MachineClass::Core2, 2}, {MachineClass::Athlon, 2}},
        55555);
    SortWorkload workload;
    const RunResult run =
        runWorkload(hetero, workload, 2718, 0, config.run);

    const auto metered = run.clusterPowerSeries();
    std::vector<double> estimated(metered.size(), 0.0);
    for (size_t m = 0; m < hetero.size(); ++m) {
        const MachineClass mc = hetero.machine(m).spec().machineClass;
        for (size_t t = 0; t < run.machineRecords[m].size(); ++t) {
            estimated[t] += composed.predictMachine(
                mc, run.machineRecords[m][t].counters);
        }
    }
    const double dre = dynamicRangeError(estimated, metered,
                                         hetero.totalIdlePowerW(),
                                         hetero.totalMaxPowerW());
    EXPECT_LT(dre, 0.12);
}

} // namespace
} // namespace chaos
