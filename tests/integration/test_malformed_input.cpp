/**
 * @file
 * Malformed-user-input sweep: every load path must surface a
 * RecoverableError (or a failed Result) instead of exiting the
 * process. These tests run in-process — if any library path still
 * called fatal()/exit, the whole test binary would die.
 */
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "core/model_store.hpp"
#include "models/serialize.hpp"
#include "oscounters/counter_catalog.hpp"
#include "trace/trace_io.hpp"
#include "util/csv.hpp"

namespace chaos {
namespace {

std::string
writeFile(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(MalformedInput, TruncatedDatasetCsv)
{
    // A dataset whose last row was cut off mid-write (power outage,
    // full disk): the row is ragged and must be reported with its
    // line number, not exit the process.
    const std::string path = writeFile(
        "truncated.csv", "util,freq,__power_w,__run_id,__machine_id,"
                         "__workload_id\n"
                         "50,2260,35.2,0,0,0\n"
                         "80,2260\n");
    EXPECT_RAISES(loadDataset(path), path + ":3");
    const auto result = tryLoadDataset(path);
    EXPECT_FALSE(result.hasValue());
    std::remove(path.c_str());
}

TEST(MalformedInput, DatasetMissingRequiredColumns)
{
    const std::string path = writeFile("nocols.csv",
                                       "util,freq\n50,2260\n");
    EXPECT_RAISES(loadDataset(path), path + ":1");
    std::remove(path.c_str());
}

TEST(MalformedInput, CorruptModelFile)
{
    const std::string garbage = writeFile(
        "garbage.model", "this is not a model file at all\n");
    const auto result = tryLoadModelFile(garbage);
    EXPECT_FALSE(result.hasValue());
    EXPECT_FALSE(result.error().empty());
    EXPECT_RAISES(loadModelFile(garbage), "");
    std::remove(garbage.c_str());
}

TEST(MalformedInput, MissingModelFile)
{
    EXPECT_RAISES(loadModelFile("/no/such/file.model"), "");
    const auto result =
        tryLoadMachineModelFile("/no/such/file.model");
    EXPECT_FALSE(result.hasValue());
}

TEST(MalformedInput, CorruptMachineModelFile)
{
    const std::string garbage = writeFile(
        "garbage.machine", "chaos-machine-model 99\nnonsense\n");
    const auto result = tryLoadMachineModelFile(garbage);
    EXPECT_FALSE(result.hasValue());
    std::remove(garbage.c_str());
}

TEST(MalformedInput, UnknownCounterName)
{
    const auto &catalog = CounterCatalog::instance();
    EXPECT_FALSE(catalog.contains("No\\Such Counter"));
    EXPECT_RAISES(catalog.indexOf("No\\Such Counter"),
                  "unknown counter name");
}

TEST(MalformedInput, NonNumericCsvField)
{
    const std::string path =
        writeFile("alpha.csv", "a,b\n1,definitely-not-a-number\n");
    EXPECT_RAISES(readCsv(path), "non-numeric CSV field");
    std::remove(path.c_str());
}

} // namespace
} // namespace chaos
