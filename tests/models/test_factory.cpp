/**
 * @file
 * Tests for model construction by technique.
 */
#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "models/factory.hpp"

namespace chaos {
namespace {

TEST(Factory, AllFourTechniquesInPaperOrder)
{
    const auto &types = allModelTypes();
    ASSERT_EQ(types.size(), 4u);
    EXPECT_EQ(types[0], ModelType::Linear);
    EXPECT_EQ(types[1], ModelType::PiecewiseLinear);
    EXPECT_EQ(types[2], ModelType::Quadratic);
    EXPECT_EQ(types[3], ModelType::Switching);
}

TEST(Factory, CreatesMatchingTypes)
{
    ModelOptions options;
    options.frequencyFeature = 0;
    for (ModelType type : allModelTypes()) {
        const auto model = makeModel(type, options);
        ASSERT_NE(model, nullptr);
        EXPECT_EQ(model->type(), type);
    }
}

TEST(Factory, QuadraticGetsDegreeTwo)
{
    ModelOptions options;
    options.mars.maxDegree = 1;  // Factory must override per type.
    const auto quadratic = makeModel(ModelType::Quadratic, options);
    EXPECT_EQ(quadratic->type(), ModelType::Quadratic);
    const auto piecewise =
        makeModel(ModelType::PiecewiseLinear, options);
    EXPECT_EQ(piecewise->type(), ModelType::PiecewiseLinear);
}

TEST(Factory, SwitchingWithoutFrequencyRaises)
{
    EXPECT_RAISES(makeModel(ModelType::Switching), "frequency feature");
}

TEST(Factory, ModelCodesMatchPaperLabels)
{
    EXPECT_EQ(modelTypeCode(ModelType::Linear), "L");
    EXPECT_EQ(modelTypeCode(ModelType::PiecewiseLinear), "P");
    EXPECT_EQ(modelTypeCode(ModelType::Quadratic), "Q");
    EXPECT_EQ(modelTypeCode(ModelType::Switching), "S");
}

} // namespace
} // namespace chaos
