/**
 * @file
 * Tests for the MARS implementation (paper Eqs. 2 and 3): hinge
 * recovery, interaction capture, pruning, and extrapolation safety.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "models/linear.hpp"
#include "models/mars.hpp"
#include "stats/metrics.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(Hinge, EvaluatesBothDirections)
{
    const Hinge up{0, 2.0, +1};
    EXPECT_DOUBLE_EQ(up.evaluate(5.0), 3.0);
    EXPECT_DOUBLE_EQ(up.evaluate(1.0), 0.0);
    const Hinge down{0, 2.0, -1};
    EXPECT_DOUBLE_EQ(down.evaluate(5.0), 0.0);
    EXPECT_DOUBLE_EQ(down.evaluate(1.0), 1.0);
}

TEST(BasisTerm, ProductOfHinges)
{
    BasisTerm term;
    term.hinges.push_back({0, 1.0, +1});
    term.hinges.push_back({1, 0.0, -1});
    EXPECT_DOUBLE_EQ(term.evaluate({3.0, -2.0}), 4.0);  // 2 * 2.
    EXPECT_DOUBLE_EQ(term.evaluate({0.5, -2.0}), 0.0);
    EXPECT_EQ(term.degree(), 2u);
    EXPECT_TRUE(term.usesFeature(0));
    EXPECT_FALSE(term.usesFeature(2));
}

TEST(BasisTerm, EmptyTermIsIntercept)
{
    const BasisTerm intercept;
    EXPECT_DOUBLE_EQ(intercept.evaluate({1.0, 2.0}), 1.0);
    EXPECT_EQ(intercept.degree(), 0u);
}

TEST(Mars, RecoversPiecewiseLinearFunction)
{
    // y has a kink at x = 5: exactly one hinge pair needed.
    Rng rng(1);
    const size_t n = 500;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        const double v = rng.uniform(0.0, 10.0);
        x(i, 0) = v;
        y[i] = v < 5.0 ? 10.0 + 1.0 * v
                       : 15.0 + 4.0 * (v - 5.0);
        y[i] += rng.normal(0, 0.1);
    }
    MarsConfig config;
    config.maxDegree = 1;
    MarsModel mars(config);
    mars.fit(x, y);

    LinearModel linear;
    linear.fit(x, y);

    // MARS must clearly outperform the straight line.
    const auto mars_pred = mars.predictAll(x);
    const auto lin_pred = linear.predictAll(x);
    EXPECT_LT(rootMeanSquaredError(mars_pred, y),
              0.35 * rootMeanSquaredError(lin_pred, y));
}

TEST(Mars, QuadraticCapturesInteractions)
{
    // y = x0 * x1 (the utilization-times-frequency shape): degree-2
    // MARS should fit it far better than degree-1.
    Rng rng(2);
    const size_t n = 600;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 1.0);
        x(i, 1) = rng.uniform(0.0, 1.0);
        y[i] = 20.0 + 30.0 * x(i, 0) * x(i, 1) + rng.normal(0, 0.1);
    }
    MarsConfig cfg1;
    cfg1.maxDegree = 1;
    MarsModel additive(cfg1);
    additive.fit(x, y);

    MarsConfig cfg2;
    cfg2.maxDegree = 2;
    MarsModel interactive(cfg2);
    interactive.fit(x, y);

    const double rmse_additive =
        rootMeanSquaredError(additive.predictAll(x), y);
    const double rmse_interactive =
        rootMeanSquaredError(interactive.predictAll(x), y);
    EXPECT_LT(rmse_interactive, 0.6 * rmse_additive);
}

TEST(Mars, RespectsMaxDegree)
{
    Rng rng(3);
    const size_t n = 300;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 3; ++c)
            x(i, c) = rng.uniform(0, 1);
        y[i] = x(i, 0) * x(i, 1) + x(i, 2);
    }
    MarsConfig config;
    config.maxDegree = 2;
    MarsModel mars(config);
    mars.fit(x, y);
    for (const auto &term : mars.terms())
        EXPECT_LE(term.degree(), 2u);
}

TEST(Mars, RespectsMaxTerms)
{
    Rng rng(4);
    const size_t n = 400;
    Matrix x(n, 5);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 5; ++c)
            x(i, c) = rng.uniform(0, 1);
        y[i] = std::sin(6.0 * x(i, 0)) + x(i, 1) * x(i, 2) +
               rng.normal(0, 0.05);
    }
    MarsConfig config;
    config.maxDegree = 2;
    config.maxTerms = 9;
    MarsModel mars(config);
    mars.fit(x, y);
    EXPECT_LE(mars.terms().size(), 9u);
    EXPECT_EQ(mars.coefficients().size(), mars.terms().size());
}

TEST(Mars, PredictClampsExtrapolation)
{
    // Outside the training range, predictions freeze at the boundary
    // value instead of extrapolating hinge slopes.
    Rng rng(5);
    const size_t n = 300;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        y[i] = 3.0 * x(i, 0);
    }
    MarsModel mars;
    mars.fit(x, y);
    const double at_edge = mars.predict({10.0});
    const double far_out = mars.predict({1000.0});
    EXPECT_NEAR(far_out, at_edge, 1.0);
}

TEST(Mars, HandlesDiscreteFeatures)
{
    // P-state-like feature with 3 levels: knots at the levels.
    Rng rng(6);
    const size_t n = 600;
    Matrix x(n, 1);
    std::vector<double> y(n);
    const double levels[] = {800.0, 1600.0, 2260.0};
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = levels[rng.uniformInt(3)];
        y[i] = x(i, 0) == 800.0 ? 25.0
               : x(i, 0) == 1600.0 ? 30.0
                                   : 42.0;
        y[i] += rng.normal(0, 0.2);
    }
    MarsModel mars;
    mars.fit(x, y);
    EXPECT_NEAR(mars.predict({800.0}), 25.0, 0.5);
    EXPECT_NEAR(mars.predict({1600.0}), 30.0, 0.5);
    EXPECT_NEAR(mars.predict({2260.0}), 42.0, 0.5);
}

TEST(Mars, BackwardPassPrunesUselessTerms)
{
    // Pure linear data: GCV pruning should leave a compact model
    // (intercept plus roughly one hinge pair).
    Rng rng(7);
    const size_t n = 500;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0, 1);
        y[i] = 2.0 * x(i, 0) + rng.normal(0, 0.01);
    }
    MarsConfig config;
    config.maxTerms = 15;
    MarsModel mars(config);
    mars.fit(x, y);
    EXPECT_LE(mars.terms().size(), 7u);
}

TEST(Mars, TypeReflectsDegree)
{
    MarsConfig cfg1;
    cfg1.maxDegree = 1;
    EXPECT_EQ(MarsModel(cfg1).type(), ModelType::PiecewiseLinear);
    MarsConfig cfg2;
    cfg2.maxDegree = 2;
    EXPECT_EQ(MarsModel(cfg2).type(), ModelType::Quadratic);
}

TEST(Mars, InvalidConfigPanics)
{
    MarsConfig bad;
    bad.maxDegree = 3;
    EXPECT_DEATH(MarsModel{bad}, "degree 1 or 2");
    MarsConfig tiny;
    tiny.maxTerms = 2;
    EXPECT_DEATH(MarsModel{tiny}, "maxTerms");
}

TEST(Mars, PredictBeforeFitPanics)
{
    MarsModel mars;
    EXPECT_DEATH(mars.predict({1.0}), "before fit");
}

TEST(Mars, TooFewRowsPanics)
{
    MarsModel mars;
    Matrix x(5, 1);
    EXPECT_DEATH(mars.fit(x, {1, 2, 3, 4, 5}), "at least 10");
}

TEST(Mars, SubsamplingStillFitsWell)
{
    // More rows than maxSearchRows: the forward search subsamples
    // but the final refit uses everything.
    Rng rng(8);
    const size_t n = 5000;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0, 10);
        y[i] = x(i, 0) < 5 ? x(i, 0) : 5.0 + 3.0 * (x(i, 0) - 5.0);
    }
    MarsConfig config;
    config.maxSearchRows = 500;
    MarsModel mars(config);
    mars.fit(x, y);
    EXPECT_LT(rootMeanSquaredError(mars.predictAll(x), y), 0.25);
}

TEST(Mars, IncrementalSearchMatchesReferenceSearch)
{
    // The incremental (prefix-sum + bordered-solve) search and the
    // reference per-candidate refactorization evaluate candidate RSS
    // with different arithmetic, but on well-conditioned data they
    // must select the same basis and land on equal coefficients.
    Rng rng(10);
    const size_t n = 700;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        x(i, 1) = rng.uniform(-3.0, 3.0);
        x(i, 2) = rng.uniform(0.0, 1.0);
        y[i] = (x(i, 0) < 4.0 ? 2.0 * x(i, 0) : 8.0) +
               std::fabs(x(i, 1)) + 5.0 * x(i, 2) +
               rng.normal(0, 0.05);
    }
    for (size_t degree = 1; degree <= 2; ++degree) {
        // While candidate improvements are decisive (well above the
        // noise floor), both searches must select the identical
        // basis; cap the term budget so the forward pass stops
        // before score differences at the noise floor can tip the
        // stopping rule one iteration apart.
        MarsConfig fast;
        fast.maxDegree = degree;
        fast.maxTerms = 9;
        fast.incrementalSearch = true;
        MarsModel a(fast);
        a.fit(x, y);

        MarsConfig reference = fast;
        reference.incrementalSearch = false;
        MarsModel b(reference);
        b.fit(x, y);

        ASSERT_EQ(a.terms().size(), b.terms().size())
            << "degree " << degree;
        for (size_t t = 0; t < a.terms().size(); ++t) {
            const auto &ta = a.terms()[t];
            const auto &tb = b.terms()[t];
            ASSERT_EQ(ta.hinges.size(), tb.hinges.size());
            for (size_t h = 0; h < ta.hinges.size(); ++h) {
                EXPECT_EQ(ta.hinges[h].feature, tb.hinges[h].feature);
                EXPECT_EQ(ta.hinges[h].direction,
                          tb.hinges[h].direction);
                EXPECT_DOUBLE_EQ(ta.hinges[h].knot, tb.hinges[h].knot);
            }
            EXPECT_NEAR(a.coefficients()[t], b.coefficients()[t],
                        1e-7 * std::max(
                                   1.0, std::fabs(b.coefficients()[t])));
        }
    }
}

TEST(Mars, IncrementalSearchMatchesReferenceQuality)
{
    // At the full default term budget the two searches may part ways
    // deep in the noise floor (their ridge arithmetic differs), but
    // the resulting models must be interchangeable in quality.
    Rng rng(11);
    const size_t n = 700;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 10.0);
        x(i, 1) = rng.uniform(-3.0, 3.0);
        x(i, 2) = rng.uniform(0.0, 1.0);
        y[i] = (x(i, 0) < 4.0 ? 2.0 * x(i, 0) : 8.0) +
               std::fabs(x(i, 1)) + 5.0 * x(i, 2) +
               rng.normal(0, 0.05);
    }
    for (size_t degree = 1; degree <= 2; ++degree) {
        MarsConfig fast;
        fast.maxDegree = degree;
        fast.incrementalSearch = true;
        MarsModel a(fast);
        a.fit(x, y);

        MarsConfig reference = fast;
        reference.incrementalSearch = false;
        MarsModel b(reference);
        b.fit(x, y);

        const double rmse_a = rootMeanSquaredError(a.predictAll(x), y);
        const double rmse_b = rootMeanSquaredError(b.predictAll(x), y);
        EXPECT_LT(rmse_a, 1.15 * rmse_b) << "degree " << degree;
        EXPECT_LT(rmse_b, 1.15 * rmse_a) << "degree " << degree;
    }
}

TEST(Mars, DescribeListsTerms)
{
    Rng rng(9);
    Matrix x(100, 1);
    std::vector<double> y(100);
    for (size_t i = 0; i < 100; ++i) {
        x(i, 0) = rng.uniform(0, 1);
        y[i] = x(i, 0);
    }
    MarsModel mars;
    mars.fit(x, y);
    const std::string desc = mars.describe();
    EXPECT_NE(desc.find("MARS"), std::string::npos);
    EXPECT_NE(desc.find("terms"), std::string::npos);
    EXPECT_GE(mars.numParameters(), mars.terms().size());
}

} // namespace
} // namespace chaos
