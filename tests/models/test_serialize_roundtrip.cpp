/**
 * @file
 * Property-based round-trip tests for model serialization: across
 * randomized training problems, fitted-model shapes, and every
 * technique, save -> load must reproduce predictions *bitwise* — the
 * text format stores coefficients with enough digits (setprecision 17)
 * that the reloaded model is the same function, not an approximation.
 */
#include <sstream>

#include <gtest/gtest.h>

#include "models/factory.hpp"
#include "models/serialize.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/**
 * Randomized power-like training problem: a seed-dependent number of
 * rows and features, utilization/frequency/byte-count style columns,
 * and a nonlinear target with noise. Every seed yields a different
 * fitted-model shape (different knots, different switching states).
 */
void
randomProblem(Matrix &x, std::vector<double> &y, size_t &freqColumn,
              uint64_t seed)
{
    Rng rng(seed);
    const size_t n = 120 + rng.uniformInt(200);
    const size_t features = 2 + rng.uniformInt(4);
    freqColumn = rng.uniformInt(features);
    const double levels[] = {800.0, 1600.0, 2260.0};

    x = Matrix(n, features);
    y.assign(n, 0.0);
    std::vector<double> weights(features);
    for (double &w : weights)
        w = rng.uniform(-0.1, 0.3);
    for (size_t i = 0; i < n; ++i) {
        double watts = 20.0 + rng.normal(0.0, 0.3);
        for (size_t f = 0; f < features; ++f) {
            x(i, f) = f == freqColumn
                          ? levels[rng.uniformInt(3)]
                          : rng.uniform(0.0, 100.0);
            watts += weights[f] * x(i, f) / (f == freqColumn ? 20 : 1)
                     + 1e-4 * x(i, f) * x(i, f) * (f % 2);
        }
        y[i] = watts;
    }
}

class SerializePropertyRoundTrip
    : public ::testing::TestWithParam<ModelType>
{
};

TEST_P(SerializePropertyRoundTrip, RandomizedModelsSurviveBitwise)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Matrix x;
        std::vector<double> y;
        size_t freqColumn = 0;
        randomProblem(x, y, freqColumn, seed * 7919);

        ModelOptions options;
        options.frequencyFeature =
            static_cast<int>(freqColumn);
        auto model = makeModel(GetParam(), options);
        model->fit(x, y);

        std::stringstream buffer;
        saveModel(buffer, *model);
        const auto loaded = loadModel(buffer);

        ASSERT_EQ(loaded->type(), model->type()) << "seed " << seed;
        ASSERT_EQ(loaded->numParameters(), model->numParameters())
            << "seed " << seed;

        // Probe on training rows and on fresh random points: the
        // reloaded model must agree bit for bit everywhere.
        Rng probeRng(seed * 104729);
        for (size_t r = 0; r < x.rows(); r += 17) {
            EXPECT_EQ(loaded->predict(x.row(r)),
                      model->predict(x.row(r)))
                << "seed " << seed << " training row " << r;
        }
        for (int p = 0; p < 25; ++p) {
            std::vector<double> probe(x.cols());
            for (size_t f = 0; f < probe.size(); ++f)
                probe[f] = probeRng.uniform(-50.0, 150.0);
            EXPECT_EQ(loaded->predict(probe), model->predict(probe))
                << "seed " << seed << " probe " << p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Types, SerializePropertyRoundTrip,
    ::testing::ValuesIn(allModelTypes()),
    [](const ::testing::TestParamInfo<ModelType> &info) {
        return modelTypeName(info.param) == "piecewise-linear"
                   ? std::string("piecewise")
                   : modelTypeName(info.param);
    });

TEST(SerializePropertyRoundTrip, DoubleRoundTripIsIdentical)
{
    // save(load(save(m))) must equal save(m) byte for byte: the
    // format has one canonical rendering per model.
    Matrix x;
    std::vector<double> y;
    size_t freqColumn = 0;
    randomProblem(x, y, freqColumn, 31337);
    ModelOptions options;
    options.frequencyFeature = static_cast<int>(freqColumn);
    for (ModelType type : allModelTypes()) {
        auto model = makeModel(type, options);
        model->fit(x, y);
        std::stringstream first;
        saveModel(first, *model);
        const auto reloaded = loadModel(first);
        std::stringstream second;
        saveModel(second, *reloaded);
        EXPECT_EQ(first.str(), second.str())
            << modelTypeName(type);
    }
}

} // namespace
} // namespace chaos
