/**
 * @file
 * Tests for Wald-test backward stepwise elimination (Algorithm 1,
 * steps 4 and 6).
 */
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "models/stepwise.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(Stepwise, DropsPureNoiseKeepsSignal)
{
    Rng rng(1);
    const size_t n = 300;
    Matrix x(n, 5);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 5; ++c)
            x(i, c) = rng.normal();
        // Only features 1 and 4 matter.
        y[i] = 2.0 * x(i, 1) - 3.0 * x(i, 4) + rng.normal(0, 0.5);
    }
    const StepwiseResult result = stepwiseEliminate(x, y);
    ASSERT_EQ(result.keptFeatures.size(), 2u);
    EXPECT_EQ(result.keptFeatures[0], 1u);
    EXPECT_EQ(result.keptFeatures[1], 4u);
    // Removed features recorded.
    EXPECT_EQ(result.removedFeatures.size(), 3u);
}

TEST(Stepwise, KeptFeaturesAreAllSignificant)
{
    Rng rng(2);
    const size_t n = 400;
    Matrix x(n, 6);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 6; ++c)
            x(i, c) = rng.normal();
        y[i] = x(i, 0) + 0.5 * x(i, 2) + rng.normal(0, 0.3);
    }
    StepwiseConfig config;
    config.alpha = 0.05;
    const StepwiseResult result = stepwiseEliminate(x, y, config);
    for (double p : result.pValues)
        EXPECT_LE(p, config.alpha);
}

TEST(Stepwise, RespectsMinFeatures)
{
    Rng rng(3);
    const size_t n = 200;
    Matrix x(n, 4);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 4; ++c)
            x(i, c) = rng.normal();
        y[i] = rng.normal();  // Pure noise: nothing is significant.
    }
    StepwiseConfig config;
    config.minFeatures = 2;
    const StepwiseResult result = stepwiseEliminate(x, y, config);
    EXPECT_EQ(result.keptFeatures.size(), 2u);
}

TEST(Stepwise, AllSignificantKeepsEverything)
{
    Rng rng(4);
    const size_t n = 500;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 3; ++c)
            x(i, c) = rng.normal();
        y[i] = x(i, 0) + x(i, 1) + x(i, 2) + rng.normal(0, 0.1);
    }
    const StepwiseResult result = stepwiseEliminate(x, y);
    EXPECT_EQ(result.keptFeatures.size(), 3u);
    EXPECT_TRUE(result.removedFeatures.empty());
}

TEST(Stepwise, DegenerateConstantColumnIsDroppedFirst)
{
    Rng rng(5);
    const size_t n = 150;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = 5.0;  // Constant: collinear with the intercept.
        x(i, 2) = rng.normal();
        y[i] = x(i, 0) + x(i, 2) + rng.normal(0, 0.2);
    }
    const StepwiseResult result = stepwiseEliminate(x, y);
    EXPECT_EQ(std::find(result.keptFeatures.begin(),
                        result.keptFeatures.end(), 1u),
              result.keptFeatures.end());
}

TEST(Stepwise, CoefficientsIncludeIntercept)
{
    Rng rng(6);
    const size_t n = 200;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = rng.normal();
        y[i] = 100.0 + 2.0 * x(i, 0) + rng.normal(0, 0.1);
    }
    const StepwiseResult result = stepwiseEliminate(x, y);
    ASSERT_EQ(result.coefficients.size(),
              result.keptFeatures.size() + 1);
    EXPECT_NEAR(result.coefficients[0], 100.0, 0.1);
}

TEST(Stepwise, GramReuseMatchesReferenceRefit)
{
    // The downdate-based elimination reads the same Gram entries the
    // per-iteration refit would recompute, so both paths must agree
    // on the elimination order and land on the same coefficients.
    Rng rng(7);
    const size_t n = 350;
    Matrix x(n, 8);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 8; ++c)
            x(i, c) = rng.normal();
        y[i] = 1.5 * x(i, 0) - 2.0 * x(i, 3) + 0.8 * x(i, 6) +
               rng.normal(0, 0.4);
    }
    StepwiseConfig fast;
    fast.reuseGram = true;
    const StepwiseResult a = stepwiseEliminate(x, y, fast);

    StepwiseConfig reference = fast;
    reference.reuseGram = false;
    const StepwiseResult b = stepwiseEliminate(x, y, reference);

    ASSERT_EQ(a.keptFeatures, b.keptFeatures);
    ASSERT_EQ(a.removedFeatures, b.removedFeatures);
    ASSERT_EQ(a.coefficients.size(), b.coefficients.size());
    for (size_t i = 0; i < a.coefficients.size(); ++i) {
        EXPECT_NEAR(a.coefficients[i], b.coefficients[i],
                    1e-8 * std::max(1.0, std::fabs(b.coefficients[i])));
    }
    ASSERT_EQ(a.pValues.size(), b.pValues.size());
    for (size_t i = 0; i < a.pValues.size(); ++i)
        EXPECT_NEAR(a.pValues[i], b.pValues[i], 1e-6);
}

TEST(Stepwise, EmptyDesignPanics)
{
    Matrix x(3, 0);
    EXPECT_DEATH(stepwiseEliminate(x, {1, 2, 3}), "no features");
}

} // namespace
} // namespace chaos
