/**
 * @file
 * Tests for the coordinate-descent LASSO (Algorithm 1, step 3).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "models/lasso.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/** y depends on features 0 and 3 only; 10 features total. */
void
sparseProblem(Matrix &x, std::vector<double> &y, Rng &rng,
              size_t n = 400)
{
    x = Matrix(n, 10);
    y.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 10; ++c)
            x(i, c) = rng.normal();
        y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 3) + rng.normal(0, 0.1);
    }
}

TEST(Lasso, RecoversSparseSupport)
{
    Rng rng(1);
    Matrix x;
    std::vector<double> y;
    sparseProblem(x, y, rng);

    LassoSolver solver;
    const LassoFit fit = solver.fit(x, y, 0.2);
    const auto support = fit.support();
    ASSERT_EQ(support.size(), 2u);
    EXPECT_EQ(support[0], 0u);
    EXPECT_EQ(support[1], 3u);
    EXPECT_GT(fit.coefficients[0], 1.5);
    EXPECT_LT(fit.coefficients[3], -1.0);
}

TEST(Lasso, LambdaMaxKillsEveryCoefficient)
{
    Rng rng(2);
    Matrix x;
    std::vector<double> y;
    sparseProblem(x, y, rng);

    LassoSolver solver;
    const double top = solver.lambdaMax(x, y);
    const LassoFit fit = solver.fit(x, y, top * 1.0001);
    EXPECT_TRUE(fit.support().empty());
}

TEST(Lasso, ZeroLambdaApproachesLeastSquares)
{
    Rng rng(3);
    Matrix x;
    std::vector<double> y;
    sparseProblem(x, y, rng);

    LassoSolver solver;
    const LassoFit fit = solver.fit(x, y, 0.0);
    EXPECT_NEAR(fit.coefficients[0], 3.0, 0.05);
    EXPECT_NEAR(fit.coefficients[3], -2.0, 0.05);
}

TEST(Lasso, CoefficientsShrinkMonotonicallyInLambda)
{
    Rng rng(4);
    Matrix x;
    std::vector<double> y;
    sparseProblem(x, y, rng);

    LassoSolver solver;
    double prev_norm = 1e300;
    for (double lambda : {0.01, 0.1, 0.5, 1.0, 2.0}) {
        const LassoFit fit = solver.fit(x, y, lambda);
        double norm = 0.0;
        for (double c : fit.coefficients)
            norm += std::fabs(c);
        EXPECT_LE(norm, prev_norm + 1e-9);
        prev_norm = norm;
    }
}

TEST(Lasso, InterceptAbsorbsTargetMean)
{
    Rng rng(5);
    const size_t n = 300;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = rng.normal();
        y[i] = 250.0 + 0.5 * x(i, 0);  // Server-scale static power.
    }
    const LassoFit fit = LassoSolver().fit(x, y, 5.0);
    EXPECT_TRUE(fit.support().empty());
    EXPECT_NEAR(fit.intercept, 250.0, 0.2);
}

TEST(Lasso, TargetSupportRespectsCap)
{
    Rng rng(6);
    const size_t n = 400, p = 30;
    Matrix x(n, p);
    std::vector<double> y(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < p; ++c)
            x(i, c) = rng.normal();
        // Many weak signals: unconstrained support would be large.
        for (size_t c = 0; c < p; ++c)
            y[i] += 0.5 * x(i, c);
        y[i] += rng.normal(0, 0.05);
    }
    const LassoFit fit =
        LassoSolver().fitWithTargetSupport(x, y, 12);
    EXPECT_LE(fit.support().size(), 12u);
    EXPECT_GE(fit.support().size(), 1u);
}

TEST(Lasso, TargetSupportFindsTrueSparseSet)
{
    Rng rng(7);
    Matrix x;
    std::vector<double> y;
    sparseProblem(x, y, rng);
    const LassoFit fit = LassoSolver().fitWithTargetSupport(x, y, 5);
    const auto support = fit.support();
    ASSERT_LE(support.size(), 5u);
    // Must contain the two true features.
    EXPECT_NE(std::find(support.begin(), support.end(), 0u),
              support.end());
    EXPECT_NE(std::find(support.begin(), support.end(), 3u),
              support.end());
}

TEST(Lasso, ConstantColumnsNeverEnterTheSupport)
{
    Rng rng(8);
    const size_t n = 200;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.normal();
        x(i, 1) = 42.0;      // Constant.
        x(i, 2) = rng.normal();
        y[i] = x(i, 0) + rng.normal(0, 0.1);
    }
    const LassoFit fit = LassoSolver().fit(x, y, 0.05);
    for (size_t s : fit.support())
        EXPECT_NE(s, 1u);
}

TEST(Lasso, ShapeAndParameterChecksPanic)
{
    Matrix x(3, 1);
    LassoSolver solver;
    EXPECT_DEATH(solver.fit(x, {1.0, 2.0}, 0.1), "shape mismatch");
    EXPECT_DEATH(solver.fit(x, {1.0, 2.0, 3.0}, -0.1),
                 "negative lambda");
}

} // namespace
} // namespace chaos
