/**
 * @file
 * Tests for the baseline linear power model (paper Eq. 1).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "models/linear.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(LinearModel, RecoversExactLinearFunction)
{
    Rng rng(1);
    const size_t n = 200;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0, 100);
        x(i, 1) = rng.uniform(0, 10);
        y[i] = 25.0 + 0.2 * x(i, 0) + 1.5 * x(i, 1);
    }
    LinearModel model;
    model.fit(x, y);
    EXPECT_NEAR(model.intercept(), 25.0, 1e-6);
    const auto coefs = model.featureCoefficients();
    EXPECT_NEAR(coefs[0], 0.2, 1e-8);
    EXPECT_NEAR(coefs[1], 1.5, 1e-8);
    EXPECT_NEAR(model.predict({50.0, 5.0}), 25.0 + 10.0 + 7.5, 1e-6);
}

TEST(LinearModel, HandlesWildlyDifferentFeatureScales)
{
    // The conditioning scenario that motivated internal
    // standardization: bytes (1e9) next to percentages (1e2).
    Rng rng(2);
    const size_t n = 500;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0, 100);        // Utilization.
        x(i, 1) = rng.uniform(0.5e9, 2.5e9);  // Committed bytes.
        y[i] = 30.0 + 0.15 * x(i, 0) + 4e-9 * x(i, 1) +
               rng.normal(0, 0.01);
    }
    LinearModel model;
    model.fit(x, y);
    // Predictions must be accurate even though raw normal equations
    // would be ill-conditioned.
    double worst = 0.0;
    for (size_t i = 0; i < n; ++i) {
        worst = std::max(worst, std::fabs(model.predict(x.row(i)) -
                                          y[i]));
    }
    EXPECT_LT(worst, 0.1);
}

TEST(LinearModel, ConstantFeatureGetsZeroWeight)
{
    Rng rng(3);
    const size_t n = 100;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0, 1);
        x(i, 1) = 7.0;  // Constant.
        y[i] = 2.0 * x(i, 0) + 5.0;
    }
    LinearModel model;
    model.fit(x, y);
    EXPECT_NEAR(model.featureCoefficients()[1], 0.0, 1e-9);
    EXPECT_NEAR(model.predict({0.5, 7.0}), 6.0, 1e-6);
}

TEST(LinearModel, PredictBeforeFitPanics)
{
    LinearModel model;
    EXPECT_DEATH(model.predict({1.0}), "before fit");
}

TEST(LinearModel, PredictWidthMismatchPanics)
{
    LinearModel model;
    Matrix x = Matrix::fromRows({{1.0}, {2.0}, {3.0}});
    model.fit(x, {1, 2, 3});
    EXPECT_DEATH(model.predict({1.0, 2.0}), "width mismatch");
}

TEST(LinearModel, PredictAllMatchesRowWise)
{
    Rng rng(4);
    Matrix x(50, 3);
    std::vector<double> y(50);
    for (size_t i = 0; i < 50; ++i) {
        for (size_t c = 0; c < 3; ++c)
            x(i, c) = rng.normal();
        y[i] = rng.normal();
    }
    LinearModel model;
    model.fit(x, y);
    const auto all = model.predictAll(x);
    for (size_t i = 0; i < 50; i += 9)
        EXPECT_DOUBLE_EQ(all[i], model.predict(x.row(i)));
}

TEST(LinearModel, MetadataAccessors)
{
    LinearModel model;
    Matrix x = Matrix::fromRows({{1.0}, {2.0}, {3.0}});
    model.fit(x, {2, 4, 6});
    EXPECT_EQ(model.type(), ModelType::Linear);
    EXPECT_EQ(model.numParameters(), 2u);
    EXPECT_FALSE(model.describe().empty());
    EXPECT_EQ(modelTypeCode(model.type()), "L");
    EXPECT_EQ(modelTypeName(model.type()), "linear");
}

TEST(LinearModel, CannotCaptureConvexResponse)
{
    // Sanity for the paper's core claim: a linear model systematically
    // underpredicts the top of a convex power curve.
    const size_t n = 200;
    Matrix x(n, 1);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        const double u = static_cast<double>(i) / (n - 1);
        x(i, 0) = u;
        y[i] = 50.0 + 50.0 * (0.6 * u + 0.4 * u * u);
    }
    LinearModel model;
    model.fit(x, y);
    // At the very top, prediction falls short of the actual power.
    EXPECT_LT(model.predict({1.0}), y[n - 1] - 1.0);
}

} // namespace
} // namespace chaos
