/**
 * @file
 * Property-based equivalence tests for the compiled batch predict
 * path: for every model technique, across randomized training
 * problems, batch sizes, and row strides, predictBatch (the lowered
 * SoA evaluation plan) must reproduce the scalar predict() result
 * *bitwise* — the compiled plan is a re-layout of the same
 * arithmetic, never a reassociation of it. The scalar path is the
 * regression oracle: any last-ulp divergence is a lowering bug.
 */
#include <cstring>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "models/factory.hpp"
#include "models/serialize.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/**
 * Randomized power-like training problem (same family as the
 * serialization round-trip suite): seed-dependent row/feature
 * counts, a frequency-style column with discrete levels, and a
 * nonlinear noisy target, so every seed exercises a different
 * fitted-model shape — different knots, different switching states.
 */
void
randomProblem(Matrix &x, std::vector<double> &y, size_t &freqColumn,
              uint64_t seed)
{
    Rng rng(seed);
    const size_t n = 120 + rng.uniformInt(200);
    const size_t features = 2 + rng.uniformInt(4);
    freqColumn = rng.uniformInt(features);
    const double levels[] = {800.0, 1600.0, 2260.0};

    x = Matrix(n, features);
    y.assign(n, 0.0);
    std::vector<double> weights(features);
    for (double &w : weights)
        w = rng.uniform(-0.1, 0.3);
    for (size_t i = 0; i < n; ++i) {
        double watts = 20.0 + rng.normal(0.0, 0.3);
        for (size_t f = 0; f < features; ++f) {
            x(i, f) = f == freqColumn
                          ? levels[rng.uniformInt(3)]
                          : rng.uniform(0.0, 100.0);
            watts += weights[f] * x(i, f) / (f == freqColumn ? 20 : 1)
                     + 1e-4 * x(i, f) * x(i, f) * (f % 2);
        }
        y[i] = watts;
    }
}

/** A fitted model of @p type on the seed's random problem. */
std::unique_ptr<PowerModel>
fittedModel(ModelType type, uint64_t seed, Matrix &x,
            std::vector<double> &y)
{
    size_t freqColumn = 0;
    randomProblem(x, y, freqColumn, seed);
    ModelOptions options;
    options.frequencyFeature = static_cast<int>(freqColumn);
    auto model = makeModel(type, options);
    model->fit(x, y);
    return model;
}

/**
 * Pack @p rows probe rows of width @p width at @p stride doubles
 * between row starts, poisoning the padding lanes so a plan that
 * reads past a row's width cannot go unnoticed.
 */
std::vector<double>
packRows(const std::vector<std::vector<double>> &rows, size_t width,
         size_t stride)
{
    std::vector<double> packed(rows.size() * stride, -1e300);
    for (size_t i = 0; i < rows.size(); ++i)
        std::memcpy(packed.data() + i * stride, rows[i].data(),
                    width * sizeof(double));
    return packed;
}

class CompiledBatchEquivalence
    : public ::testing::TestWithParam<ModelType>
{
};

TEST_P(CompiledBatchEquivalence, RandomBatchesMatchScalarBitwise)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        Matrix x;
        std::vector<double> y;
        const auto model = fittedModel(GetParam(), seed * 7919, x, y);
        const size_t width = model->inputWidth();

        Rng rng(seed * 104729);
        // Random batch sizes, including the degenerate ones the
        // drain scheduler produces (empty pass, single straggler).
        for (size_t batch : {size_t(0), size_t(1),
                             1 + rng.uniformInt(7),
                             8 + rng.uniformInt(64),
                             64 + rng.uniformInt(512)}) {
            // Probe mix: training rows (in-envelope) and uniform
            // random points (outside it), so hinge zero-clamps and
            // switching-state selection both get exercised.
            std::vector<std::vector<double>> probes;
            for (size_t i = 0; i < batch; ++i) {
                std::vector<double> row(width);
                if (i % 2 == 0) {
                    for (size_t f = 0; f < width; ++f)
                        row[f] = x(rng.uniformInt(x.rows()), f);
                } else {
                    for (size_t f = 0; f < width; ++f)
                        row[f] = rng.uniform(-50.0, 150.0);
                }
                probes.push_back(std::move(row));
            }
            // Random stride >= width: contiguous and padded layouts
            // must be indistinguishable to the plan.
            const size_t stride = width + rng.uniformInt(5);
            const std::vector<double> packed =
                packRows(probes, width, stride);

            std::vector<double> got(batch, -1.0);
            model->predictBatch(packed.data(), batch, stride,
                                got.data());
            for (size_t i = 0; i < batch; ++i) {
                EXPECT_EQ(got[i], model->predict(probes[i]))
                    << modelTypeName(GetParam()) << " seed " << seed
                    << " batch " << batch << " stride " << stride
                    << " row " << i;
            }
        }
    }
}

TEST_P(CompiledBatchEquivalence, ReloadedModelBatchesMatchBitwise)
{
    // load() rebuilds the compiled plan eagerly; the reloaded plan
    // must be the same function as the original's, through the batch
    // entry point, bit for bit.
    for (uint64_t seed = 2; seed <= 6; ++seed) {
        Matrix x;
        std::vector<double> y;
        const auto model = fittedModel(GetParam(), seed * 6007, x, y);
        std::stringstream buffer;
        saveModel(buffer, *model);
        const auto loaded = loadModel(buffer);
        const size_t width = model->inputWidth();
        ASSERT_EQ(loaded->inputWidth(), width);

        Rng rng(seed);
        const size_t batch = 33 + rng.uniformInt(100);
        std::vector<std::vector<double>> probes;
        for (size_t i = 0; i < batch; ++i) {
            std::vector<double> row(width);
            for (size_t f = 0; f < width; ++f)
                row[f] = rng.uniform(-50.0, 150.0);
            probes.push_back(std::move(row));
        }
        const std::vector<double> packed =
            packRows(probes, width, width);
        std::vector<double> want(batch), got(batch);
        model->predictBatch(packed.data(), batch, width,
                            want.data());
        loaded->predictBatch(packed.data(), batch, width,
                             got.data());
        for (size_t i = 0; i < batch; ++i) {
            EXPECT_EQ(got[i], want[i])
                << modelTypeName(GetParam()) << " seed " << seed
                << " row " << i;
        }
    }
}

TEST_P(CompiledBatchEquivalence, PredictAllRoutesThroughBatchPath)
{
    // predictAll is the Matrix-facing face of the same plan: one
    // batched evaluation of every training row must equal the
    // scalar loop.
    Matrix x;
    std::vector<double> y;
    const auto model = fittedModel(GetParam(), 424243, x, y);
    const std::vector<double> all = model->predictAll(x);
    ASSERT_EQ(all.size(), x.rows());
    for (size_t r = 0; r < x.rows(); ++r)
        EXPECT_EQ(all[r], model->predict(x.row(r))) << "row " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Types, CompiledBatchEquivalence,
    ::testing::ValuesIn(allModelTypes()),
    [](const ::testing::TestParamInfo<ModelType> &info) {
        return modelTypeName(info.param) == "piecewise-linear"
                   ? std::string("piecewise")
                   : modelTypeName(info.param);
    });

} // namespace
} // namespace chaos
