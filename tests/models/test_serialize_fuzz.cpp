/**
 * @file
 * Fuzz-style malformed-input tests for the model and machine-model
 * loaders: every proper prefix of a serialized payload, wrong version
 * tags, unknown kinds, and non-finite coefficients must raise
 * RecoverableError — never crash, never zero-fill, never silently
 * yield a different model. The version-2 trailing end marker is what
 * makes *every* truncation detectable, including cuts inside the
 * digits of the final coefficient.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "core/model_store.hpp"
#include "models/factory.hpp"
#include "models/serialize.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/** Small fitted problem shared by the corpus builders. */
void
makeProblem(Matrix &x, std::vector<double> &y, uint64_t seed)
{
    Rng rng(seed);
    const size_t n = 150;
    x = Matrix(n, 3);
    y.assign(n, 0.0);
    const double levels[] = {800.0, 1600.0, 2260.0};
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 100.0);
        x(i, 1) = levels[rng.uniformInt(3)];
        x(i, 2) = rng.uniform(0.0, 5e7);
        y[i] = 22.0 + 0.08 * x(i, 0) + 0.004 * x(i, 1) +
               2e-7 * x(i, 2) + rng.normal(0.0, 0.2);
    }
}

std::string
serializedModel(ModelType type)
{
    Matrix x;
    std::vector<double> y;
    makeProblem(x, y, 97);
    ModelOptions options;
    options.frequencyFeature = 1;
    auto model = makeModel(type, options);
    model->fit(x, y);
    std::stringstream out;
    saveModel(out, *model);
    return out.str();
}

/** Assert that loading @p text raises RecoverableError. */
::testing::AssertionResult
loadRejects(const std::string &text)
{
    std::stringstream in(text);
    try {
        const auto model = loadModel(in);
        return ::testing::AssertionFailure()
               << "payload of " << text.size()
               << " bytes loaded as a '" << modelTypeName(model->type())
               << "' model instead of raising";
    } catch (const RecoverableError &) {
        return ::testing::AssertionSuccess();
    }
}

class SerializeFuzz : public ::testing::TestWithParam<ModelType>
{
};

TEST_P(SerializeFuzz, EveryTruncationIsRejected)
{
    const std::string text = serializedModel(GetParam());
    ASSERT_GT(text.size(), 20u);
    // The payload ends with "end\n"; only stripping the final newline
    // leaves a parseable stream. Every shorter prefix must raise —
    // including cuts inside the digits of a coefficient, which
    // without the end marker would parse as a *different* model.
    for (size_t len = 0; len + 1 < text.size(); ++len) {
        EXPECT_TRUE(loadRejects(text.substr(0, len)))
            << "prefix length " << len << " of " << text.size();
    }
    // Sanity: the untruncated payload does load.
    std::stringstream in(text);
    EXPECT_EQ(loadModel(in)->type(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Types, SerializeFuzz, ::testing::ValuesIn(allModelTypes()),
    [](const ::testing::TestParamInfo<ModelType> &info) {
        return modelTypeName(info.param) == "piecewise-linear"
                   ? std::string("piecewise")
                   : modelTypeName(info.param);
    });

TEST(SerializeFuzz, WrongVersionTagsAreRejected)
{
    for (const char *version : {"0", "3", "99", "-1"}) {
        std::stringstream in(std::string("chaos-model ") + version +
                             "\nlinear\n");
        EXPECT_RAISES(loadModel(in), "unsupported chaos model file "
                                     "version");
    }
    std::stringstream junkVersion("chaos-model two\nlinear\n");
    EXPECT_RAISES(loadModel(junkVersion), "not a chaos model");
}

TEST(SerializeFuzz, UnknownKindIsRejected)
{
    std::stringstream in("chaos-model 2\nneural\nend\n");
    EXPECT_RAISES(loadModel(in), "unknown model kind 'neural'");
}

TEST(SerializeFuzz, NonFiniteCoefficientsAreRejected)
{
    // However the platform's istream treats "nan"/"inf"/overflowing
    // literals, the loader must raise on the coef vector rather than
    // deliver a model that predicts NaN.
    for (const char *bad : {"nan", "inf", "-inf", "1e999"}) {
        std::stringstream in(
            "chaos-model 2\nlinear\ncoef 2 " + std::string(bad) +
            " 1.5\nmu 1 0\nsigma 1 1\nend\n");
        EXPECT_RAISES(loadModel(in), "vector coef");
    }
}

TEST(SerializeFuzz, VectorCountMismatchIsRejected)
{
    // Declared count larger than the data: must be truncation, not a
    // zero-filled tail.
    std::stringstream in("chaos-model 2\nlinear\ncoef 5 1.0 2.0\n");
    EXPECT_RAISES(loadModel(in), "vector coef");
}

TEST(SerializeFuzz, MachineModelTruncationsAreRejected)
{
    Matrix x;
    std::vector<double> y;
    makeProblem(x, y, 101);
    auto fitted = std::shared_ptr<PowerModel>(
        makeModel(ModelType::Linear, ModelOptions{}));
    fitted->fit(x, y);
    const MachinePowerModel model = MachinePowerModel::fromParts(
        FeatureSet{"fuzz",
                   {"Processor(0)\\% Processor Time",
                    "Processor(1)\\% Processor Time",
                    "Processor(0)\\% C1 Time"}},
        std::move(fitted));
    std::stringstream out;
    saveMachineModel(out, model);
    const std::string text = out.str();

    for (size_t len = 0; len + 1 < text.size(); ++len) {
        std::stringstream in(text.substr(0, len));
        try {
            const MachinePowerModel loaded = loadMachineModel(in);
            ADD_FAILURE() << "prefix length " << len << " of "
                          << text.size() << " loaded silently";
        } catch (const RecoverableError &) {
        }
    }
    std::stringstream full(text);
    const MachinePowerModel reloaded = loadMachineModel(full);
    EXPECT_EQ(reloaded.featureSet().counters.size(), 3u);
}

TEST(SerializeFuzz, MachineModelWrongVersionIsRejected)
{
    std::stringstream in("chaos-machine-model 2\nfeature-set f 0\n");
    EXPECT_RAISES(loadMachineModel(in),
                  "unsupported machine model file version");
}

TEST(SerializeFuzz, FileLoadErrorsCarryThePath)
{
    const std::string path = ::testing::TempDir() + "fuzz_broken.txt";
    {
        std::ofstream file(path);
        file << "chaos-model 2\nlinear\ncoef 9 1.0\n";
    }
    EXPECT_RAISES(loadModelFile(path), "fuzz_broken.txt: ");
    std::remove(path.c_str());
}

} // namespace
} // namespace chaos
