/**
 * @file
 * Tests for the frequency-switching model (paper Eq. 4).
 */
#include <gtest/gtest.h>

#include "models/linear.hpp"
#include "models/switching.hpp"
#include "stats/metrics.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/**
 * Data where the utilization/power slope depends on the P-state:
 * exactly the regime the switching model is built for.
 */
void
switchingProblem(Matrix &x, std::vector<double> &y, Rng &rng,
                 size_t n = 900)
{
    const double levels[] = {800.0, 1600.0, 2260.0};
    const double slopes[] = {4.0, 9.0, 21.0};
    const double idles[] = {25.0, 27.0, 30.0};
    x = Matrix(n, 2);
    y.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        const size_t state = rng.uniformInt(3);
        x(i, 0) = rng.uniform(0.0, 1.0);   // Utilization.
        x(i, 1) = levels[state];           // Frequency.
        y[i] = idles[state] + slopes[state] * x(i, 0) +
               rng.normal(0, 0.1);
    }
}

SwitchingConfig
configOnFeature1()
{
    SwitchingConfig config;
    config.frequencyFeature = 1;
    return config;
}

TEST(Switching, DiscoversThePStates)
{
    Rng rng(1);
    Matrix x;
    std::vector<double> y;
    switchingProblem(x, y, rng);
    SwitchingModel model(configOnFeature1());
    model.fit(x, y);
    EXPECT_EQ(model.numStates(), 3u);
}

TEST(Switching, OutperformsGlobalLinearOnStateDependentSlopes)
{
    Rng rng(2);
    Matrix x;
    std::vector<double> y;
    switchingProblem(x, y, rng);

    SwitchingModel switching(configOnFeature1());
    switching.fit(x, y);
    LinearModel linear;
    linear.fit(x, y);

    const double rmse_switching =
        rootMeanSquaredError(switching.predictAll(x), y);
    const double rmse_linear =
        rootMeanSquaredError(linear.predictAll(x), y);
    EXPECT_LT(rmse_switching, 0.5 * rmse_linear);
    EXPECT_NEAR(rmse_switching, 0.1, 0.05);  // Noise floor.
}

TEST(Switching, PredictsAccuratelyPerState)
{
    Rng rng(3);
    Matrix x;
    std::vector<double> y;
    switchingProblem(x, y, rng);
    SwitchingModel model(configOnFeature1());
    model.fit(x, y);

    EXPECT_NEAR(model.predict({0.5, 800.0}), 25.0 + 2.0, 0.2);
    EXPECT_NEAR(model.predict({0.5, 1600.0}), 27.0 + 4.5, 0.2);
    EXPECT_NEAR(model.predict({0.5, 2260.0}), 30.0 + 10.5, 0.2);
}

TEST(Switching, UnseenFrequencySnapsToNearestState)
{
    Rng rng(4);
    Matrix x;
    std::vector<double> y;
    switchingProblem(x, y, rng);
    SwitchingModel model(configOnFeature1());
    model.fit(x, y);

    // 900 MHz is closest to the 800 MHz state.
    EXPECT_NEAR(model.predict({0.5, 900.0}),
                model.predict({0.5, 800.0}), 1e-9);
}

TEST(Switching, SparseStateFallsBackToGlobalModel)
{
    Rng rng(5);
    const size_t n = 300;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        // Only 5 samples at the rare 3000 MHz state.
        const bool rare = i < 5;
        x(i, 0) = rng.uniform(0, 1);
        x(i, 1) = rare ? 3000.0 : 1000.0;
        y[i] = 20.0 + 5.0 * x(i, 0) + rng.normal(0, 0.1);
    }
    SwitchingConfig config = configOnFeature1();
    config.minRowsPerState = 30;
    SwitchingModel model(config);
    model.fit(x, y);
    EXPECT_EQ(model.numStates(), 2u);
    // Rare-state prediction still sane (via the fallback).
    EXPECT_NEAR(model.predict({0.5, 3000.0}), 22.5, 0.5);
    EXPECT_NE(model.describe().find("fallback"), std::string::npos);
}

TEST(Switching, SingleStateDegeneratesToLinear)
{
    // An Atom-like platform: frequency never changes.
    Rng rng(6);
    const size_t n = 200;
    Matrix x(n, 2);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0, 1);
        x(i, 1) = 1600.0;
        y[i] = 22.0 + 4.0 * x(i, 0) + rng.normal(0, 0.05);
    }
    SwitchingModel switching(configOnFeature1());
    switching.fit(x, y);
    LinearModel linear;
    linear.fit(x, y);
    EXPECT_EQ(switching.numStates(), 1u);
    EXPECT_NEAR(switching.predict({0.5, 1600.0}),
                linear.predict({0.5, 1600.0}), 0.05);
}

TEST(Switching, ParameterCountGrowsWithStates)
{
    Rng rng(7);
    Matrix x;
    std::vector<double> y;
    switchingProblem(x, y, rng);
    SwitchingModel model(configOnFeature1());
    model.fit(x, y);
    // Fallback (3 params) + 3 states x 3 params.
    EXPECT_EQ(model.numParameters(), 12u);
    EXPECT_EQ(model.type(), ModelType::Switching);
}

TEST(Switching, InvalidFrequencyFeaturePanics)
{
    SwitchingConfig config;
    config.frequencyFeature = 5;
    SwitchingModel model(config);
    Matrix x(20, 2);
    std::vector<double> y(20, 1.0);
    EXPECT_DEATH(model.fit(x, y), "out of range");
}

TEST(Switching, PredictBeforeFitPanics)
{
    SwitchingModel model(configOnFeature1());
    EXPECT_DEATH(model.predict({1.0, 2.0}), "before fit");
}

} // namespace
} // namespace chaos
