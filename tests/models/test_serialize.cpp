/**
 * @file
 * Tests for model persistence: save/load round trips must reproduce
 * predictions exactly for every technique.
 */
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "models/factory.hpp"
#include "models/serialize.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/** Power-like training problem with utilization and frequency. */
void
makeProblem(Matrix &x, std::vector<double> &y, uint64_t seed)
{
    Rng rng(seed);
    const size_t n = 500;
    x = Matrix(n, 3);
    y.assign(n, 0.0);
    const double levels[] = {800.0, 1600.0, 2260.0};
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 100.0);          // Utilization.
        x(i, 1) = levels[rng.uniformInt(3)];        // Frequency.
        x(i, 2) = rng.uniform(0.0, 5e7);            // Disk bytes.
        y[i] = 25.0 + 0.002 * x(i, 0) * x(i, 1) / 1000.0 +
               2e-7 * x(i, 2) + rng.normal(0.0, 0.2);
    }
}

class SerializeRoundTrip : public ::testing::TestWithParam<ModelType>
{
};

TEST_P(SerializeRoundTrip, PredictionsSurviveExactly)
{
    Matrix x;
    std::vector<double> y;
    makeProblem(x, y, 42);

    ModelOptions options;
    options.frequencyFeature = 1;
    auto model = makeModel(GetParam(), options);
    model->fit(x, y);

    std::stringstream buffer;
    saveModel(buffer, *model);
    const auto loaded = loadModel(buffer);

    ASSERT_EQ(loaded->type(), model->type());
    EXPECT_EQ(loaded->numParameters(), model->numParameters());
    for (size_t r = 0; r < x.rows(); r += 13) {
        EXPECT_DOUBLE_EQ(loaded->predict(x.row(r)),
                         model->predict(x.row(r)))
            << "row " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Types, SerializeRoundTrip,
    ::testing::ValuesIn(allModelTypes()),
    [](const ::testing::TestParamInfo<ModelType> &info) {
        return modelTypeName(info.param) == "piecewise-linear"
                   ? std::string("piecewise")
                   : modelTypeName(info.param);
    });

TEST(Serialize, FileRoundTrip)
{
    Matrix x;
    std::vector<double> y;
    makeProblem(x, y, 7);
    ModelOptions options;
    options.frequencyFeature = 1;
    auto model = makeModel(ModelType::Quadratic, options);
    model->fit(x, y);

    const std::string path = ::testing::TempDir() + "model.txt";
    saveModelFile(path, *model);
    const auto loaded = loadModelFile(path);
    EXPECT_DOUBLE_EQ(loaded->predict(x.row(3)),
                     model->predict(x.row(3)));
    std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage)
{
    std::stringstream buffer("not-a-model 9");
    EXPECT_RAISES(loadModel(buffer), "not a chaos model");
}

TEST(Serialize, RejectsWrongVersion)
{
    std::stringstream buffer("chaos-model 99\nlinear\n");
    EXPECT_RAISES(loadModel(buffer), "unsupported");
}

TEST(Serialize, RejectsTruncatedBody)
{
    Matrix x;
    std::vector<double> y;
    makeProblem(x, y, 8);
    LinearModel model;
    model.fit(x, y);
    std::stringstream buffer;
    saveModel(buffer, model);
    const std::string text = buffer.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_RAISES(loadModel(truncated), "model file");
}

TEST(Serialize, MissingFileIsRecoverable)
{
    EXPECT_RAISES(loadModelFile("/no/such/model.txt"), "cannot open");
    const auto result = tryLoadModelFile("/no/such/model.txt");
    EXPECT_FALSE(result.hasValue());
    EXPECT_NE(result.error().find("cannot open"), std::string::npos);
}

TEST(Serialize, SavingUnfittedModelPanics)
{
    LinearModel model;
    std::stringstream buffer;
    EXPECT_DEATH(saveModel(buffer, model), "before fit");
}

} // namespace
} // namespace chaos
