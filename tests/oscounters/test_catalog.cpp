/**
 * @file
 * Tests for the counter catalog: structure, Table II coverage, and
 * the redundancy relationships Algorithm 1 depends on.
 */
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "oscounters/counter_catalog.hpp"

namespace chaos {
namespace {

MachineState
typicalState(const MachineSpec &spec)
{
    MachineState state;
    state.timeSeconds = 100.0;
    state.uptimeSeconds = 90000.0;
    state.coreUtilization.assign(spec.numCores, 0.6);
    state.coreFrequencyMhz.assign(spec.numCores,
                                  spec.maxFrequencyMhz());
    state.disks.resize(spec.numDisks);
    for (auto &disk : state.disks) {
        disk.utilization = 0.4;
        disk.readBytes = 30e6;
        disk.writeBytes = 10e6;
        disk.seekRate = 50.0;
    }
    state.netRxBytes = 20e6;
    state.netTxBytes = 15e6;
    state.committedBytes = 1.5e9;
    state.pagesPerSec = 150.0;
    state.pageFaultsPerSec = 2000.0;
    state.cacheFaultsPerSec = 800.0;
    state.pageReadsPerSec = 50.0;
    state.poolNonpagedAllocs = 10000.0;
    state.memIntensity = 0.4;
    state.dataMapPinsPerSec = 200.0;
    state.pinReadsPerSec = 250.0;
    state.pinReadHitPct = 95.0;
    state.copyReadsPerSec = 400.0;
    state.fastReadsNotPossiblePerSec = 20.0;
    state.lazyWriteFlushesPerSec = 10.0;
    state.processPageFaultsPerSec = 1800.0;
    state.processIoDataBytesPerSec = 50e6;
    state.pageFileBytesPeak = 2.0e9;
    state.interruptsPerSec = 3000.0;
    state.dpcTimePct = 2.0;
    return state;
}

TEST(Catalog, HasPrescreenedScale)
{
    // The paper pre-screens ~10,000 counters to ~250; our catalog is
    // that screened set (order 10^2).
    const auto &catalog = CounterCatalog::instance();
    EXPECT_GE(catalog.size(), 150u);
    EXPECT_LE(catalog.size(), 300u);
}

TEST(Catalog, NamesAreUnique)
{
    const auto &catalog = CounterCatalog::instance();
    std::set<std::string> names;
    for (const auto &def : catalog.all())
        EXPECT_TRUE(names.insert(def.name).second)
            << "duplicate counter " << def.name;
}

TEST(Catalog, AllSevenPaperCategoriesPresent)
{
    const auto &catalog = CounterCatalog::instance();
    for (CounterCategory category :
         {CounterCategory::Processor, CounterCategory::Memory,
          CounterCategory::PhysicalDisk, CounterCategory::Network,
          CounterCategory::FileSystemCache, CounterCategory::Process,
          CounterCategory::JobObjectDetails,
          CounterCategory::ProcessorPerformance}) {
        EXPECT_FALSE(catalog.inCategory(category).empty())
            << counterCategoryName(category);
    }
}

TEST(Catalog, TableTwoCountersExist)
{
    // Every counter named in the paper's Table II must be present.
    const auto &catalog = CounterCatalog::instance();
    const char *table2[] = {
        "IPv4\\Datagrams/sec",
        "Memory\\Page Faults/sec",
        "Memory\\Committed Bytes",
        "Memory\\Cache Faults/sec",
        "Memory\\Pages/sec",
        "Memory\\Page Reads/sec",
        "Memory\\Pool Nonpaged Allocs",
        "PhysicalDisk(_Total)\\% Disk Time",
        "PhysicalDisk(_Total)\\Disk Bytes/sec",
        "Process(_Total)\\Page Faults/sec",
        "Process(_Total)\\IO Data Bytes/sec",
        "Processor(_Total)\\% Processor Time",
        "Processor(_Total)\\Interrupts/sec",
        "Processor(_Total)\\% DPC Time",
        "Cache\\Data Map Pins/sec",
        "Cache\\Pin Reads/sec",
        "Cache\\Pin Read Hits %",
        "Cache\\Copy Reads/sec",
        "Cache\\Fast Reads Not Possible/sec",
        "Cache\\Lazy Write Flushes/sec",
        "Job Object Details(_Total)\\Page File Bytes Peak",
        "Processor Performance\\Processor_0 Frequency",
    };
    for (const char *name : table2)
        EXPECT_TRUE(catalog.contains(name)) << name;
}

TEST(Catalog, IndexOfRoundTrips)
{
    const auto &catalog = CounterCatalog::instance();
    for (size_t i = 0; i < catalog.size(); i += 7)
        EXPECT_EQ(catalog.indexOf(catalog.def(i).name), i);
}

TEST(Catalog, UnknownNameIsFatal)
{
    EXPECT_RAISES(CounterCatalog::instance().indexOf("No\\Such Counter"),
                  "unknown counter");
}

TEST(Catalog, CoDependenciesReferenceRealCounters)
{
    const auto &catalog = CounterCatalog::instance();
    EXPECT_FALSE(catalog.coDependencies().empty());
    for (const auto &dep : catalog.coDependencies()) {
        EXPECT_TRUE(catalog.contains(dep.sum)) << dep.sum;
        EXPECT_GE(dep.parts.size(), 2u);
        for (const auto &part : dep.parts)
            EXPECT_TRUE(catalog.contains(part)) << part;
    }
}

class CatalogSamplingTest
    : public ::testing::TestWithParam<MachineClass>
{
  protected:
    MachineSpec spec = machineSpecFor(GetParam());
    MachineState state = typicalState(spec);
    Rng rng{99};
};

TEST_P(CatalogSamplingTest, AllValuesAreFinite)
{
    const auto &catalog = CounterCatalog::instance();
    SampleContext ctx{state, spec, rng, spec.maxFrequencyMhz()};
    for (const auto &def : catalog.all()) {
        const double value = def.compute(ctx);
        EXPECT_TRUE(std::isfinite(value)) << def.name;
    }
}

TEST_P(CatalogSamplingTest, PercentageCountersWithinRange)
{
    const auto &catalog = CounterCatalog::instance();
    SampleContext ctx{state, spec, rng, spec.maxFrequencyMhz()};
    for (const auto &def : catalog.all()) {
        if (def.name.find("%") == std::string::npos)
            continue;
        const double value = def.compute(ctx);
        EXPECT_GE(value, 0.0) << def.name;
        EXPECT_LE(value, 100.0 * spec.numCores) << def.name;
    }
}

TEST_P(CatalogSamplingTest, CoDependentSumsHoldExactly)
{
    // The a = b + c relationships step 2 exploits must hold in the
    // sampled data, not just on paper.
    const auto &catalog = CounterCatalog::instance();
    SampleContext ctx{state, spec, rng, spec.maxFrequencyMhz()};
    for (const auto &dep : catalog.coDependencies()) {
        const double sum =
            catalog.def(catalog.indexOf(dep.sum)).compute(ctx);
        double parts = 0.0;
        for (const auto &part : dep.parts)
            parts += catalog.def(catalog.indexOf(part)).compute(ctx);
        EXPECT_NEAR(sum, parts, 1e-6 * std::max(1.0, std::fabs(sum)))
            << dep.sum;
    }
}

TEST_P(CatalogSamplingTest, MissingHardwareCountersReadZero)
{
    const auto &catalog = CounterCatalog::instance();
    SampleContext ctx{state, spec, rng, spec.maxFrequencyMhz()};
    // Cores beyond the platform's count read 0 utilization.
    for (size_t c = spec.numCores; c < 8; ++c) {
        const std::string name = "Processor(" + std::to_string(c) +
                                 ")\\% Processor Time";
        EXPECT_DOUBLE_EQ(
            catalog.def(catalog.indexOf(name)).compute(ctx), 0.0);
    }
    // Disks beyond the platform's count read 0 bytes.
    for (size_t d = spec.numDisks; d < 6; ++d) {
        const std::string name = "PhysicalDisk(" + std::to_string(d) +
                                 ")\\Disk Bytes/sec";
        EXPECT_DOUBLE_EQ(
            catalog.def(catalog.indexOf(name)).compute(ctx), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, CatalogSamplingTest,
    ::testing::ValuesIn(allMachineClasses()),
    [](const ::testing::TestParamInfo<MachineClass> &info) {
        return machineClassName(info.param);
    });

TEST(Catalog, FrequencyCounterReflectsState)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    MachineState state = typicalState(spec);
    state.coreFrequencyMhz = {800.0, 1600.0};
    Rng rng(1);
    SampleContext ctx{state, spec, rng, 2260.0};

    const auto &catalog = CounterCatalog::instance();
    EXPECT_DOUBLE_EQ(
        catalog
            .def(catalog.indexOf(
                "Processor Performance\\Processor_0 Frequency"))
            .compute(ctx),
        800.0);
    EXPECT_DOUBLE_EQ(
        catalog
            .def(catalog.indexOf(
                "Processor Performance\\Processor_1 Frequency"))
            .compute(ctx),
        1600.0);
    // The lag counter exposes the context's previous frequency.
    EXPECT_DOUBLE_EQ(
        catalog
            .def(catalog.indexOf(
                "Processor Performance\\Processor_0 Frequency Lag1"))
            .compute(ctx),
        2260.0);
}

} // namespace
} // namespace chaos
