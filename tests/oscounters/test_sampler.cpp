/**
 * @file
 * Tests for the per-machine counter sampler.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "oscounters/sampler.hpp"
#include "sim/machine.hpp"

namespace chaos {
namespace {

TEST(Sampler, ProducesOneValuePerCatalogCounter)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine(spec, 0, 1);
    CounterSampler sampler(spec, Rng(2));
    const MachineTick tick = machine.step(ActivityDemand{});
    const auto values = sampler.sample(tick.state);
    EXPECT_EQ(values.size(), CounterCatalog::instance().size());
    for (double v : values)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Sampler, SameSeedSameValues)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Opteron);
    Machine machine(spec, 0, 3);
    const MachineTick tick = machine.step(ActivityDemand{});

    CounterSampler a(spec, Rng(7));
    CounterSampler b(spec, Rng(7));
    EXPECT_EQ(a.sample(tick.state), b.sample(tick.state));
}

TEST(Sampler, LagCounterTracksPreviousFrequency)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    const auto &catalog = CounterCatalog::instance();
    const size_t lag_idx = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency Lag1");
    const size_t freq_idx = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency");

    CounterSampler sampler(spec, Rng(8));
    Machine machine(spec, 0, 9);

    // First sample: lag primed with the max frequency.
    ActivityDemand busy;
    busy.cpuCoreSeconds = 2.0;
    auto tick = machine.step(busy);
    auto values = sampler.sample(tick.state);
    EXPECT_DOUBLE_EQ(values[lag_idx], spec.maxFrequencyMhz());

    // Afterwards: lag equals the previous sample's frequency.
    double prev_freq = values[freq_idx];
    for (int t = 0; t < 20; ++t) {
        ActivityDemand demand;
        demand.cpuCoreSeconds = (t % 4 == 0) ? 2.0 : 0.0;
        tick = machine.step(demand);
        values = sampler.sample(tick.state);
        EXPECT_DOUBLE_EQ(values[lag_idx], prev_freq) << "t=" << t;
        prev_freq = values[freq_idx];
    }
}

TEST(Sampler, ResetReprimesLagCounter)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    const auto &catalog = CounterCatalog::instance();
    const size_t lag_idx = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency Lag1");

    CounterSampler sampler(spec, Rng(10));
    Machine machine(spec, 0, 11);
    // Drive the machine to a low P-state.
    for (int t = 0; t < 10; ++t)
        sampler.sample(machine.step(ActivityDemand{}).state);

    sampler.reset();
    const auto values =
        sampler.sample(machine.step(ActivityDemand{}).state);
    EXPECT_DOUBLE_EQ(values[lag_idx], spec.maxFrequencyMhz());
}

TEST(Sampler, LagChainShiftsThroughThreeSeconds)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    const auto &catalog = CounterCatalog::instance();
    const size_t freq_idx = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency");
    const size_t lag1 = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency Lag1");
    const size_t lag2 = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency Lag2");
    const size_t lag3 = catalog.indexOf(
        "Processor Performance\\Processor_0 Frequency Lag3");

    CounterSampler sampler(spec, Rng(21));
    Machine machine(spec, 0, 22);
    std::vector<double> freq_history;
    for (int t = 0; t < 25; ++t) {
        ActivityDemand demand;
        demand.cpuCoreSeconds = (t % 3 == 0) ? 2.0 : 0.0;
        const auto values =
            sampler.sample(machine.step(demand).state);
        if (freq_history.size() >= 3) {
            const size_t n = freq_history.size();
            EXPECT_DOUBLE_EQ(values[lag1], freq_history[n - 1]);
            EXPECT_DOUBLE_EQ(values[lag2], freq_history[n - 2]);
            EXPECT_DOUBLE_EQ(values[lag3], freq_history[n - 3]);
        }
        freq_history.push_back(values[freq_idx]);
    }
}

TEST(Sampler, BusyMachineShowsHigherUtilizationCounter)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    const auto &catalog = CounterCatalog::instance();
    const size_t util_idx =
        catalog.indexOf("Processor(_Total)\\% Processor Time");

    Machine machine(spec, 0, 12);
    CounterSampler sampler(spec, Rng(13));

    const auto idle_values =
        sampler.sample(machine.step(ActivityDemand{}).state);
    ActivityDemand busy;
    busy.cpuCoreSeconds = 2.0;
    const auto busy_values =
        sampler.sample(machine.step(busy).state);
    EXPECT_GT(busy_values[util_idx], idle_values[util_idx] + 30.0);
}

} // namespace
} // namespace chaos
