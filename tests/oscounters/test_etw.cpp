/**
 * @file
 * Tests for the ETW-style logging session.
 */
#include <gtest/gtest.h>

#include "oscounters/etw_session.hpp"

namespace chaos {
namespace {

TEST(EtwSession, AccumulatesOneRecordPerTick)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine(spec, 0, 1);
    PowerMeter meter{Rng(2)};
    EtwSession session(machine, meter, 3);

    for (int t = 0; t < 25; ++t)
        session.tick(ActivityDemand{});
    EXPECT_EQ(session.records().size(), 25u);
    for (size_t t = 0; t < 25; ++t) {
        EXPECT_DOUBLE_EQ(session.records()[t].timeSeconds,
                         static_cast<double>(t));
        EXPECT_EQ(session.records()[t].counters.size(),
                  CounterCatalog::instance().size());
        EXPECT_GT(session.records()[t].measuredPowerW, 0.0);
    }
}

TEST(EtwSession, MeasuredPowerIsPlausible)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    Machine machine(spec, 0, 4);
    PowerMeter meter{Rng(5)};
    EtwSession session(machine, meter, 6);

    ActivityDemand busy;
    busy.cpuCoreSeconds = 2.0;
    busy.memIntensity = 0.5;
    for (int t = 0; t < 20; ++t)
        session.tick(busy);

    for (const auto &record : session.records()) {
        EXPECT_GT(record.measuredPowerW, spec.idlePowerW * 0.8);
        EXPECT_LT(record.measuredPowerW, spec.maxPowerW * 1.2);
    }
}

TEST(EtwSession, StartNewRunClearsLogAndResetsMachine)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine(spec, 0, 7);
    PowerMeter meter{Rng(8)};
    EtwSession session(machine, meter, 9);

    for (int t = 0; t < 10; ++t)
        session.tick(ActivityDemand{});
    session.startNewRun();
    EXPECT_TRUE(session.records().empty());

    const EtwRecord &first = session.tick(ActivityDemand{});
    EXPECT_DOUBLE_EQ(first.timeSeconds, 0.0);
}

TEST(EtwSession, TickReturnsTheRecordJustLogged)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine(spec, 0, 10);
    PowerMeter meter{Rng(11)};
    EtwSession session(machine, meter, 12);
    const EtwRecord &record = session.tick(ActivityDemand{});
    EXPECT_EQ(&record, &session.records().back());
}

} // namespace
} // namespace chaos
