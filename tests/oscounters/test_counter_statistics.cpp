/**
 * @file
 * Statistical properties of the sampled counters over real runs —
 * the structure Algorithm 1 depends on: correlated siblings above
 * the 0.95 threshold, exact co-dependent sums, activity counters
 * that track power, and junk counters that do not.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/correlation.hpp"
#include "trace/dataset.hpp"
#include "workloads/standard_workloads.hpp"

namespace chaos {
namespace {

/** One short Sort run on a 2-machine Core2 cluster, as a dataset. */
const Dataset &
sortDataset()
{
    static const Dataset dataset = [] {
        Cluster cluster =
            Cluster::homogeneous(MachineClass::Core2, 2, 808);
        SortWorkload workload;
        RunConfig config;
        config.durationScale = 0.5;
        std::vector<RunResult> runs;
        runs.push_back(runWorkload(cluster, workload, 17, 0, config));
        return Dataset::fromRunResults(runs);
    }();
    return dataset;
}

double
columnCorrelation(const Dataset &data, const std::string &a,
                  const std::string &b)
{
    return pearson(data.features().column(data.featureIndex(a)),
                   data.features().column(data.featureIndex(b)));
}

TEST(CounterStatistics, PerCoreAndTotalUtilizationAreSiblings)
{
    // Step 1 of Algorithm 1 exists because of pairs like these.
    const double r = columnCorrelation(
        sortDataset(), "Processor(0)\\% Processor Time",
        "Processor(_Total)\\% Processor Time");
    EXPECT_GT(r, 0.9);
}

TEST(CounterStatistics, PacketsTrackBytes)
{
    const double r = columnCorrelation(
        sortDataset(), "Network Interface(nic0)\\Packets Received/sec",
        "Network Interface(nic0)\\Bytes Received/sec");
    EXPECT_GT(r, 0.95);
}

TEST(CounterStatistics, CoDependentSumHoldsOverWholeRun)
{
    const Dataset &data = sortDataset();
    const auto total = data.features().column(data.featureIndex(
        "PhysicalDisk(_Total)\\Disk Bytes/sec"));
    const auto reads = data.features().column(data.featureIndex(
        "PhysicalDisk(_Total)\\Disk Read Bytes/sec"));
    const auto writes = data.features().column(data.featureIndex(
        "PhysicalDisk(_Total)\\Disk Write Bytes/sec"));
    for (size_t r = 0; r < total.size(); r += 11) {
        EXPECT_NEAR(total[r], reads[r] + writes[r],
                    1e-6 * std::max(1.0, total[r]));
    }
}

TEST(CounterStatistics, UtilizationCorrelatesWithPower)
{
    const Dataset &data = sortDataset();
    const double r = pearson(
        data.features().column(data.featureIndex(
            "Processor(_Total)\\% Processor Time")),
        data.powerW());
    EXPECT_GT(r, 0.6);
}

TEST(CounterStatistics, JunkCountersDoNotTrackPower)
{
    const Dataset &data = sortDataset();
    for (const char *junk :
         {"Objects\\Mutexes", "System\\Processes",
          "Process(_Total)\\Handle Count"}) {
        const double r = pearson(
            data.features().column(data.featureIndex(junk)),
            data.powerW());
        EXPECT_LT(std::fabs(r), 0.4) << junk;
    }
}

TEST(CounterStatistics, MissingHardwareColumnsAreConstantZero)
{
    // Core2 has 2 cores and 1 disk: the phantom instances are
    // constant and will be dropped by the constant-column screen.
    const Dataset &data = sortDataset();
    const auto constants = data.constantColumns();
    auto is_constant = [&](const std::string &name) {
        const size_t idx = data.featureIndex(name);
        return std::find(constants.begin(), constants.end(), idx) !=
               constants.end();
    };
    EXPECT_TRUE(is_constant("Processor(7)\\% Processor Time"));
    EXPECT_TRUE(is_constant("PhysicalDisk(5)\\Disk Bytes/sec"));
    EXPECT_FALSE(is_constant("Processor(0)\\% Processor Time"));
}

TEST(CounterStatistics, DiskCountersDecoupleFromCpuWithinSort)
{
    // I/O burstiness keeps disk traffic from being a pure proxy of
    // utilization (otherwise disk counters could never be selected).
    const double r = columnCorrelation(
        sortDataset(), "PhysicalDisk(_Total)\\Disk Bytes/sec",
        "Processor(_Total)\\% Processor Time");
    EXPECT_LT(std::fabs(r), 0.9);
}

TEST(CounterStatistics, FrequencyIsDiscretePStates)
{
    const Dataset &data = sortDataset();
    const auto freqs = data.features().column(data.featureIndex(
        "Processor Performance\\Processor_0 Frequency"));
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    for (size_t r = 0; r < freqs.size(); r += 7) {
        bool valid = freqs[r] == 0.0;
        for (double p : spec.pStatesMhz)
            valid = valid || freqs[r] == p;
        EXPECT_TRUE(valid) << freqs[r];
    }
}

} // namespace
} // namespace chaos
