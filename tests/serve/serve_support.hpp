/**
 * @file
 * Shared plumbing for the serving-subsystem tests: a cheap deployable
 * machine model over two real catalog counters, and catalog-row
 * builders that exercise it.
 */
#ifndef CHAOS_TESTS_SERVE_SERVE_SUPPORT_HPP
#define CHAOS_TESTS_SERVE_SERVE_SUPPORT_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/cluster_model.hpp"
#include "models/linear.hpp"
#include "oscounters/counter_catalog.hpp"
#include "util/random.hpp"

namespace chaos {
namespace serve_testing {

/** The two catalog counters every test model consumes. */
inline const std::vector<std::string> &
testCounters()
{
    static const std::vector<std::string> names = {
        "Processor(0)\\% Processor Time",
        "Processor(1)\\% Processor Time",
    };
    return names;
}

/**
 * Fit a linear model on synthetic utilization data: roughly
 * baseW + 0.1*u0 + 0.08*u1 watts. Different @p baseW values yield
 * models whose predictions differ by tens of watts, which hot-swap
 * tests rely on.
 */
inline MachinePowerModel
makeTestModel(uint64_t seed, double baseW = 25.0)
{
    Rng rng(seed);
    const size_t n = 200;
    Matrix x(n, 2);
    std::vector<double> y(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(0.0, 100.0);
        x(i, 1) = rng.uniform(0.0, 100.0);
        y[i] = baseW + 0.1 * x(i, 0) + 0.08 * x(i, 1) +
               rng.normal(0.0, 0.05);
    }
    auto model = std::make_shared<LinearModel>();
    model->fit(x, y);
    return MachinePowerModel::fromParts(
        FeatureSet{"serve-test", testCounters()}, std::move(model));
}

/** Full-catalog row with the two test counters set to @p u0, @p u1. */
inline std::vector<double>
catalogRow(double u0, double u1)
{
    const auto &catalog = CounterCatalog::instance();
    std::vector<double> row(catalog.size(), 0.0);
    row[catalog.indexOf(testCounters()[0])] = u0;
    row[catalog.indexOf(testCounters()[1])] = u1;
    return row;
}

} // namespace serve_testing
} // namespace chaos

#endif // CHAOS_TESTS_SERVE_SERVE_SUPPORT_HPP
