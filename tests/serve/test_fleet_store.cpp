/**
 * @file
 * Tests for fleet manifest persistence: round trips, file:line error
 * context on malformed manifests, and relative model-path resolution.
 */
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "serve_support.hpp"

#include "core/model_store.hpp"
#include "serve/fleet_store.hpp"

namespace chaos::serve {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

void
writeText(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

TEST(FleetStore, ManifestRoundTrip)
{
    const std::string path = tempPath("fleet_roundtrip.txt");
    saveFleetManifest(path, {{"web1", "models/web.txt"},
                             {"db1", "/abs/db.txt"}});
    const std::vector<FleetMachineRef> fleet =
        loadFleetManifest(path);
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet[0].id, "web1");
    EXPECT_EQ(fleet[0].modelPath, "models/web.txt");
    EXPECT_EQ(fleet[1].id, "db1");
    EXPECT_EQ(fleet[1].modelPath, "/abs/db.txt");
    std::remove(path.c_str());
}

TEST(FleetStore, RejectsBadMagicAndVersion)
{
    const std::string path = tempPath("fleet_bad.txt");
    writeText(path, "not-a-manifest 1\nend\n");
    EXPECT_RAISES(loadFleetManifest(path),
                  ":1: not a chaos fleet manifest");
    writeText(path, "chaos-fleet 9\nend\n");
    EXPECT_RAISES(loadFleetManifest(path),
                  "unsupported fleet manifest version 9");
    std::remove(path.c_str());
}

TEST(FleetStore, RejectsTruncatedAndMalformedRecords)
{
    const std::string path = tempPath("fleet_trunc.txt");
    // Missing end marker (e.g. a partially written file).
    writeText(path, "chaos-fleet 1\nmachine web1 web.txt\n");
    EXPECT_RAISES(loadFleetManifest(path), "truncated fleet manifest");
    // A record that is not 'machine <id> <path>'.
    writeText(path, "chaos-fleet 1\nhost web1 web.txt\nend\n");
    EXPECT_RAISES(loadFleetManifest(path),
                  ":2: expected 'machine <id> <model-path>'");
    writeText(path, "chaos-fleet 1\nmachine onlyid\nend\n");
    EXPECT_RAISES(loadFleetManifest(path), "truncated machine record");
    std::remove(path.c_str());
}

TEST(FleetStore, RejectsDuplicateMachineIds)
{
    const std::string path = tempPath("fleet_dup.txt");
    writeText(path, "chaos-fleet 1\n"
                    "machine web1 a.txt\n"
                    "machine web1 b.txt\n"
                    "end\n");
    EXPECT_RAISES(loadFleetManifest(path),
                  ":3: duplicate machine id 'web1'");
    std::remove(path.c_str());
}

TEST(FleetStore, MissingFileIsRecoverable)
{
    EXPECT_RAISES(loadFleetManifest("/no/such/fleet.txt"),
                  "cannot open");
}

TEST(FleetStore, LoadsModelsRelativeToManifest)
{
    const std::string dir = ::testing::TempDir();
    const MachinePowerModel model = makeTestModel(51, 40.0);
    saveMachineModelFile(dir + "fleet_member.txt", model);
    const std::string manifest = dir + "fleet_models.txt";
    saveFleetManifest(manifest, {{"m0", "fleet_member.txt"}});

    const std::vector<FleetMachine> fleet =
        loadFleetModels(manifest);
    ASSERT_EQ(fleet.size(), 1u);
    EXPECT_EQ(fleet[0].id, "m0");
    const std::vector<double> row = catalogRow(30, 70);
    EXPECT_DOUBLE_EQ(fleet[0].model.predictFromCatalogRow(row),
                     model.predictFromCatalogRow(row));
    std::remove((dir + "fleet_member.txt").c_str());
    std::remove(manifest.c_str());
}

TEST(FleetStore, LoadModelsReportsBrokenMemberWithPath)
{
    const std::string dir = ::testing::TempDir();
    writeText(dir + "fleet_broken_member.txt", "garbage");
    const std::string manifest = dir + "fleet_broken.txt";
    saveFleetManifest(manifest, {{"m0", "fleet_broken_member.txt"}});
    EXPECT_RAISES(loadFleetModels(manifest),
                  "fleet_broken_member.txt");
    std::remove((dir + "fleet_broken_member.txt").c_str());
    std::remove(manifest.c_str());
}

} // namespace
} // namespace chaos::serve
