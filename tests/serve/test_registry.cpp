/**
 * @file
 * Tests for the sharded estimator registry: registration rules,
 * lock-striped lookup, deterministic enumeration, and model hot-swap
 * semantics.
 */
#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "serve_support.hpp"

#include "serve/registry.hpp"

namespace chaos::serve {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

TEST(EstimatorRegistry, AddAndFind)
{
    EstimatorRegistry registry(4);
    MachineEntry &added = registry.add("m1", makeTestModel(1));
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.find("m1"), &added);
    EXPECT_EQ(registry.find("m2"), nullptr);
    EXPECT_EQ(added.id(), "m1");
}

TEST(EstimatorRegistry, RejectsEmptyAndDuplicateIds)
{
    EstimatorRegistry registry(4);
    EXPECT_RAISES(registry.add("", makeTestModel(1)),
                  "empty machine id");
    registry.add("m1", makeTestModel(1));
    EXPECT_RAISES(registry.add("m1", makeTestModel(2)),
                  "duplicate machine id 'm1'");
    EXPECT_EQ(registry.size(), 1u);
}

TEST(EstimatorRegistry, EnumerationIsSortedById)
{
    EstimatorRegistry registry(4);
    for (const char *id : {"zeta", "alpha", "mid"})
        registry.add(id, makeTestModel(3));

    const std::vector<std::string> ids = registry.ids();
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(ids[0], "alpha");
    EXPECT_EQ(ids[1], "mid");
    EXPECT_EQ(ids[2], "zeta");

    const std::vector<MachineEntry *> entries =
        registry.entriesById();
    ASSERT_EQ(entries.size(), 3u);
    for (size_t i = 0; i < entries.size(); ++i)
        EXPECT_EQ(entries[i]->id(), ids[i]);
}

TEST(EstimatorRegistry, ShardingIsStableAndInRange)
{
    EstimatorRegistry registry(4);
    EXPECT_EQ(registry.numShards(), 4u);
    for (int i = 0; i < 50; ++i) {
        const std::string id = "machine" + std::to_string(i);
        const std::size_t shard = registry.shardOf(id);
        EXPECT_LT(shard, registry.numShards());
        EXPECT_EQ(shard, registry.shardOf(id));
    }
    // Shard count clamps to at least one stripe.
    EstimatorRegistry single(0);
    EXPECT_EQ(single.numShards(), 1u);
    EXPECT_EQ(single.shardOf("anything"), 0u);
}

TEST(EstimatorRegistry, SwapModelRequiresKnownMachine)
{
    EstimatorRegistry registry(2);
    EXPECT_RAISES(registry.swapModel("ghost", makeTestModel(1)),
                  "unknown machine 'ghost'");
}

TEST(EstimatorRegistry, SwapModelChangesPredictionsKeepsState)
{
    EstimatorRegistry registry(2);
    MachineEntry &entry = registry.add("m1", makeTestModel(1, 25.0));

    const std::vector<double> row = catalogRow(40.0, 60.0);
    const double before = entry.withEstimator(
        [&](OnlinePowerEstimator &e) { return e.estimate(row); });

    registry.swapModel("m1", makeTestModel(1, 100.0));

    const double after = entry.withEstimator(
        [&](OnlinePowerEstimator &e) { return e.estimate(row); });
    // Same inputs, ~75 W heavier model: predictions must move.
    EXPECT_GT(after, before + 50.0);
    // Sample count and health carry across the swap.
    entry.withEstimator([&](OnlinePowerEstimator &e) {
        EXPECT_EQ(e.samples(), 2u);
        EXPECT_EQ(e.health(), MachineHealth::Healthy);
    });
}

} // namespace
} // namespace chaos::serve
