/**
 * @file
 * Tests for the streaming fleet server: exact agreement with a serial
 * estimator, threaded drain accounting, the drop-oldest backpressure
 * path, snapshots, and model hot-swap under an active producer.
 */
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "serve_support.hpp"

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/stage_metrics.hpp"
#include "util/parallel.hpp"

namespace chaos::serve {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

TEST(FleetServer, DrainOnceMatchesSerialEstimator)
{
    FleetServerConfig config;
    config.numShards = 2;
    FleetServer server(config);
    std::vector<MachineEntry *> entries;
    for (int m = 0; m < 3; ++m) {
        entries.push_back(&server.addMachine(
            "m" + std::to_string(m), makeTestModel(7)));
    }

    // The reference: one serial estimator per machine, fed the exact
    // same rows in the same per-machine order.
    std::vector<OnlinePowerEstimator> serial;
    for (int m = 0; m < 3; ++m)
        serial.emplace_back(makeTestModel(7));

    for (int t = 0; t < 40; ++t) {
        for (int m = 0; m < 3; ++m) {
            const std::vector<double> row =
                catalogRow(t * 2.0 + m, 100.0 - t - m);
            const double metered = 25.0 + 0.2 * t;
            server.submitTo(*entries[m], std::vector<double>(row),
                            metered);
            serial[m].estimateWithReference(row, metered);
        }
    }
    while (server.drainOnce() > 0) {
    }

    EXPECT_EQ(server.submitted(), 120u);
    EXPECT_EQ(server.processed(), 120u);
    EXPECT_EQ(server.dropped(), 0u);
    for (int m = 0; m < 3; ++m) {
        entries[m]->withEstimator([&](OnlinePowerEstimator &e) {
            // Bitwise agreement: the served path runs each machine's
            // samples serially in arrival order.
            EXPECT_EQ(e.lastEstimateW(), serial[m].lastEstimateW());
            EXPECT_EQ(e.meanEstimateW(), serial[m].meanEstimateW());
            EXPECT_EQ(e.samples(), serial[m].samples());
            EXPECT_EQ(e.residuals().mean(),
                      serial[m].residuals().mean());
        });
    }
}

TEST(FleetServer, ThreadedDrainProcessesEverySample)
{
    setGlobalThreadCount(2);
    FleetServer server;
    std::vector<MachineEntry *> entries;
    for (int m = 0; m < 4; ++m) {
        entries.push_back(&server.addMachine(
            "m" + std::to_string(m), makeTestModel(11)));
    }
    server.start();

    const size_t perProducer = 2000;
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = 0; i < perProducer; ++i) {
                server.submitTo(*entries[p],
                                catalogRow(i % 100, p * 10.0));
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    server.waitIdle();
    server.stop();
    setGlobalThreadCount(1);

    EXPECT_EQ(server.submitted(), 4 * perProducer);
    EXPECT_EQ(server.processed() + server.dropped(),
              server.submitted());
    // Capacity (4 shards x 8192) far exceeds the burst: no drops.
    EXPECT_EQ(server.dropped(), 0u);
    for (int m = 0; m < 4; ++m) {
        entries[m]->withEstimator([&](OnlinePowerEstimator &e) {
            EXPECT_EQ(e.samples(), perProducer);
        });
    }
}

TEST(FleetServer, ConcurrentDrainersNeverAliasScratch)
{
    // Multiple threads calling drainOnce() concurrently with live
    // producers: drainMu must serialize the passes so the shared
    // drain scratch (batch, grouping, views, watts) and the
    // estimators' member scratch (batchRows, rowScratch) are never
    // aliased by two passes at once. Run under TSan (tier-1's
    // CHAOS_SANITIZE=thread stage) this is the aliasing proof; in a
    // plain build it still checks exact sample accounting.
    setGlobalThreadCount(2);
    FleetServer server;
    std::vector<MachineEntry *> entries;
    for (int m = 0; m < 3; ++m) {
        entries.push_back(&server.addMachine(
            "m" + std::to_string(m), makeTestModel(5)));
    }

    const size_t perProducer = 3000;
    std::atomic<bool> producing{true};
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
            for (size_t i = 0; i < perProducer; ++i) {
                server.submitTo(*entries[(p + i) % 3],
                                catalogRow(i % 100, p * 10.0));
            }
        });
    }
    std::vector<std::thread> drainers;
    for (int d = 0; d < 3; ++d) {
        drainers.emplace_back([&] {
            while (producing.load()) {
                if (server.drainOnce() == 0)
                    std::this_thread::yield();
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    producing.store(false);
    for (auto &drainer : drainers)
        drainer.join();
    while (server.drainOnce() > 0) {
    }
    setGlobalThreadCount(1);

    EXPECT_EQ(server.submitted(), 2 * perProducer);
    EXPECT_EQ(server.processed() + server.dropped(),
              server.submitted());
    EXPECT_EQ(server.dropped(), 0u);
    uint64_t perMachine = 0;
    for (int m = 0; m < 3; ++m) {
        entries[m]->withEstimator([&](OnlinePowerEstimator &e) {
            perMachine += e.samples();
        });
    }
    EXPECT_EQ(perMachine, 2 * perProducer);
}

TEST(FleetServer, DropOldestEngagesAndIsCounted)
{
    obs::EventLog::instance().clear();
    FleetServerConfig config;
    config.numShards = 1;
    config.queueCapacity = 4;
    FleetServer server(config);
    MachineEntry &entry = server.addMachine("m0", makeTestModel(3));

    // No drainer running: pushes 5..10 evict the oldest each time.
    for (int i = 0; i < 10; ++i)
        server.submitTo(entry, catalogRow(i, i));
    EXPECT_EQ(server.submitted(), 10u);
    EXPECT_EQ(server.dropped(), 6u);

    while (server.drainOnce() > 0) {
    }
    EXPECT_EQ(server.processed(), 4u);
    EXPECT_EQ(server.processed() + server.dropped(),
              server.submitted());

    // One backpressure event for the whole saturation episode.
    size_t backpressureEvents = 0;
    for (const obs::Event &event :
         obs::EventLog::instance().snapshot()) {
        if (event.kind == obs::EventKind::Backpressure) {
            ++backpressureEvents;
            EXPECT_EQ(event.source, "m0");
        }
    }
    EXPECT_EQ(backpressureEvents, 1u);

    const FleetSnapshot snap = server.snapshot();
    EXPECT_EQ(snap.samplesDropped, 6u);
    EXPECT_EQ(snap.samplesProcessed, 4u);
}

/**
 * Backpressure loss is attributed to the machine whose sample was
 * evicted, and the per-machine counts surface in fleet snapshots —
 * so "who lost telemetry" is answerable, not just "how much".
 */
TEST(FleetServer, DropCountsAreAttributedPerMachine)
{
    FleetServerConfig config;
    config.numShards = 1;
    config.queueCapacity = 4;
    FleetServer server(config);
    MachineEntry &first = server.addMachine("m0", makeTestModel(3));
    MachineEntry &second = server.addMachine("m1", makeTestModel(3));

    // No drainer: 3 m0 samples then 7 m1 samples through a 4-deep
    // queue evict m0's three and m1's first three, oldest first.
    for (int i = 0; i < 3; ++i)
        server.submitTo(first, catalogRow(i, i));
    for (int i = 0; i < 7; ++i)
        server.submitTo(second, catalogRow(i, i));
    EXPECT_EQ(server.dropped(), 6u);
    EXPECT_EQ(first.droppedSamples(), 3u);
    EXPECT_EQ(second.droppedSamples(), 3u);

    while (server.drainOnce() > 0) {
    }
    const FleetSnapshot snap = server.snapshot();
    ASSERT_EQ(snap.machines.size(), 2u);
    for (const MachineSnapshot &machine : snap.machines) {
        EXPECT_EQ(machine.dropped, 3u) << machine.id;
    }
    EXPECT_EQ(snap.samplesDropped, 6u);
}

TEST(FleetServer, SubmitToUnknownMachineRaises)
{
    FleetServer server;
    server.addMachine("known", makeTestModel(5));
    EXPECT_RAISES(server.submit("ghost", catalogRow(1, 2)),
                  "unknown machine id 'ghost'");
}

TEST(FleetServer, SnapshotAggregatesFleet)
{
    FleetServer server;
    MachineEntry &a = server.addMachine("a", makeTestModel(5, 25.0));
    MachineEntry &b = server.addMachine("b", makeTestModel(5, 80.0));
    server.submitTo(a, catalogRow(50, 50));
    server.submitTo(b, catalogRow(50, 50));
    while (server.drainOnce() > 0) {
    }

    const FleetSnapshot snap = server.snapshot();
    ASSERT_EQ(snap.machines.size(), 2u);
    EXPECT_EQ(snap.machines[0].id, "a");
    EXPECT_EQ(snap.machines[1].id, "b");
    EXPECT_DOUBLE_EQ(snap.clusterW, snap.machines[0].watts +
                                        snap.machines[1].watts);
    EXPECT_GT(snap.machines[1].watts, snap.machines[0].watts + 30.0);
    EXPECT_EQ(snap.healthy, 2u);
    EXPECT_EQ(snap.degraded + snap.stale + snap.lost, 0u);
    EXPECT_EQ(snap.samplesProcessed, 2u);

    // Sequence numbers advance per snapshot; JSON stays well-formed.
    const FleetSnapshot next = server.snapshot();
    EXPECT_EQ(next.seq, snap.seq + 1);
    EXPECT_FALSE(snap.toJson().empty());
    EXPECT_EQ(snap.toJson().front(), '{');
    EXPECT_EQ(snap.toJson().back(), '}');
}

TEST(FleetServer, PeriodicSnapshotsEveryNSamples)
{
    FleetServerConfig config;
    config.snapshotEverySamples = 10;
    FleetServer server(config);
    MachineEntry &entry = server.addMachine("m0", makeTestModel(9));

    size_t callbacks = 0;
    server.onSnapshot([&](const FleetSnapshot &) { ++callbacks; });
    for (int i = 0; i < 35; ++i)
        server.submitTo(entry, catalogRow(i, i));
    while (server.drainOnce() > 0) {
    }

    EXPECT_EQ(server.snapshots().size(), 3u);
    EXPECT_EQ(callbacks, 3u);
}

TEST(FleetServer, HotSwapUnderActiveProducerLosesNothing)
{
    setGlobalThreadCount(2);
    FleetServer server;
    MachineEntry &entry =
        server.addMachine("m0", makeTestModel(13, 25.0));
    server.start();

    const std::vector<double> row = catalogRow(50.0, 50.0);
    std::atomic<bool> swapped{false};
    std::thread producer([&] {
        for (int i = 0; i < 6000; ++i) {
            server.submitTo(entry, std::vector<double>(row));
            if (i == 3000) {
                // Swap mid-stream, while the drainer is active.
                server.swapModel("m0", makeTestModel(13, 100.0));
                swapped.store(true);
            }
        }
    });
    producer.join();
    server.waitIdle();
    server.stop();
    setGlobalThreadCount(1);

    ASSERT_TRUE(swapped.load());
    // Not a sample dropped or duplicated across the swap...
    EXPECT_EQ(server.submitted(), 6000u);
    EXPECT_EQ(server.processed(), 6000u);
    EXPECT_EQ(server.dropped(), 0u);
    entry.withEstimator([&](OnlinePowerEstimator &e) {
        EXPECT_EQ(e.samples(), 6000u);
        // ...and the new model is what serves afterwards: the last
        // estimate reflects the ~75 W heavier swapped-in model.
        EXPECT_GT(e.lastEstimateW(), 90.0);
    });
}

TEST(FleetServer, StopFlushesPendingSamples)
{
    FleetServer server;
    MachineEntry &entry = server.addMachine("m0", makeTestModel(17));
    server.start();
    for (int i = 0; i < 500; ++i)
        server.submitTo(entry, catalogRow(i % 100, 50));
    // stop() without waitIdle(): the flush must still account for
    // every submitted sample.
    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.processed() + server.dropped(),
              server.submitted());
}

TEST(FleetServer, StageHistogramsTrackDrainedSamples)
{
    // Stage histograms are process-global, so assert on deltas.
    StageMetrics &stages = StageMetrics::get();
    const std::uint64_t wait0 = stages.queueWaitUs.count();
    const std::uint64_t e2e0 = stages.e2eUs.count();
    const std::uint64_t batch0 = stages.drainBatchUs.count();
    const std::uint64_t predict0 = stages.predictUs.count();

    setStageTracingEnabled(true);
    FleetServerConfig config;
    config.numShards = 1;
    FleetServer server(config);
    MachineEntry &entry = server.addMachine("m0", makeTestModel(5));
    for (int t = 0; t < 32; ++t)
        server.submitTo(entry, catalogRow(t * 1.0, 50.0), 25.0);
    while (server.drainOnce() > 0) {
    }

    // Every drained sample lands one queue-wait and one end-to-end
    // observation; batch/predict count once per drain pass.
    EXPECT_EQ(stages.queueWaitUs.count() - wait0, 32u);
    EXPECT_EQ(stages.e2eUs.count() - e2e0, 32u);
    EXPECT_GT(stages.drainBatchUs.count(), batch0);
    EXPECT_GT(stages.predictUs.count(), predict0);

    // The JSON surface always parses and exposes the five stages.
    obs::JsonValue latency;
    ASSERT_TRUE(obs::jsonParse(stageLatencyJson(), latency));
    for (const char *key : {"decode_us", "queue_wait_us",
                            "drain_batch_us", "predict_us", "e2e_us"}) {
        const obs::JsonValue *stage = latency.find(key);
        ASSERT_NE(stage, nullptr) << key;
        for (const char *field : {"p50", "p99", "count"})
            EXPECT_NE(stage->find(field), nullptr) << field;
    }

    // With tracing off, samples are unstamped and drained without
    // touching any stage histogram.
    setStageTracingEnabled(false);
    const std::uint64_t waitOff = stages.queueWaitUs.count();
    const std::uint64_t e2eOff = stages.e2eUs.count();
    const std::uint64_t batchOff = stages.drainBatchUs.count();
    for (int t = 0; t < 16; ++t)
        server.submitTo(entry, catalogRow(t * 1.0, 50.0), 25.0);
    while (server.drainOnce() > 0) {
    }
    setStageTracingEnabled(true);
    EXPECT_EQ(stages.queueWaitUs.count(), waitOff);
    EXPECT_EQ(stages.e2eUs.count(), e2eOff);
    EXPECT_EQ(stages.drainBatchUs.count(), batchOff);
    EXPECT_EQ(server.processed(), 48u);
}

} // namespace
} // namespace chaos::serve
