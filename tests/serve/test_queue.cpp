/**
 * @file
 * Tests for the bounded MPSC ingestion queue: FIFO order, the
 * drop-oldest overflow policy, and batch draining.
 */
#include <gtest/gtest.h>

#include "serve/sample_queue.hpp"

namespace chaos::serve {
namespace {

/** Sample tagged with an identity in its first row slot. */
QueuedSample
tagged(double id)
{
    QueuedSample sample;
    sample.catalogRow = {id};
    return sample;
}

double
tagOf(const QueuedSample &sample)
{
    return sample.catalogRow.at(0);
}

TEST(BoundedSampleQueue, FifoOrderWithinCapacity)
{
    BoundedSampleQueue queue(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(queue.push(tagged(i)), 0u);
    EXPECT_EQ(queue.size(), 5u);

    std::vector<QueuedSample> out;
    EXPECT_EQ(queue.popBatch(out, 100), 5u);
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(tagOf(out[i]), i);
    EXPECT_TRUE(queue.empty());
}

TEST(BoundedSampleQueue, DropsOldestWhenFull)
{
    BoundedSampleQueue queue(3);
    std::size_t dropped = 0;
    for (int i = 0; i < 5; ++i)
        dropped += queue.push(tagged(i));
    EXPECT_EQ(dropped, 2u);
    EXPECT_EQ(queue.size(), 3u);

    // The three newest samples survive, oldest-first.
    std::vector<QueuedSample> out;
    queue.popBatch(out, 100);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(tagOf(out[0]), 2);
    EXPECT_EQ(tagOf(out[1]), 3);
    EXPECT_EQ(tagOf(out[2]), 4);
}

TEST(BoundedSampleQueue, PopBatchHonorsLimitAndAppends)
{
    BoundedSampleQueue queue(10);
    for (int i = 0; i < 7; ++i)
        queue.push(tagged(i));

    std::vector<QueuedSample> out;
    EXPECT_EQ(queue.popBatch(out, 3), 3u);
    EXPECT_EQ(queue.popBatch(out, 3), 3u);
    EXPECT_EQ(queue.popBatch(out, 3), 1u);
    EXPECT_EQ(queue.popBatch(out, 3), 0u);
    ASSERT_EQ(out.size(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(tagOf(out[i]), i) << "position " << i;
}

TEST(BoundedSampleQueue, ZeroCapacityClampsToOne)
{
    BoundedSampleQueue queue(0);
    EXPECT_EQ(queue.capacity(), 1u);
    EXPECT_EQ(queue.push(tagged(1)), 0u);
    EXPECT_EQ(queue.push(tagged(2)), 1u);
    std::vector<QueuedSample> out;
    queue.popBatch(out, 10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(tagOf(out[0]), 2);
}

} // namespace
} // namespace chaos::serve
