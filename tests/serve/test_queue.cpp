/**
 * @file
 * Tests for the bounded MPSC ingestion queue: FIFO order, the
 * drop-oldest overflow policy, and batch draining.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "serve/sample_queue.hpp"

namespace chaos::serve {
namespace {

/**
 * Sample tagged with an identity in its first row slot and an opaque
 * per-id entry pointer (never dereferenced by the queue), so drop
 * attribution can be asserted from push()'s return value.
 */
QueuedSample
tagged(double id)
{
    QueuedSample sample;
    sample.catalogRow = {id};
    sample.entry = reinterpret_cast<MachineEntry *>(
        0x1000 + static_cast<std::uintptr_t>(id) * 0x10);
    return sample;
}

double
tagOf(const QueuedSample &sample)
{
    return sample.catalogRow.at(0);
}

TEST(BoundedSampleQueue, FifoOrderWithinCapacity)
{
    BoundedSampleQueue queue(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(queue.push(tagged(i)), nullptr);
    EXPECT_EQ(queue.size(), 5u);

    std::vector<QueuedSample> out;
    EXPECT_EQ(queue.popBatch(out, 100), 5u);
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(tagOf(out[i]), i);
    EXPECT_TRUE(queue.empty());
}

TEST(BoundedSampleQueue, DropsOldestWhenFull)
{
    BoundedSampleQueue queue(3);
    std::vector<MachineEntry *> evicted;
    for (int i = 0; i < 5; ++i) {
        if (MachineEntry *entry = queue.push(tagged(i)))
            evicted.push_back(entry);
    }
    // Samples 0 and 1 were evicted, and each drop is attributed to
    // the evicted sample's own entry.
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[0], tagged(0).entry);
    EXPECT_EQ(evicted[1], tagged(1).entry);
    EXPECT_EQ(queue.size(), 3u);

    // The three newest samples survive, oldest-first.
    std::vector<QueuedSample> out;
    queue.popBatch(out, 100);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(tagOf(out[0]), 2);
    EXPECT_EQ(tagOf(out[1]), 3);
    EXPECT_EQ(tagOf(out[2]), 4);
}

TEST(BoundedSampleQueue, PopBatchHonorsLimitAndAppends)
{
    BoundedSampleQueue queue(10);
    for (int i = 0; i < 7; ++i)
        queue.push(tagged(i));

    std::vector<QueuedSample> out;
    EXPECT_EQ(queue.popBatch(out, 3), 3u);
    EXPECT_EQ(queue.popBatch(out, 3), 3u);
    EXPECT_EQ(queue.popBatch(out, 3), 1u);
    EXPECT_EQ(queue.popBatch(out, 3), 0u);
    ASSERT_EQ(out.size(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(tagOf(out[i]), i) << "position " << i;
}

TEST(BoundedSampleQueue, ZeroCapacityClampsToOne)
{
    BoundedSampleQueue queue(0);
    EXPECT_EQ(queue.capacity(), 1u);
    EXPECT_EQ(queue.push(tagged(1)), nullptr);
    EXPECT_EQ(queue.push(tagged(2)), tagged(1).entry);
    std::vector<QueuedSample> out;
    queue.popBatch(out, 10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(tagOf(out[0]), 2);
}

} // namespace
} // namespace chaos::serve
