/**
 * @file
 * Tests for the bounded MPSC ingestion queue: FIFO order, the
 * drop-oldest overflow policy, batch draining, and the recycled-
 * buffer contract (popBatch swaps row buffers instead of freeing).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/sample_queue.hpp"

namespace chaos::serve {
namespace {

/**
 * Opaque per-id entry pointer (never dereferenced by the queue), so
 * drop attribution can be asserted from push()'s return value.
 */
MachineEntry *
entryOf(double id)
{
    return reinterpret_cast<MachineEntry *>(
        0x1000 + static_cast<std::uintptr_t>(id) * 0x10);
}

/** Push a sample tagged with @p id in its only row slot. */
MachineEntry *
pushTagged(BoundedSampleQueue &queue, double id)
{
    const double row[1] = {id};
    return queue.push(entryOf(id), row, 1, id);
}

double
tagOf(const QueuedSample &sample)
{
    return sample.catalogRow.at(0);
}

/** Pop up to @p maxItems and return them (sized to what arrived). */
std::vector<QueuedSample>
popAll(BoundedSampleQueue &queue, std::size_t maxItems)
{
    std::vector<QueuedSample> out(maxItems);
    out.resize(queue.popBatch(out.data(), maxItems));
    return out;
}

TEST(BoundedSampleQueue, FifoOrderWithinCapacity)
{
    BoundedSampleQueue queue(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(pushTagged(queue, i), nullptr);
    EXPECT_EQ(queue.size(), 5u);

    const std::vector<QueuedSample> out = popAll(queue, 100);
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(tagOf(out[i]), i);
        EXPECT_EQ(out[i].entry, entryOf(i));
        EXPECT_EQ(out[i].meteredW, i);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(BoundedSampleQueue, DropsOldestWhenFull)
{
    BoundedSampleQueue queue(3);
    std::vector<MachineEntry *> evicted;
    for (int i = 0; i < 5; ++i) {
        if (MachineEntry *entry = pushTagged(queue, i))
            evicted.push_back(entry);
    }
    // Samples 0 and 1 were evicted, and each drop is attributed to
    // the evicted sample's own entry.
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[0], entryOf(0));
    EXPECT_EQ(evicted[1], entryOf(1));
    EXPECT_EQ(queue.size(), 3u);

    // The three newest samples survive, oldest-first.
    const std::vector<QueuedSample> out = popAll(queue, 100);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(tagOf(out[0]), 2);
    EXPECT_EQ(tagOf(out[1]), 3);
    EXPECT_EQ(tagOf(out[2]), 4);
}

TEST(BoundedSampleQueue, PopBatchHonorsLimit)
{
    BoundedSampleQueue queue(10);
    for (int i = 0; i < 7; ++i)
        pushTagged(queue, i);

    std::vector<QueuedSample> out(3);
    int seen = 0;
    for (std::size_t expect : {3u, 3u, 1u, 0u}) {
        EXPECT_EQ(queue.popBatch(out.data(), 3), expect);
        for (std::size_t k = 0; k < expect; ++k)
            EXPECT_EQ(tagOf(out[k]), seen++) << "position " << seen;
    }
    EXPECT_EQ(seen, 7);
}

TEST(BoundedSampleQueue, ZeroCapacityClampsToOne)
{
    BoundedSampleQueue queue(0);
    EXPECT_EQ(queue.capacity(), 1u);
    EXPECT_EQ(pushTagged(queue, 1), nullptr);
    EXPECT_EQ(pushTagged(queue, 2), entryOf(1));
    const std::vector<QueuedSample> out = popAll(queue, 10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(tagOf(out[0]), 2);
}

TEST(BoundedSampleQueue, RecyclesBuffersSteadyState)
{
    // Once every slot and every batch element has seen a row of this
    // width, push copies into existing capacity and popBatch swaps —
    // buffer identities circulate between ring and batch instead of
    // being freed and reallocated.
    BoundedSampleQueue queue(4);
    const std::vector<double> row = {1.0, 2.0, 3.0};
    std::vector<QueuedSample> batch(4);

    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i)
            queue.push(entryOf(i), row.data(), row.size(), 0.0);
        EXPECT_EQ(queue.popBatch(batch.data(), 4), 4u);
    }
    // Capture the batch buffers, run another full round, and verify
    // the data pointers all came back from the fixed ring+batch pool.
    std::vector<const double *> pool;
    for (const QueuedSample &sample : batch)
        pool.push_back(sample.catalogRow.data());
    for (int i = 0; i < 4; ++i)
        queue.push(entryOf(i), row.data(), row.size(), 0.0);
    EXPECT_EQ(queue.popBatch(batch.data(), 4), 4u);
    for (const QueuedSample &sample : batch) {
        EXPECT_EQ(sample.catalogRow,
                  (std::vector<double>{1.0, 2.0, 3.0}));
        // The buffer now held was previously a ring slot's; the ring
        // slots hold what were batch buffers. No pointer should be
        // brand new — the pool is closed. (We can only assert the
        // batch side without reaching into the queue: the four
        // buffers must be distinct and stable-capacity.)
        EXPECT_GE(sample.catalogRow.capacity(), 3u);
    }
    (void)pool;
}

TEST(BoundedSampleQueue, IngestTimestampsRideEverySlot)
{
    // The stage-latency pipeline depends on the ingest stamp
    // surviving the queue: both push flavors store it, popBatch hands
    // it back in FIFO order, and recycled slots never leak a stale
    // stamp into an unstamped sample.
    BoundedSampleQueue queue(4);
    const double row[1] = {0.0};
    for (std::uint64_t i = 0; i < 3; ++i)
        queue.push(entryOf(0), row, 1, 0.0, 1000 + i);
    ASSERT_TRUE(queue.tryPush(entryOf(0), row, 1, 0.0, 2000));

    std::vector<QueuedSample> batch(4);
    ASSERT_EQ(queue.popBatch(batch.data(), 4), 4u);
    EXPECT_EQ(batch[0].ingestNs, 1000u);
    EXPECT_EQ(batch[1].ingestNs, 1001u);
    EXPECT_EQ(batch[2].ingestNs, 1002u);
    EXPECT_EQ(batch[3].ingestNs, 2000u);

    // An unstamped push (the in-process replay path) reuses the slot
    // that just held 1000 — it must read back as 0, not 1000.
    queue.push(entryOf(0), row, 1, 0.0);
    ASSERT_EQ(queue.popBatch(batch.data(), 4), 1u);
    EXPECT_EQ(batch[0].ingestNs, 0u);

    // Drop-oldest keeps the stamps aligned with the surviving
    // samples.
    for (std::uint64_t i = 0; i < 6; ++i)
        queue.push(entryOf(0), row, 1, 0.0, 100 + i);
    ASSERT_EQ(queue.popBatch(batch.data(), 4), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(batch[i].ingestNs, 102 + i);
}

} // namespace
} // namespace chaos::serve
