/**
 * @file
 * Tests for trace replay: per-machine regrouping of dataset rows,
 * machine-id naming, metered-reference forwarding, pacing modes, and
 * the stop flag.
 */
#include <atomic>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "serve_support.hpp"

#include "serve/replay.hpp"

namespace chaos::serve {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

/** Trace with @p perMachine rows for machines 0..numMachines-1. */
Dataset
makeTrace(int numMachines, int perMachine)
{
    Dataset data;
    for (int t = 0; t < perMachine; ++t) {
        for (int m = 0; m < numMachines; ++m) {
            data.addRow(catalogRow(t * 3.0 + m, 100.0 - t),
                        30.0 + m + 0.1 * t, /*runId=*/0, m, "replay");
        }
    }
    return data;
}

TEST(TraceReplayer, EmptyDatasetRaises)
{
    Dataset empty;
    EXPECT_RAISES(TraceReplayer replayer(empty), "empty dataset");
}

TEST(TraceReplayer, GroupsRowsPerMachine)
{
    const Dataset data = makeTrace(3, 7);
    TraceReplayer replayer(data);
    EXPECT_EQ(replayer.numTicks(), 7u);
    EXPECT_EQ(replayer.numSamples(), 21u);
    ASSERT_EQ(replayer.machineIds().size(), 3u);
    EXPECT_EQ(replayer.machineIds()[0], "machine0");
    EXPECT_EQ(replayer.machineIds()[1], "machine1");
    EXPECT_EQ(replayer.machineIds()[2], "machine2");
}

TEST(TraceReplayer, ReplaySubmitsEverySampleOnce)
{
    const Dataset data = makeTrace(2, 25);
    TraceReplayer replayer(data);

    FleetServer server;
    for (const std::string &id : replayer.machineIds())
        server.addMachine(id, makeTestModel(21));
    server.start();
    const ReplayStats stats = replayer.replayInto(server, {});
    server.stop();

    EXPECT_EQ(stats.ticks, 25u);
    EXPECT_EQ(stats.submitted, 50u);
    EXPECT_EQ(server.submitted(), 50u);
    EXPECT_EQ(server.processed(), 50u);
    EXPECT_EQ(server.dropped(), 0u);
    server.machine("machine0")->withEstimator(
        [](OnlinePowerEstimator &e) {
            EXPECT_EQ(e.samples(), 25u);
        });
}

TEST(TraceReplayer, ForwardsMeteredReferenceWhenEnabled)
{
    const Dataset data = makeTrace(1, 10);
    TraceReplayer replayer(data);

    for (const bool feed : {true, false}) {
        FleetServer server;
        server.addMachine("machine0", makeTestModel(23));
        ReplayConfig config;
        config.feedMeteredReference = feed;
        replayer.replayInto(server, config);
        while (server.drainOnce() > 0) {
        }
        server.machine("machine0")
            ->withEstimator([&](OnlinePowerEstimator &e) {
                EXPECT_EQ(e.residuals().count(), feed ? 10u : 0u);
            });
    }
}

TEST(TraceReplayer, UnregisteredMachineRaisesBeforeSubmitting)
{
    const Dataset data = makeTrace(2, 3);
    TraceReplayer replayer(data);
    FleetServer server;
    server.addMachine("machine0", makeTestModel(29));
    EXPECT_RAISES(replayer.replayInto(server, {}),
                  "'machine1' is not registered");
    EXPECT_EQ(server.submitted(), 0u);
}

TEST(TraceReplayer, RaggedTraceReplaysShortMachinesPartially)
{
    Dataset data;
    for (int t = 0; t < 6; ++t)
        data.addRow(catalogRow(t, t), 30.0, 0, /*machineId=*/0, "w");
    for (int t = 0; t < 2; ++t)
        data.addRow(catalogRow(t, t), 31.0, 0, /*machineId=*/1, "w");
    TraceReplayer replayer(data);
    EXPECT_EQ(replayer.numTicks(), 6u);

    FleetServer server;
    server.addMachine("machine0", makeTestModel(31));
    server.addMachine("machine1", makeTestModel(31));
    const ReplayStats stats = replayer.replayInto(server, {});
    EXPECT_EQ(stats.ticks, 6u);
    EXPECT_EQ(stats.submitted, 8u);
}

TEST(TraceReplayer, StopFlagEndsReplayEarly)
{
    const Dataset data = makeTrace(1, 100);
    TraceReplayer replayer(data);
    FleetServer server;
    server.addMachine("machine0", makeTestModel(37));
    const std::atomic<bool> stop{true};
    const ReplayStats stats = replayer.replayInto(server, {}, &stop);
    EXPECT_EQ(stats.ticks, 0u);
    EXPECT_EQ(stats.submitted, 0u);
}

TEST(TraceReplayer, PacedReplayTakesAtLeastTheTraceDuration)
{
    const Dataset data = makeTrace(1, 5);
    TraceReplayer replayer(data);
    FleetServer server;
    server.addMachine("machine0", makeTestModel(41));
    ReplayConfig config;
    config.speed = 500.0;  // 5 ticks => at least 10 ms of pacing.
    const auto start = std::chrono::steady_clock::now();
    replayer.replayInto(server, config);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.009);
}

} // namespace
} // namespace chaos::serve
