/**
 * @file
 * Tests for Pearson correlation (step 1 of Algorithm 1 relies on it).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/correlation.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(Pearson, PerfectPositiveAndNegative)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    const std::vector<double> z{8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant)
{
    Rng rng(1);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        x.push_back(rng.normal());
        y.push_back(0.5 * x.back() + rng.normal());
    }
    const double base = pearson(x, y);
    std::vector<double> x2(x);
    for (auto &v : x2)
        v = 100.0 + 7.0 * v;
    EXPECT_NEAR(pearson(x2, y), base, 1e-12);
}

TEST(Pearson, ConstantVectorGivesZero)
{
    const std::vector<double> c{5, 5, 5, 5};
    const std::vector<double> y{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(pearson(c, y), 0.0);
}

TEST(Pearson, IndependentVariablesNearZero)
{
    Rng rng(2);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.normal());
        y.push_back(rng.normal());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Pearson, LengthMismatchPanics)
{
    EXPECT_DEATH(pearson({1, 2}, {1, 2, 3}), "length mismatch");
}

TEST(CorrelationMatrix, DiagonalIsOneAndSymmetric)
{
    Rng rng(3);
    Matrix x(100, 4);
    for (size_t r = 0; r < 100; ++r) {
        for (size_t c = 0; c < 4; ++c)
            x(r, c) = rng.normal();
    }
    const Matrix corr = correlationMatrix(x);
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(corr(i, i), 1.0);
        for (size_t j = 0; j < 4; ++j) {
            EXPECT_DOUBLE_EQ(corr(i, j), corr(j, i));
            EXPECT_LE(std::fabs(corr(i, j)), 1.0 + 1e-12);
        }
    }
}

TEST(CorrelationMatrix, MatchesPairwisePearson)
{
    Rng rng(4);
    const size_t n = 300, p = 5;
    Matrix x(n, p);
    for (size_t r = 0; r < n; ++r) {
        x(r, 0) = rng.normal();
        x(r, 1) = x(r, 0) * 2.0 + rng.normal(0, 0.1);
        x(r, 2) = rng.normal();
        x(r, 3) = -x(r, 2) + rng.normal(0, 0.5);
        x(r, 4) = rng.uniform();
    }
    const Matrix corr = correlationMatrix(x);
    for (size_t i = 0; i < p; ++i) {
        for (size_t j = 0; j < p; ++j) {
            EXPECT_NEAR(corr(i, j),
                        pearson(x.column(i), x.column(j)), 1e-10);
        }
    }
}

TEST(CorrelationMatrix, HighlyCorrelatedSiblingsExceedThreshold)
{
    // The scenario step 1 of Algorithm 1 prunes: a scaled noisy copy.
    Rng rng(5);
    const size_t n = 1000;
    Matrix x(n, 2);
    for (size_t r = 0; r < n; ++r) {
        x(r, 0) = rng.uniform(0, 100);
        x(r, 1) = 3.0 * x(r, 0) * rng.uniform(0.98, 1.02);
    }
    const Matrix corr = correlationMatrix(x);
    EXPECT_GT(corr(0, 1), 0.95);
}

} // namespace
} // namespace chaos
