/**
 * @file
 * Tests for k-fold splitting: partition properties and the grouped
 * (run-aware) variants the paper's protocol requires.
 */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "stats/kfold.hpp"

namespace chaos {
namespace {

TEST(KFold, FoldsPartitionAllRows)
{
    Rng rng(1);
    const size_t n = 103, k = 5;
    const auto folds = kFold(n, k, rng);
    ASSERT_EQ(folds.size(), k);

    std::set<size_t> all_test;
    for (const auto &fold : folds) {
        EXPECT_EQ(fold.trainIndices.size() + fold.testIndices.size(),
                  n);
        for (size_t idx : fold.testIndices) {
            EXPECT_TRUE(all_test.insert(idx).second)
                << "row " << idx << " tested twice";
        }
        // Train and test are disjoint.
        std::set<size_t> train(fold.trainIndices.begin(),
                               fold.trainIndices.end());
        for (size_t idx : fold.testIndices)
            EXPECT_FALSE(train.count(idx));
    }
    EXPECT_EQ(all_test.size(), n);
}

TEST(KFold, FoldSizesAreBalanced)
{
    Rng rng(2);
    const auto folds = kFold(100, 5, rng);
    for (const auto &fold : folds)
        EXPECT_EQ(fold.testIndices.size(), 20u);
}

TEST(KFold, InvalidParametersPanic)
{
    Rng rng(3);
    EXPECT_DEATH(kFold(10, 1, rng), "k >= 2");
    EXPECT_DEATH(kFold(3, 5, rng), "k <= numRows");
}

class GroupedKFoldTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(GroupedKFoldTest, GroupsNeverSplitAcrossTrainAndTest)
{
    Rng rng(40 + GetParam());
    // 10 groups of uneven sizes.
    std::vector<int> groups;
    for (int g = 0; g < 10; ++g) {
        for (int i = 0; i < 5 + g; ++i)
            groups.push_back(g);
    }
    const auto folds = groupedKFold(groups, GetParam(), rng);
    for (const auto &fold : folds) {
        std::set<int> test_groups, train_groups;
        for (size_t idx : fold.testIndices)
            test_groups.insert(groups[idx]);
        for (size_t idx : fold.trainIndices)
            train_groups.insert(groups[idx]);
        for (int g : test_groups)
            EXPECT_FALSE(train_groups.count(g))
                << "group " << g << " split across the fold";
    }
}

INSTANTIATE_TEST_SUITE_P(FoldCounts, GroupedKFoldTest,
                         ::testing::Values(2, 3, 5));

TEST(GroupedKFold, EveryGroupTestedExactlyOnce)
{
    Rng rng(5);
    std::vector<int> groups;
    for (int g = 0; g < 6; ++g) {
        for (int i = 0; i < 4; ++i)
            groups.push_back(g * 11);  // Non-contiguous ids.
    }
    const auto folds = groupedKFold(groups, 3, rng);
    std::multiset<int> tested;
    for (const auto &fold : folds) {
        std::set<int> fold_groups;
        for (size_t idx : fold.testIndices)
            fold_groups.insert(groups[idx]);
        for (int g : fold_groups)
            tested.insert(g);
    }
    for (int g = 0; g < 6; ++g)
        EXPECT_EQ(tested.count(g * 11), 1u);
}

TEST(GroupedKFold, ReducesFoldsWhenGroupsAreScarce)
{
    Rng rng(6);
    const std::vector<int> groups{0, 0, 1, 1, 2, 2};
    const auto folds = groupedKFold(groups, 5, rng);
    EXPECT_EQ(folds.size(), 3u);
}

TEST(GroupedKFold, SingleGroupPanics)
{
    Rng rng(7);
    const std::vector<int> groups{0, 0, 0};
    EXPECT_DEATH(groupedKFold(groups, 2, rng), "at least 2");
}

TEST(GroupedHoldout, RespectsTrainFractionAtGroupGranularity)
{
    Rng rng(8);
    std::vector<int> groups;
    for (int g = 0; g < 10; ++g) {
        for (int i = 0; i < 10; ++i)
            groups.push_back(g);
    }
    const auto split = groupedHoldout(groups, 0.2, rng);
    EXPECT_EQ(split.trainIndices.size(), 20u);  // 2 of 10 groups.
    EXPECT_EQ(split.testIndices.size(), 80u);

    std::set<int> train_groups, test_groups;
    for (size_t idx : split.trainIndices)
        train_groups.insert(groups[idx]);
    for (size_t idx : split.testIndices)
        test_groups.insert(groups[idx]);
    for (int g : train_groups)
        EXPECT_FALSE(test_groups.count(g));
}

TEST(GroupedHoldout, AlwaysKeepsBothSidesNonEmpty)
{
    Rng rng(9);
    const std::vector<int> groups{0, 1};
    const auto split = groupedHoldout(groups, 0.01, rng);
    EXPECT_FALSE(split.trainIndices.empty());
    EXPECT_FALSE(split.testIndices.empty());
}

TEST(GroupedHoldout, InvalidFractionPanics)
{
    Rng rng(10);
    const std::vector<int> groups{0, 1};
    EXPECT_DEATH(groupedHoldout(groups, 0.0, rng), "trainFraction");
    EXPECT_DEATH(groupedHoldout(groups, 1.0, rng), "trainFraction");
}

} // namespace
} // namespace chaos
