/**
 * @file
 * Tests for the error metrics, including the paper's Dynamic Range
 * Error (Eq. 6) and its key property: platform-independence.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/metrics.hpp"

namespace chaos {
namespace {

TEST(Metrics, PerfectPredictionIsZeroError)
{
    const std::vector<double> v{10, 20, 30};
    EXPECT_DOUBLE_EQ(meanSquaredError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(rootMeanSquaredError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(meanAbsoluteError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(medianAbsoluteError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(medianRelativeError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(dynamicRangeError(v, v, 0, 100), 0.0);
    EXPECT_DOUBLE_EQ(rSquared(v, v), 1.0);
}

TEST(Metrics, KnownValues)
{
    const std::vector<double> pred{1, 2, 3};
    const std::vector<double> act{2, 2, 5};
    // Errors: -1, 0, -2 -> MSE = 5/3.
    EXPECT_NEAR(meanSquaredError(pred, act), 5.0 / 3.0, 1e-12);
    EXPECT_NEAR(meanAbsoluteError(pred, act), 1.0, 1e-12);
    EXPECT_NEAR(medianAbsoluteError(pred, act), 1.0, 1e-12);
}

TEST(Metrics, DreDefinition)
{
    const std::vector<double> pred{10, 10, 10, 10};
    const std::vector<double> act{12, 12, 12, 12};
    // rMSE = 2, range = 25 - 5 = 20 -> DRE = 0.1.
    EXPECT_NEAR(dynamicRangeError(pred, act, 5.0, 25.0), 0.1, 1e-12);
}

TEST(Metrics, DreIsStricterThanPercentErrorOnHighIdleSystems)
{
    // The Table III phenomenon: a small %err hides a large DRE when
    // static power dominates (Atom: 22-26 W envelope).
    std::vector<double> act, pred;
    for (int i = 0; i < 100; ++i) {
        act.push_back(24.0);
        pred.push_back(24.0 + ((i % 2 == 0) ? 0.6 : -0.6));
    }
    const double pct = percentError(pred, act);
    const double dre = dynamicRangeError(pred, act, 22.0, 26.0);
    EXPECT_LT(pct, 0.03);   // ~2.5% of total power.
    EXPECT_GT(dre, 0.10);   // but 15% of the dynamic range.
}

TEST(Metrics, DreIsScaleInvariantAcrossPlatforms)
{
    // Scaling power and range together leaves DRE unchanged: the
    // property that makes DRE comparable across platforms.
    const std::vector<double> pred{30, 35, 40};
    const std::vector<double> act{32, 33, 44};
    const double small = dynamicRangeError(pred, act, 25, 46);

    std::vector<double> pred10, act10;
    for (size_t i = 0; i < pred.size(); ++i) {
        pred10.push_back(pred[i] * 10.0);
        act10.push_back(act[i] * 10.0);
    }
    const double big = dynamicRangeError(pred10, act10, 250, 460);
    EXPECT_NEAR(small, big, 1e-12);
}

TEST(Metrics, DreObservedUsesDataRange)
{
    const std::vector<double> pred{1, 2, 3, 4};
    const std::vector<double> act{1, 2, 3, 5};
    const double expected =
        rootMeanSquaredError(pred, act) / (5.0 - 1.0);
    EXPECT_NEAR(dynamicRangeErrorObserved(pred, act), expected, 1e-12);
}

TEST(Metrics, DreRejectsNonPositiveRange)
{
    const std::vector<double> v{1, 2};
    EXPECT_DEATH(dynamicRangeError(v, v, 10.0, 10.0),
                 "non-positive dynamic range");
}

TEST(Metrics, MedianRelativeErrorSkipsZeros)
{
    const std::vector<double> pred{1, 5};
    const std::vector<double> act{0, 4};
    EXPECT_NEAR(medianRelativeError(pred, act), 0.25, 1e-12);
}

TEST(Metrics, PercentErrorDefinition)
{
    const std::vector<double> pred{9, 11};
    const std::vector<double> act{10, 10};
    EXPECT_NEAR(percentError(pred, act), 0.1, 1e-12);
}

TEST(Metrics, RSquaredOfMeanPredictorIsZero)
{
    const std::vector<double> act{1, 2, 3, 4, 5};
    const std::vector<double> pred(5, 3.0);
    EXPECT_NEAR(rSquared(pred, act), 0.0, 1e-12);
}

TEST(Metrics, LengthMismatchPanics)
{
    EXPECT_DEATH(meanSquaredError({1}, {1, 2}), "length mismatch");
}

TEST(Metrics, EmptyInputPanics)
{
    EXPECT_DEATH(meanSquaredError({}, {}), "empty");
}

TEST(ErrorReport, FieldsAreConsistent)
{
    std::vector<double> pred, act;
    for (int i = 0; i < 50; ++i) {
        act.push_back(100.0 + i);
        pred.push_back(100.0 + i + (i % 3 == 0 ? 2.0 : -1.0));
    }
    const ErrorReport report = evaluateErrors(pred, act, 90, 160);
    EXPECT_NEAR(report.rmse, std::sqrt(report.mse), 1e-12);
    EXPECT_NEAR(report.dre, report.rmse / 70.0, 1e-12);
    EXPECT_NEAR(report.pctErr, percentError(pred, act), 1e-12);
    EXPECT_FALSE(report.summary().empty());
    EXPECT_NE(report.summary().find("DRE"), std::string::npos);
}

class DreScaleTest : public ::testing::TestWithParam<double>
{
};

TEST_P(DreScaleTest, InvariantUnderJointScaling)
{
    const double scale = GetParam();
    const std::vector<double> pred{3, 4, 5, 6};
    const std::vector<double> act{3.5, 4, 4.5, 7};
    const double base = dynamicRangeError(pred, act, 2, 8);

    std::vector<double> ps, as;
    for (size_t i = 0; i < pred.size(); ++i) {
        ps.push_back(pred[i] * scale);
        as.push_back(act[i] * scale);
    }
    EXPECT_NEAR(dynamicRangeError(ps, as, 2 * scale, 8 * scale), base,
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, DreScaleTest,
                         ::testing::Values(0.1, 2.0, 13.0, 1000.0));

} // namespace
} // namespace chaos
