/**
 * @file
 * Tests for the normal-distribution helpers behind the Wald test.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/distributions.hpp"

namespace chaos {
namespace {

TEST(NormalPdf, KnownValues)
{
    EXPECT_NEAR(normalPdf(0.0), 0.3989422804014327, 1e-12);
    EXPECT_NEAR(normalPdf(1.0), 0.24197072451914337, 1e-12);
    EXPECT_NEAR(normalPdf(-1.0), normalPdf(1.0), 1e-15);
}

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-6);
    EXPECT_NEAR(normalCdf(5.0), 1.0, 1e-6);
}

TEST(NormalCdf, MonotoneIncreasing)
{
    double prev = 0.0;
    for (double z = -4.0; z <= 4.0; z += 0.25) {
        const double value = normalCdf(z);
        EXPECT_GT(value, prev);
        prev = value;
    }
}

TEST(WaldPValue, TwoSidedAtCriticalValues)
{
    EXPECT_NEAR(waldPValue(1.959963985), 0.05, 1e-6);
    EXPECT_NEAR(waldPValue(-1.959963985), 0.05, 1e-6);
    EXPECT_NEAR(waldPValue(0.0), 1.0, 1e-12);
    EXPECT_LT(waldPValue(10.0), 1e-20);
}

TEST(WaldPValue, SymmetricInSign)
{
    for (double z = 0.0; z < 5.0; z += 0.5)
        EXPECT_DOUBLE_EQ(waldPValue(z), waldPValue(-z));
}

TEST(WaldPValue, ConsistentWithCdf)
{
    for (double z = 0.1; z < 4.0; z += 0.3) {
        EXPECT_NEAR(waldPValue(z), 2.0 * (1.0 - normalCdf(z)), 1e-10);
    }
}

} // namespace
} // namespace chaos
