/**
 * @file
 * Tests for descriptive statistics.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(Descriptive, MeanAndVariance)
{
    const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyMeanPanics)
{
    EXPECT_DEATH(mean({}), "empty");
}

TEST(Descriptive, VarianceOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
}

TEST(Descriptive, MinMax)
{
    const std::vector<double> v{3, -1, 7, 2};
    EXPECT_DOUBLE_EQ(minValue(v), -1.0);
    EXPECT_DOUBLE_EQ(maxValue(v), 7.0);
}

TEST(Descriptive, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({5}), 5.0);
}

TEST(Descriptive, QuantileInterpolates)
{
    const std::vector<double> v{0, 10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 10.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.1), 4.0);
}

TEST(Descriptive, QuantileOutOfRangePanics)
{
    EXPECT_DEATH(quantile({1.0, 2.0}, 1.5), "q in");
}

TEST(Descriptive, DistinctSortedMergesNearValues)
{
    const auto out =
        distinctSorted({3.0, 1.0, 1.0 + 1e-12, 2.0, 3.0}, 1e-9);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Descriptive, DistinctSortedWithTolerance)
{
    const auto out = distinctSorted({800, 805, 1600, 2260}, 10.0);
    EXPECT_EQ(out.size(), 3u);
}

TEST(RunningStats, MatchesBatchStatistics)
{
    Rng rng(3);
    std::vector<double> values;
    RunningStats rs;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.normal(10.0, 3.0);
        values.push_back(v);
        rs.add(v);
    }
    EXPECT_EQ(rs.count(), values.size());
    EXPECT_NEAR(rs.mean(), mean(values), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(values), 1e-6);
    EXPECT_DOUBLE_EQ(rs.min(), minValue(values));
    EXPECT_DOUBLE_EQ(rs.max(), maxValue(values));
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats rs;
    rs.add(5.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 5.0);
    EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(QuantileKnots, ConstantFeatureHasNoKnots)
{
    EXPECT_TRUE(quantileKnots({3.0, 3.0, 3.0, 3.0}, 5).empty());
    EXPECT_TRUE(quantileKnots({1.0, 2.0, 3.0}, 0).empty());
}

TEST(QuantileKnots, DiscreteFeatureUsesInteriorLevels)
{
    // Four distinct levels with numKnots = 5: every level but the
    // top becomes a knot (a hinge at the max would be empty).
    const auto knots =
        quantileKnots({2.0, 1.0, 2.0, 4.0, 3.0, 1.0}, 5);
    ASSERT_EQ(knots.size(), 3u);
    EXPECT_DOUBLE_EQ(knots[0], 1.0);
    EXPECT_DOUBLE_EQ(knots[1], 2.0);
    EXPECT_DOUBLE_EQ(knots[2], 3.0);
}

TEST(QuantileKnots, ContinuousFeatureUsesInteriorQuantiles)
{
    std::vector<double> values(101);
    for (size_t i = 0; i <= 100; ++i)
        values[i] = static_cast<double>(i);
    const auto knots = quantileKnots(values, 3);
    ASSERT_EQ(knots.size(), 3u);
    EXPECT_NEAR(knots[0], quantile(values, 0.25), 1e-12);
    EXPECT_NEAR(knots[1], quantile(values, 0.50), 1e-12);
    EXPECT_NEAR(knots[2], quantile(values, 0.75), 1e-12);
}

TEST(QuantileKnots, HeavilyTiedFeatureDeduplicates)
{
    // 90% of the mass at 0 puts several quantiles on the same value;
    // the result must not contain duplicates.
    std::vector<double> values(100, 0.0);
    for (size_t i = 90; i < 100; ++i)
        values[i] = static_cast<double>(i - 89);
    const auto knots = quantileKnots(values, 7);
    for (size_t i = 1; i < knots.size(); ++i)
        EXPECT_GT(knots[i], knots[i - 1]);
}

} // namespace
} // namespace chaos
