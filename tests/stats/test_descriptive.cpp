/**
 * @file
 * Tests for descriptive statistics.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(Descriptive, MeanAndVariance)
{
    const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyMeanPanics)
{
    EXPECT_DEATH(mean({}), "empty");
}

TEST(Descriptive, VarianceOfSingletonIsZero)
{
    EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
}

TEST(Descriptive, MinMax)
{
    const std::vector<double> v{3, -1, 7, 2};
    EXPECT_DOUBLE_EQ(minValue(v), -1.0);
    EXPECT_DOUBLE_EQ(maxValue(v), 7.0);
}

TEST(Descriptive, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({5}), 5.0);
}

TEST(Descriptive, QuantileInterpolates)
{
    const std::vector<double> v{0, 10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 10.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.1), 4.0);
}

TEST(Descriptive, QuantileOutOfRangePanics)
{
    EXPECT_DEATH(quantile({1.0, 2.0}, 1.5), "q in");
}

TEST(Descriptive, DistinctSortedMergesNearValues)
{
    const auto out =
        distinctSorted({3.0, 1.0, 1.0 + 1e-12, 2.0, 3.0}, 1e-9);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(Descriptive, DistinctSortedWithTolerance)
{
    const auto out = distinctSorted({800, 805, 1600, 2260}, 10.0);
    EXPECT_EQ(out.size(), 3u);
}

TEST(RunningStats, MatchesBatchStatistics)
{
    Rng rng(3);
    std::vector<double> values;
    RunningStats rs;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.normal(10.0, 3.0);
        values.push_back(v);
        rs.add(v);
    }
    EXPECT_EQ(rs.count(), values.size());
    EXPECT_NEAR(rs.mean(), mean(values), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(values), 1e-6);
    EXPECT_DOUBLE_EQ(rs.min(), minValue(values));
    EXPECT_DOUBLE_EQ(rs.max(), maxValue(values));
}

TEST(RunningStats, EmptyIsSafe)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats rs;
    rs.add(5.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 5.0);
    EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

} // namespace
} // namespace chaos
