/**
 * @file
 * Tests for dataset persistence (save/load round trip).
 */
#include <cstdio>

#include <fstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "trace/trace_io.hpp"

namespace chaos {
namespace {

Dataset
sampleDataset()
{
    Dataset ds({"util", "freq", "disk"});
    ds.addRow({50.5, 2260, 1e6}, 35.2, 0, 0, "Sort");
    ds.addRow({80.0, 2260, 2e6}, 41.7, 0, 1, "Sort");
    ds.addRow({10.0, 800, 0.0}, 27.1, 1, 0, "Prime");
    return ds;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const std::string path = ::testing::TempDir() + "ds.csv";
    const Dataset original = sampleDataset();
    saveDataset(path, original);
    const Dataset loaded = loadDataset(path);

    EXPECT_EQ(loaded.featureNames(), original.featureNames());
    ASSERT_EQ(loaded.numRows(), original.numRows());
    for (size_t r = 0; r < original.numRows(); ++r) {
        EXPECT_DOUBLE_EQ(loaded.powerW()[r], original.powerW()[r]);
        EXPECT_EQ(loaded.runIds()[r], original.runIds()[r]);
        EXPECT_EQ(loaded.machineIds()[r], original.machineIds()[r]);
        EXPECT_EQ(loaded.workloadIds()[r], original.workloadIds()[r]);
        for (size_t c = 0; c < original.numFeatures(); ++c) {
            EXPECT_DOUBLE_EQ(loaded.features()(r, c),
                             original.features()(r, c));
        }
    }
    EXPECT_EQ(loaded.workloadNames(), original.workloadNames());

    std::remove(path.c_str());
    std::remove((path + ".workloads").c_str());
}

TEST(TraceIo, MissingSidecarIsRecoverable)
{
    const std::string path = ::testing::TempDir() + "ds2.csv";
    saveDataset(path, sampleDataset());
    std::remove((path + ".workloads").c_str());
    EXPECT_RAISES(loadDataset(path), "sidecar");
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsRecoverable)
{
    EXPECT_RAISES(loadDataset("/no/such/dataset.csv"), "cannot open");
    const auto result = tryLoadDataset("/no/such/dataset.csv");
    EXPECT_FALSE(result.hasValue());
    EXPECT_NE(result.error().find("cannot open"), std::string::npos);
}

TEST(TraceIo, BadWorkloadIdReportsFileAndLine)
{
    const std::string path = ::testing::TempDir() + "ds3.csv";
    saveDataset(path, sampleDataset());
    // Corrupt the workload id of the second data row (file line 3)
    // to point past the sidecar table.
    {
        std::ofstream out(path);
        out << "util,freq,disk,__power_w,__run_id,__machine_id,"
               "__workload_id\n"
            << "50.5,2260,1e6,35.2,0,0,0\n"
            << "80,2260,2e6,41.7,0,1,9\n";
    }
    EXPECT_RAISES(loadDataset(path),
                  path + ":3: workload id 9 out of range");
    std::remove(path.c_str());
    std::remove((path + ".workloads").c_str());
}

} // namespace
} // namespace chaos
