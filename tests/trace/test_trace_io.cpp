/**
 * @file
 * Tests for dataset persistence (save/load round trip).
 */
#include <cstdio>

#include <gtest/gtest.h>

#include "trace/trace_io.hpp"

namespace chaos {
namespace {

Dataset
sampleDataset()
{
    Dataset ds({"util", "freq", "disk"});
    ds.addRow({50.5, 2260, 1e6}, 35.2, 0, 0, "Sort");
    ds.addRow({80.0, 2260, 2e6}, 41.7, 0, 1, "Sort");
    ds.addRow({10.0, 800, 0.0}, 27.1, 1, 0, "Prime");
    return ds;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const std::string path = ::testing::TempDir() + "ds.csv";
    const Dataset original = sampleDataset();
    saveDataset(path, original);
    const Dataset loaded = loadDataset(path);

    EXPECT_EQ(loaded.featureNames(), original.featureNames());
    ASSERT_EQ(loaded.numRows(), original.numRows());
    for (size_t r = 0; r < original.numRows(); ++r) {
        EXPECT_DOUBLE_EQ(loaded.powerW()[r], original.powerW()[r]);
        EXPECT_EQ(loaded.runIds()[r], original.runIds()[r]);
        EXPECT_EQ(loaded.machineIds()[r], original.machineIds()[r]);
        EXPECT_EQ(loaded.workloadIds()[r], original.workloadIds()[r]);
        for (size_t c = 0; c < original.numFeatures(); ++c) {
            EXPECT_DOUBLE_EQ(loaded.features()(r, c),
                             original.features()(r, c));
        }
    }
    EXPECT_EQ(loaded.workloadNames(), original.workloadNames());

    std::remove(path.c_str());
    std::remove((path + ".workloads").c_str());
}

TEST(TraceIo, MissingSidecarIsFatal)
{
    const std::string path = ::testing::TempDir() + "ds2.csv";
    saveDataset(path, sampleDataset());
    std::remove((path + ".workloads").c_str());
    EXPECT_EXIT(loadDataset(path), ::testing::ExitedWithCode(1),
                "sidecar");
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(loadDataset("/no/such/dataset.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace chaos
