/**
 * @file
 * Tests for dataset assembly and manipulation.
 */
#include <set>

#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "oscounters/counter_catalog.hpp"
#include "trace/dataset.hpp"
#include "workloads/standard_workloads.hpp"

namespace chaos {
namespace {

/** Small synthetic dataset with hand-picked features. */
Dataset
tinyDataset()
{
    Dataset ds({"f0", "f1", "f2"});
    ds.addRow({1, 10, 5}, 100, 0, 0, "Sort");
    ds.addRow({2, 20, 5}, 110, 0, 1, "Sort");
    ds.addRow({3, 30, 5}, 120, 1, 0, "Prime");
    ds.addRow({4, 40, 5}, 130, 1, 1, "Prime");
    return ds;
}

TEST(Dataset, AddRowTracksProvenance)
{
    const Dataset ds = tinyDataset();
    EXPECT_EQ(ds.numRows(), 4u);
    EXPECT_EQ(ds.numFeatures(), 3u);
    EXPECT_EQ(ds.workloadNames(),
              (std::vector<std::string>{"Sort", "Prime"}));
    EXPECT_EQ(ds.workloadIds()[2], 1);
    EXPECT_EQ(ds.runIds()[3], 1);
    EXPECT_EQ(ds.machineIds()[1], 1);
    EXPECT_DOUBLE_EQ(ds.powerW()[2], 120.0);
}

TEST(Dataset, WrongWidthRowPanics)
{
    Dataset ds({"a", "b"});
    EXPECT_DEATH(ds.addRow({1.0}, 1.0, 0, 0, "w"), "width mismatch");
}

TEST(Dataset, FeatureIndexLookup)
{
    const Dataset ds = tinyDataset();
    EXPECT_EQ(ds.featureIndex("f1"), 1u);
    EXPECT_RAISES(ds.featureIndex("nope"), "not found");
}

TEST(Dataset, SelectFeaturesKeepsProvenance)
{
    const Dataset ds = tinyDataset();
    const Dataset sub = ds.selectFeaturesByName({"f2", "f0"});
    EXPECT_EQ(sub.numFeatures(), 2u);
    EXPECT_EQ(sub.featureNames()[0], "f2");
    EXPECT_DOUBLE_EQ(sub.features()(1, 1), 2.0);
    EXPECT_EQ(sub.runIds(), ds.runIds());
    EXPECT_EQ(sub.workloadNames(), ds.workloadNames());
}

TEST(Dataset, SelectRowsKeepsAlignment)
{
    const Dataset ds = tinyDataset();
    const Dataset sub = ds.selectRows({3, 0});
    EXPECT_EQ(sub.numRows(), 2u);
    EXPECT_DOUBLE_EQ(sub.powerW()[0], 130.0);
    EXPECT_EQ(sub.machineIds()[1], 0);
    EXPECT_EQ(sub.workloadIds()[0], 1);  // Prime keeps its id.
}

TEST(Dataset, FilterWorkload)
{
    const Dataset ds = tinyDataset();
    const Dataset prime = ds.filterWorkload("Prime");
    EXPECT_EQ(prime.numRows(), 2u);
    for (size_t r = 0; r < prime.numRows(); ++r)
        EXPECT_GE(prime.powerW()[r], 120.0);

    const Dataset none = ds.filterWorkload("PageRank");
    EXPECT_EQ(none.numRows(), 0u);
}

TEST(Dataset, FilterMachine)
{
    const Dataset ds = tinyDataset();
    const Dataset m1 = ds.filterMachine(1);
    EXPECT_EQ(m1.numRows(), 2u);
    EXPECT_DOUBLE_EQ(m1.powerW()[0], 110.0);
    EXPECT_DOUBLE_EQ(m1.powerW()[1], 130.0);
}

TEST(Dataset, AppendMergesWorkloadTables)
{
    Dataset a({"x"});
    a.addRow({1}, 10, 0, 0, "Sort");
    Dataset b({"x"});
    b.addRow({2}, 20, 1, 0, "Prime");
    b.addRow({3}, 30, 1, 0, "Sort");
    a.append(b);
    EXPECT_EQ(a.numRows(), 3u);
    EXPECT_EQ(a.workloadNames(),
              (std::vector<std::string>{"Sort", "Prime"}));
    EXPECT_EQ(a.workloadIds()[1], 1);
    EXPECT_EQ(a.workloadIds()[2], 0);
}

TEST(Dataset, AppendFeatureMismatchPanics)
{
    Dataset a({"x"});
    Dataset b({"y"});
    b.addRow({1}, 1, 0, 0, "w");
    EXPECT_DEATH(a.append(b), "feature space mismatch");
}

TEST(Dataset, ConstantColumnsDetected)
{
    const Dataset ds = tinyDataset();
    const auto constants = ds.constantColumns();
    ASSERT_EQ(constants.size(), 1u);
    EXPECT_EQ(constants[0], 2u);  // f2 is always 5.
}

TEST(Dataset, FromRunResultsFlattensEverything)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 2, 1);
    RunConfig config;
    config.idleLeadInSeconds = 3.0;
    config.idleLeadOutSeconds = 3.0;
    config.durationScale = 0.1;
    WordCountWorkload workload;
    std::vector<RunResult> runs;
    runs.push_back(runWorkload(cluster, workload, 1, 0, config));
    runs.push_back(runWorkload(cluster, workload, 2, 1, config));

    const Dataset ds = Dataset::fromRunResults(runs);
    size_t expected = 0;
    for (const auto &run : runs) {
        for (const auto &records : run.machineRecords)
            expected += records.size();
    }
    EXPECT_EQ(ds.numRows(), expected);
    EXPECT_EQ(ds.numFeatures(), CounterCatalog::instance().size());
    EXPECT_EQ(ds.workloadNames(),
              std::vector<std::string>{"WordCount"});

    // Both runs and machines appear.
    std::set<int> run_ids(ds.runIds().begin(), ds.runIds().end());
    EXPECT_EQ(run_ids.size(), 2u);
    std::set<int> machine_ids(ds.machineIds().begin(),
                              ds.machineIds().end());
    EXPECT_EQ(machine_ids.size(), 2u);
}

} // namespace
} // namespace chaos
