/**
 * @file
 * Tests for the ground-truth power model: envelope fidelity,
 * monotonicity, nonlinearity, and machine-to-machine variation.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "sim/truth_power.hpp"

namespace chaos {
namespace {

MachineState
stateFor(const MachineSpec &spec, double util, double freq_rel,
         double disk_util = 0.0, double net = 0.0, double mem = 0.0)
{
    MachineState state;
    state.coreUtilization.assign(spec.numCores, util);
    state.coreFrequencyMhz.assign(
        spec.numCores, spec.maxFrequencyMhz() * freq_rel);
    state.disks.resize(spec.numDisks);
    for (auto &disk : state.disks) {
        disk.utilization = disk_util;
        disk.readBytes = disk_util * spec.diskBandwidthMBs * 1e6;
    }
    state.netRxBytes = net;
    state.netTxBytes = net;
    state.memIntensity = mem;
    return state;
}

class TruthPowerTest : public ::testing::TestWithParam<MachineClass>
{
  protected:
    MachineSpec spec = machineSpecFor(GetParam());
    TruthPowerModel truth{spec, Rng(42)};
};

TEST_P(TruthPowerTest, IdlePowerNearEnvelopeBottom)
{
    const double idle =
        truth.deterministicPower(stateFor(spec, 0.0, 1.0));
    // Realized idle varies by a few percent around the spec value
    // (machine variation), plus a small frequency-floor component.
    EXPECT_GT(idle, spec.idlePowerW * 0.90);
    EXPECT_LT(idle, spec.idlePowerW + 0.25 * spec.dynamicRangeW());
}

TEST_P(TruthPowerTest, FullLoadApproachesEnvelopeTop)
{
    const double full = truth.deterministicPower(
        stateFor(spec, 1.0, 1.0, 1.0, 125e6, 1.0));
    EXPECT_GT(full, spec.idlePowerW + 0.65 * spec.dynamicRangeW());
    EXPECT_LT(full, spec.maxPowerW * 1.15);
}

TEST_P(TruthPowerTest, PowerIsMonotoneInUtilization)
{
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.1) {
        const double p =
            truth.deterministicPower(stateFor(spec, u, 1.0));
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST_P(TruthPowerTest, InstanceEnvelopeIsConsistent)
{
    EXPECT_GT(truth.maxPowerW(), truth.idlePowerW());
    // Realized envelope within ~15% of the spec envelope.
    EXPECT_NEAR(truth.idlePowerW(), spec.idlePowerW,
                0.15 * spec.idlePowerW);
    EXPECT_NEAR(truth.maxPowerW(), spec.maxPowerW,
                0.15 * spec.maxPowerW);
}

TEST_P(TruthPowerTest, StepAddsBoundedNoise)
{
    const MachineState state = stateFor(spec, 0.5, 1.0);
    const double deterministic = truth.deterministicPower(state);
    double max_dev = 0.0;
    TruthPowerModel noisy(spec, Rng(42));
    for (int i = 0; i < 200; ++i) {
        max_dev = std::max(
            max_dev, std::fabs(noisy.step(state) - deterministic));
    }
    EXPECT_GT(max_dev, 0.0);
    // Noise + hidden-mix wander stays well inside the dynamic range.
    EXPECT_LT(max_dev, 0.35 * spec.dynamicRangeW());
}

INSTANTIATE_TEST_SUITE_P(
    Classes, TruthPowerTest,
    ::testing::ValuesIn(allMachineClasses()),
    [](const ::testing::TestParamInfo<MachineClass> &info) {
        return machineClassName(info.param);
    });

TEST(TruthPower, FrequencyScalingInteractsWithUtilization)
{
    // The power cost of utilization must depend on frequency — the
    // nonlinearity that motivates quadratic/switching models on DVFS
    // platforms (paper Fig. 4).
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    TruthPowerModel truth(spec, Rng(7));

    const double low_f_delta =
        truth.deterministicPower(stateFor(spec, 1.0, 0.3)) -
        truth.deterministicPower(stateFor(spec, 0.0, 0.3));
    const double high_f_delta =
        truth.deterministicPower(stateFor(spec, 1.0, 1.0)) -
        truth.deterministicPower(stateFor(spec, 0.0, 1.0));
    EXPECT_GT(high_f_delta, 1.5 * low_f_delta);
}

TEST(TruthPower, ConvexResponseUnderpredictsTopForLinearFit)
{
    // AC power is convex in aggregate activity: the midpoint power
    // lies below the chord between idle and full load (why linear
    // models clip the top of the range, paper Fig. 5).
    const MachineSpec spec = machineSpecFor(MachineClass::Athlon);
    TruthPowerModel truth(spec, Rng(8));
    const double p0 =
        truth.deterministicPower(stateFor(spec, 0.0, 1.0));
    const double p_half =
        truth.deterministicPower(stateFor(spec, 0.5, 1.0));
    const double p1 =
        truth.deterministicPower(stateFor(spec, 1.0, 1.0));
    EXPECT_LT(p_half, 0.5 * (p0 + p1));
}

TEST(TruthPower, C1StateSavesPowerOnServers)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Opteron);
    TruthPowerModel truth(spec, Rng(9));
    MachineState idle = stateFor(spec, 0.0, 0.5);
    const double awake = truth.deterministicPower(idle);
    idle.inC1 = true;
    const double sleeping = truth.deterministicPower(idle);
    EXPECT_LT(sleeping, awake);
}

TEST(TruthPower, MachineToMachineVariationWithinTenPercent)
{
    // Paper Section III-B: identical machines vary by up to ~10%.
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    std::vector<double> idles, fulls;
    for (uint64_t seed = 0; seed < 30; ++seed) {
        TruthPowerModel truth(spec, Rng(1000 + seed));
        idles.push_back(
            truth.deterministicPower(stateFor(spec, 0.0, 1.0)));
        fulls.push_back(truth.deterministicPower(
            stateFor(spec, 1.0, 1.0, 1.0, 125e6, 1.0)));
    }
    auto spread = [](const std::vector<double> &v) {
        double lo = v[0], hi = v[0];
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
        }
        return (hi - lo) / lo;
    };
    EXPECT_GT(spread(idles), 0.01);   // Variation exists...
    EXPECT_LT(spread(idles), 0.20);   // ...but is bounded.
    EXPECT_GT(spread(fulls), 0.01);
    EXPECT_LT(spread(fulls), 0.20);
}

TEST(TruthPower, DiskActivityRaisesPowerMoreOnDiskHeavyPlatforms)
{
    const MachineSpec xeon = machineSpecFor(MachineClass::XeonSas);
    const MachineSpec mobile = machineSpecFor(MachineClass::Core2);
    TruthPowerModel truth_xeon(xeon, Rng(10));
    TruthPowerModel truth_mobile(mobile, Rng(10));

    auto disk_delta = [](TruthPowerModel &truth,
                         const MachineSpec &spec) {
        const double quiet =
            truth.deterministicPower(stateFor(spec, 0.3, 1.0, 0.0));
        const double busy =
            truth.deterministicPower(stateFor(spec, 0.3, 1.0, 1.0));
        return (busy - quiet) / spec.dynamicRangeW();
    };
    EXPECT_GT(disk_delta(truth_xeon, xeon),
              disk_delta(truth_mobile, mobile));
}

TEST(TruthPower, WrongCoreCountPanics)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    TruthPowerModel truth(spec, Rng(11));
    MachineState bad;
    bad.coreUtilization = {0.5};
    bad.coreFrequencyMhz = {2260.0};
    EXPECT_DEATH(truth.deterministicPower(bad), "wrong core count");
}

} // namespace
} // namespace chaos
