/**
 * @file
 * Tests for the hypothetical FutureServer platform (paper discussion:
 * fully independent per-core DVFS decorrelates core frequencies).
 */
#include <gtest/gtest.h>

#include "sim/dvfs.hpp"
#include "sim/machine.hpp"
#include "stats/correlation.hpp"

namespace chaos {
namespace {

TEST(FutureServer, NotPartOfThePaperSixButExtended)
{
    const auto &paper = allMachineClasses();
    EXPECT_EQ(paper.size(), 6u);
    for (MachineClass mc : paper)
        EXPECT_NE(mc, MachineClass::FutureServer);

    const auto &extended = extendedMachineClasses();
    EXPECT_EQ(extended.size(), 7u);
    EXPECT_EQ(extended.back(), MachineClass::FutureServer);
    EXPECT_EQ(machineClassFromName("FutureServer"),
              MachineClass::FutureServer);
}

TEST(FutureServer, SpecDeclaresIndependentDvfs)
{
    const MachineSpec spec =
        machineSpecFor(MachineClass::FutureServer);
    EXPECT_TRUE(spec.independentDvfs);
    EXPECT_TRUE(spec.perCoreDvfs);
    EXPECT_EQ(spec.efficiencyCores, 4u);
    EXPECT_EQ(spec.pStatesMhz.size(), 5u);
    EXPECT_GT(spec.dynamicRangeW(), 100.0);
}

TEST(FutureServer, EfficiencyCoresNeverExceedTheCap)
{
    const MachineSpec spec =
        machineSpecFor(MachineClass::FutureServer);
    const double cap =
        spec.pStatesMhz[spec.pStatesMhz.size() / 2];
    DvfsGovernor governor(spec, Rng(1));
    Rng util_rng(2);
    for (int t = 0; t < 500; ++t) {
        std::vector<double> utils(spec.numCores);
        for (auto &u : utils)
            u = util_rng.uniform();
        const auto freqs = governor.step(utils);
        for (size_t c = spec.numCores - spec.efficiencyCores;
             c < spec.numCores; ++c) {
            EXPECT_LE(freqs[c], cap) << "core " << c;
        }
    }
}

TEST(FutureServer, PerformanceCoresCanReachTop)
{
    const MachineSpec spec =
        machineSpecFor(MachineClass::FutureServer);
    DvfsGovernor governor(spec, Rng(3));
    const std::vector<double> busy(spec.numCores, 0.95);
    std::vector<double> freqs;
    for (int t = 0; t < 10; ++t)
        freqs = governor.step(busy);  // Gradual ramp to the top.
    EXPECT_DOUBLE_EQ(freqs[0], spec.maxFrequencyMhz());
}

TEST(FutureServer, RampIsGradualOneStatePerSecond)
{
    const MachineSpec spec =
        machineSpecFor(MachineClass::FutureServer);
    DvfsGovernor governor(spec, Rng(4));
    // Drive to the bottom first.
    const std::vector<double> idle(spec.numCores, 0.05);
    for (int t = 0; t < 10; ++t)
        governor.step(idle);
    // One busy second moves at most one P-state up.
    const std::vector<double> busy(spec.numCores, 0.95);
    const auto freqs = governor.step(busy);
    EXPECT_LE(freqs[0], spec.pStatesMhz[1]);
}

TEST(FutureServer, CoreFrequenciesDecorrelateUnderLoad)
{
    // The paper's prediction: less than 80% correlation on fully
    // independent platforms (2012 servers: ~95%+).
    Machine machine(machineSpecFor(MachineClass::FutureServer), 0, 5);
    Rng demand_rng(6);
    std::vector<double> core0, core3;
    for (int t = 0; t < 2500; ++t) {
        ActivityDemand demand;
        demand.cpuCoreSeconds = demand_rng.uniform(0.0, 8.0);
        const MachineTick tick = machine.step(demand);
        core0.push_back(tick.state.coreFrequencyMhz[0]);
        core3.push_back(tick.state.coreFrequencyMhz[3]);
    }
    EXPECT_LT(pearson(core0, core3), 0.80);
}

TEST(FutureServer, CorePackingConcentratesWork)
{
    // The energy-aware scheduler fills whole cores before spilling,
    // so at half load some cores are saturated and others idle.
    Machine machine(machineSpecFor(MachineClass::FutureServer), 0, 7);
    ActivityDemand demand;
    demand.cpuCoreSeconds = 4.0;  // Half of 8 cores.
    const MachineTick tick = machine.step(demand);
    int saturated = 0, idle = 0;
    for (double u : tick.state.coreUtilization) {
        if (u > 0.9)
            ++saturated;
        if (u < 0.1)
            ++idle;
    }
    EXPECT_GE(saturated, 3);
    EXPECT_GE(idle, 3);
}

} // namespace
} // namespace chaos
