/**
 * @file
 * Tests for the synthetic datacenter topology: deterministic pure
 * observations, group-path shape, ground-truth accounting, and the
 * metered/unmetered verdict split.
 */
#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "sim/fleet_topology.hpp"
#include "sim/machine_spec.hpp"

namespace chaos {
namespace {

TEST(FleetTopology, BuildsRequestedShapeWithUniqueIds)
{
    FleetTopologyConfig config;
    config.machines = 100;
    config.machinesPerFleet = 10;
    config.fleetsPerRack = 2;
    config.racksPerRow = 2;
    config.rowsPerDatacenter = 2;
    const FleetTopology topology(config);

    ASSERT_EQ(topology.size(), 100u);
    std::set<std::string> ids;
    for (const SyntheticMachine &m : topology.machines())
        ids.insert(m.id);
    EXPECT_EQ(ids.size(), 100u);

    // Machine 0 sits in the first fleet; machine 99 in fleet 9 =
    // dc1/row0/rack0/fleet1 under 10/2/2/2 arities.
    EXPECT_EQ(topology.machines()[0].groupPath,
              "dc0/row0/rack0/fleet0");
    EXPECT_EQ(topology.machines()[99].groupPath,
              "dc1/row0/rack0/fleet1");
    // Fleets are platform-homogeneous: one class per fleet.
    const auto &machines = topology.machines();
    for (std::size_t i = 1; i < 10; ++i)
        EXPECT_EQ(machines[i].machineClass, machines[0].machineClass);
}

TEST(FleetTopology, ZeroAritiesAreClampedNotFatal)
{
    FleetTopologyConfig config;
    config.machines = 5;
    config.machinesPerFleet = 0;
    config.fleetsPerRack = 0;
    config.racksPerRow = 0;
    config.rowsPerDatacenter = 0;
    const FleetTopology topology(config);
    EXPECT_EQ(topology.size(), 5u);
    EXPECT_EQ(topology.config().machinesPerFleet, 1u);
}

TEST(FleetTopology, IdenticalConfigsProduceIdenticalFleets)
{
    FleetTopologyConfig config;
    config.machines = 50;
    config.seed = 77;
    const FleetTopology a(config);
    const FleetTopology b(config);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.machines()[i].id, b.machines()[i].id);
        EXPECT_EQ(a.machines()[i].metered, b.machines()[i].metered);
        EXPECT_EQ(a.machines()[i].driftTruth,
                  b.machines()[i].driftTruth);
        EXPECT_DOUBLE_EQ(a.machines()[i].baseWatts,
                         b.machines()[i].baseWatts);
    }
}

TEST(FleetTopology, ObserveIsAPureFunctionOfMachineAndTick)
{
    FleetTopologyConfig config;
    config.machines = 40;
    config.seed = 5;
    const FleetTopology topology(config);

    // Same (index, tick) twice — and out of order — gives identical
    // state: observations share no generator, so any subset can be
    // synthesized in any order or concurrently.
    const SyntheticObservation late = topology.observe(7, 30);
    const SyntheticObservation early = topology.observe(7, 2);
    const SyntheticObservation lateAgain = topology.observe(7, 30);
    EXPECT_DOUBLE_EQ(late.watts, lateAgain.watts);
    EXPECT_DOUBLE_EQ(late.windowRmseW, lateAgain.windowRmseW);
    EXPECT_EQ(late.health, lateAgain.health);
    EXPECT_EQ(late.samples, lateAgain.samples);
    EXPECT_EQ(early.samples, 3u * 60u);
    EXPECT_EQ(late.samples, 31u * 60u);
}

TEST(FleetTopology, UnmeteredMachinesNeverEarnAVerdict)
{
    FleetTopologyConfig config;
    config.machines = 120;
    config.meteredFraction = 0.5;
    config.seed = 9;
    const FleetTopology topology(config);

    bool sawUnmetered = false, sawMetered = false;
    for (std::size_t i = 0; i < topology.size(); ++i) {
        const SyntheticObservation obs = topology.observe(i, 50);
        if (topology.machines()[i].metered) {
            sawMetered = true;
            EXPECT_TRUE(std::isfinite(obs.rollingDre));
            EXPECT_GT(obs.referenceSamples, 0u);
            EXPECT_NE(obs.quality, ModelQuality::Unknown);
        } else {
            sawUnmetered = true;
            EXPECT_TRUE(std::isnan(obs.rollingDre));
            EXPECT_EQ(obs.referenceSamples, 0u);
            EXPECT_EQ(obs.quality, ModelQuality::Unknown);
            EXPECT_FALSE(obs.drifted);
        }
    }
    EXPECT_TRUE(sawMetered);
    EXPECT_TRUE(sawUnmetered);
}

TEST(FleetTopology, DriftRampsAfterOnsetAndGroundTruthAdds)
{
    FleetTopologyConfig config;
    config.machines = 300;
    config.meteredFraction = 1.0;
    config.driftFraction = 0.3;
    config.seed = 21;
    const FleetTopology topology(config);

    std::size_t byPlatform = 0;
    for (const auto &[name, n] : topology.driftTruthByPlatform())
        byPlatform += n;
    EXPECT_EQ(byPlatform, topology.driftTruthTotal());
    ASSERT_GT(topology.driftTruthTotal(), 0u);

    // Pick a ground-truth drifter and compare before/after its onset.
    for (std::size_t i = 0; i < topology.size(); ++i) {
        const SyntheticMachine &m = topology.machines()[i];
        if (!m.driftTruth)
            continue;
        const auto before =
            topology.observe(i, m.driftStartTick - 1);
        const auto latched =
            topology.observe(i, m.driftStartTick + 20);
        EXPECT_FALSE(before.drifted);
        EXPECT_TRUE(latched.drifted);
        EXPECT_EQ(latched.quality, ModelQuality::Drifting);
        // Fully ramped error is ~3x the healthy window rMSE.
        EXPECT_GT(latched.windowRmseW, 2.0 * m.baseRmseW);
        break;
    }

    // Warmup: even a metered machine reports Unknown at tick 0.
    const auto warm = topology.observe(0, 0);
    EXPECT_EQ(warm.quality, ModelQuality::Unknown);
}

} // namespace
} // namespace chaos
