/**
 * @file
 * Tests that the platform specs reproduce the paper's Table I.
 */
#include <gtest/gtest.h>

#include "../support/raises.hpp"

#include "sim/machine_spec.hpp"

namespace chaos {
namespace {

TEST(MachineSpec, SixClassesInPaperOrder)
{
    const auto &classes = allMachineClasses();
    ASSERT_EQ(classes.size(), 6u);
    EXPECT_EQ(machineClassName(classes[0]), "Atom");
    EXPECT_EQ(machineClassName(classes[5]), "XeonSAS");
}

TEST(MachineSpec, NameRoundTrip)
{
    for (MachineClass mc : allMachineClasses())
        EXPECT_EQ(machineClassFromName(machineClassName(mc)), mc);
}

TEST(MachineSpec, UnknownNameIsFatal)
{
    EXPECT_RAISES(machineClassFromName("Pentium"),
                  "unknown machine class");
}

TEST(MachineSpec, TableIPowerEnvelopes)
{
    // Table I "Power Range" column.
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Atom).idlePowerW, 22);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Atom).maxPowerW, 26);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Core2).idlePowerW, 25);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Core2).maxPowerW, 46);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Athlon).idlePowerW, 54);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Athlon).maxPowerW, 104);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Opteron).idlePowerW,
                     135);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::Opteron).maxPowerW,
                     190);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::XeonSata).idlePowerW,
                     250);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::XeonSata).maxPowerW,
                     375);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::XeonSas).idlePowerW,
                     260);
    EXPECT_DOUBLE_EQ(machineSpecFor(MachineClass::XeonSas).maxPowerW,
                     380);
}

TEST(MachineSpec, AtomHasNoDvfs)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Atom);
    EXPECT_FALSE(spec.hasDvfs);
    EXPECT_FALSE(spec.hasC1);
    EXPECT_EQ(spec.pStatesMhz.size(), 1u);
    EXPECT_EQ(spec.numCores, 2u);
}

TEST(MachineSpec, ServersHavePerCoreDvfsAndC1)
{
    for (MachineClass mc : {MachineClass::Opteron,
                            MachineClass::XeonSata,
                            MachineClass::XeonSas}) {
        const MachineSpec spec = machineSpecFor(mc);
        EXPECT_TRUE(spec.perCoreDvfs) << spec.name;
        EXPECT_TRUE(spec.hasC1) << spec.name;
        EXPECT_EQ(spec.numCores, 8u) << spec.name;  // Dual socket x4.
        EXPECT_GE(spec.pStateDivergence, 0.12) << spec.name;
    }
}

TEST(MachineSpec, MobileAndDesktopHavePackageDvfs)
{
    for (MachineClass mc : {MachineClass::Core2, MachineClass::Athlon}) {
        const MachineSpec spec = machineSpecFor(mc);
        EXPECT_TRUE(spec.hasDvfs) << spec.name;
        EXPECT_FALSE(spec.perCoreDvfs) << spec.name;
        // Cores agree 99.8% of the time -> divergence 0.2%.
        EXPECT_NEAR(spec.pStateDivergence, 0.002, 1e-9) << spec.name;
    }
}

TEST(MachineSpec, DiskConfigurationsMatchTableI)
{
    EXPECT_EQ(machineSpecFor(MachineClass::Atom).numDisks, 1u);
    EXPECT_EQ(machineSpecFor(MachineClass::Atom).diskType,
              DiskType::Ssd);
    EXPECT_EQ(machineSpecFor(MachineClass::Opteron).numDisks, 2u);
    EXPECT_EQ(machineSpecFor(MachineClass::Opteron).diskType,
              DiskType::Sata10k);
    EXPECT_EQ(machineSpecFor(MachineClass::XeonSata).numDisks, 4u);
    EXPECT_EQ(machineSpecFor(MachineClass::XeonSas).numDisks, 6u);
    EXPECT_EQ(machineSpecFor(MachineClass::XeonSas).diskType,
              DiskType::Sas15k);
}

class AllSpecsTest : public ::testing::TestWithParam<MachineClass>
{
};

TEST_P(AllSpecsTest, InvariantsHold)
{
    const MachineSpec spec = machineSpecFor(GetParam());
    EXPECT_GT(spec.dynamicRangeW(), 0.0);
    EXPECT_GE(spec.numCores, 2u);
    EXPECT_GE(spec.numDisks, 1u);
    EXPECT_FALSE(spec.pStatesMhz.empty());
    // P-states ascend.
    for (size_t i = 1; i < spec.pStatesMhz.size(); ++i)
        EXPECT_LT(spec.pStatesMhz[i - 1], spec.pStatesMhz[i]);
    EXPECT_DOUBLE_EQ(spec.maxFrequencyMhz(), spec.pStatesMhz.back());
    EXPECT_DOUBLE_EQ(spec.minFrequencyMhz(), spec.pStatesMhz.front());
    // Component power shares sum to ~1.
    EXPECT_NEAR(spec.cpuPowerShare + spec.memPowerShare +
                    spec.diskPowerShare + spec.netPowerShare,
                1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Classes, AllSpecsTest,
    ::testing::ValuesIn(allMachineClasses()),
    [](const ::testing::TestParamInfo<MachineClass> &info) {
        return machineClassName(info.param);
    });

} // namespace
} // namespace chaos
