/**
 * @file
 * Tests for the Machine: demand-to-state conversion, OS state
 * dynamics, and run resets.
 */
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace chaos {
namespace {

ActivityDemand
busyDemand()
{
    ActivityDemand demand;
    demand.cpuCoreSeconds = 2.0;
    demand.diskReadBytes = 40e6;
    demand.diskWriteBytes = 10e6;
    demand.netRxBytes = 20e6;
    demand.netTxBytes = 5e6;
    demand.workingSetBytes = 1.5e9;
    demand.memIntensity = 0.5;
    demand.fsCacheOps = 500.0;
    return demand;
}

TEST(Machine, UtilizationStaysInUnitRange)
{
    Machine machine(machineSpecFor(MachineClass::Core2), 0, 1);
    for (int t = 0; t < 50; ++t) {
        ActivityDemand demand;
        demand.cpuCoreSeconds = (t % 5) * 1.0;  // 0..4 > numCores.
        const MachineTick tick = machine.step(demand);
        for (double u : tick.state.coreUtilization) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    }
}

TEST(Machine, SaturatedCpuDemandLoadsAllCores)
{
    Machine machine(machineSpecFor(MachineClass::Core2), 0, 2);
    ActivityDemand demand;
    demand.cpuCoreSeconds = 10.0;  // Far beyond 2 cores.
    MachineTick tick;
    for (int t = 0; t < 5; ++t)
        tick = machine.step(demand);
    for (double u : tick.state.coreUtilization)
        EXPECT_GT(u, 0.6);
}

TEST(Machine, IdleDemandYieldsNearIdlePower)
{
    Machine machine(machineSpecFor(MachineClass::Athlon), 0, 3);
    MachineTick tick;
    for (int t = 0; t < 20; ++t)
        tick = machine.step(ActivityDemand{});
    EXPECT_LT(tick.truePowerW,
              machine.idlePowerW() +
                  0.25 * (machine.maxPowerW() - machine.idlePowerW()));
}

TEST(Machine, BusyDemandRaisesPower)
{
    Machine machine(machineSpecFor(MachineClass::Athlon), 0, 4);
    double idle_power = 0.0;
    for (int t = 0; t < 10; ++t)
        idle_power = machine.step(ActivityDemand{}).truePowerW;
    double busy_power = 0.0;
    for (int t = 0; t < 10; ++t)
        busy_power = machine.step(busyDemand()).truePowerW;
    EXPECT_GT(busy_power, idle_power + 5.0);
}

TEST(Machine, CommittedBytesTrackWorkingSet)
{
    Machine machine(machineSpecFor(MachineClass::Core2), 0, 5);
    ActivityDemand demand;
    demand.workingSetBytes = 2.0e9;
    double committed = 0.0;
    for (int t = 0; t < 40; ++t)
        committed = machine.step(demand).state.committedBytes;
    EXPECT_NEAR(committed, 2.35e9, 0.25e9);
}

TEST(Machine, PageFilePeakIsMonotoneWithinRun)
{
    Machine machine(machineSpecFor(MachineClass::Core2), 0, 6);
    double prev_peak = 0.0;
    for (int t = 0; t < 30; ++t) {
        ActivityDemand demand;
        demand.workingSetBytes = (t % 7) * 0.3e9;
        const double peak =
            machine.step(demand).state.pageFileBytesPeak;
        EXPECT_GE(peak, prev_peak);
        prev_peak = peak;
    }
}

TEST(Machine, ResetRunStateClearsPeakButNotUptime)
{
    Machine machine(machineSpecFor(MachineClass::Core2), 0, 7);
    ActivityDemand demand;
    demand.workingSetBytes = 2.5e9;
    MachineTick tick;
    for (int t = 0; t < 30; ++t)
        tick = machine.step(demand);
    const double peak_before = tick.state.pageFileBytesPeak;
    const double uptime_before = tick.state.uptimeSeconds;

    machine.resetRunState();
    tick = machine.step(ActivityDemand{});
    EXPECT_LT(tick.state.pageFileBytesPeak, peak_before);
    EXPECT_DOUBLE_EQ(tick.state.timeSeconds, 0.0);
    EXPECT_GT(tick.state.uptimeSeconds, uptime_before);
}

TEST(Machine, DiskTrafficIsCappedByBandwidth)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine(spec, 0, 8);
    ActivityDemand demand;
    demand.diskReadBytes = 10e9;  // Way beyond one SSD.
    const MachineTick tick = machine.step(demand);
    EXPECT_LE(tick.state.totalDiskBytes(),
              spec.numDisks * spec.diskBandwidthMBs * 1e6 * 1.01);
    for (const auto &disk : tick.state.disks) {
        EXPECT_GE(disk.utilization, 0.0);
        EXPECT_LE(disk.utilization, 1.0);
    }
}

TEST(Machine, RandomAccessCreatesSeeksOnHddOnly)
{
    ActivityDemand demand;
    demand.diskReadBytes = 30e6;
    demand.diskRandomFraction = 0.8;

    Machine hdd(machineSpecFor(MachineClass::XeonSas), 0, 9);
    double hdd_seeks = 0.0;
    for (const auto &disk : hdd.step(demand).state.disks)
        hdd_seeks += disk.seekRate;
    EXPECT_GT(hdd_seeks, 0.0);

    Machine ssd(machineSpecFor(MachineClass::Core2), 0, 10);
    double ssd_seeks = 0.0;
    for (const auto &disk : ssd.step(demand).state.disks)
        ssd_seeks += disk.seekRate;
    EXPECT_DOUBLE_EQ(ssd_seeks, 0.0);
}

TEST(Machine, NetworkIsCappedAtLineRate)
{
    Machine machine(machineSpecFor(MachineClass::Core2), 0, 11);
    ActivityDemand demand;
    demand.netRxBytes = 1e9;
    demand.netTxBytes = 1e9;
    const MachineTick tick = machine.step(demand);
    EXPECT_LE(tick.state.netRxBytes, 125e6);
    EXPECT_LE(tick.state.netTxBytes, 125e6);
}

TEST(Machine, SameSeedReproducesSamePowerTrace)
{
    Machine a(machineSpecFor(MachineClass::Opteron), 0, 12);
    Machine b(machineSpecFor(MachineClass::Opteron), 0, 12);
    for (int t = 0; t < 30; ++t) {
        const auto ta = a.step(busyDemand());
        const auto tb = b.step(busyDemand());
        ASSERT_DOUBLE_EQ(ta.truePowerW, tb.truePowerW);
    }
}

TEST(Machine, DifferentSeedsRealizeDifferentMachines)
{
    Machine a(machineSpecFor(MachineClass::Opteron), 0, 13);
    Machine b(machineSpecFor(MachineClass::Opteron), 1, 14);
    EXPECT_NE(a.idlePowerW(), b.idlePowerW());
}

TEST(ActivityDemand, AdditionAccumulates)
{
    ActivityDemand a = busyDemand();
    ActivityDemand b = busyDemand();
    a += b;
    EXPECT_DOUBLE_EQ(a.cpuCoreSeconds, 4.0);
    EXPECT_DOUBLE_EQ(a.diskReadBytes, 80e6);
    EXPECT_DOUBLE_EQ(a.netTxBytes, 10e6);
    // Memory pressure composes as a union, staying below 1.
    EXPECT_GT(a.memIntensity, 0.5);
    EXPECT_LE(a.memIntensity, 1.0);
}

} // namespace
} // namespace chaos
