/**
 * @file
 * Tests for the DVFS governor: platform-specific P-state behaviour
 * the paper documents in Section III-A.
 */
#include <set>

#include <gtest/gtest.h>

#include "sim/dvfs.hpp"

namespace chaos {
namespace {

TEST(Dvfs, AtomAlwaysRunsAtFixedFrequency)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Atom);
    DvfsGovernor governor(spec, Rng(1));
    for (int t = 0; t < 200; ++t) {
        const double util = (t % 3) * 0.5;
        const auto freqs = governor.step({util, util});
        for (double f : freqs)
            EXPECT_DOUBLE_EQ(f, 1600.0);
        EXPECT_FALSE(governor.inC1());
    }
}

TEST(Dvfs, HighUtilizationSelectsTopPState)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    DvfsGovernor governor(spec, Rng(2));
    const auto freqs = governor.step({0.95, 0.9});
    EXPECT_DOUBLE_EQ(freqs[0], spec.maxFrequencyMhz());
}

TEST(Dvfs, SustainedIdleWalksDownThePStates)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    DvfsGovernor governor(spec, Rng(3));
    std::vector<double> last;
    for (int t = 0; t < 10; ++t)
        last = governor.step({0.05, 0.05});
    EXPECT_DOUBLE_EQ(last[0], spec.minFrequencyMhz());
}

TEST(Dvfs, PackageDvfsKeepsCoresMostlyInLockstep)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    DvfsGovernor governor(spec, Rng(4));
    int divergent = 0;
    const int seconds = 5000;
    Rng util_rng(5);
    for (int t = 0; t < seconds; ++t) {
        const double u = util_rng.uniform();
        const auto freqs = governor.step({u, u});
        if (freqs[0] != freqs[1])
            ++divergent;
    }
    // Paper: both cores report the same frequency 99.8% of the time.
    EXPECT_LT(static_cast<double>(divergent) / seconds, 0.01);
}

TEST(Dvfs, PerCoreDvfsDivergesOnServers)
{
    const MachineSpec spec = machineSpecFor(MachineClass::XeonSata);
    DvfsGovernor governor(spec, Rng(6));
    Rng util_rng(7);
    int divergent = 0;
    const int seconds = 3000;
    for (int t = 0; t < seconds; ++t) {
        std::vector<double> utils(spec.numCores);
        for (auto &u : utils)
            u = util_rng.uniform(0.3, 0.5);  // Mid-range utilization.
        const auto freqs = governor.step(utils);
        for (size_t c = 1; c < freqs.size(); ++c) {
            if (freqs[c] != freqs[0]) {
                ++divergent;
                break;
            }
        }
    }
    // Paper: core 0 differs from a sibling up to 20% of seconds on
    // the Xeons. Expect a clearly nonzero but bounded rate.
    const double rate = static_cast<double>(divergent) / seconds;
    EXPECT_GT(rate, 0.05);
    EXPECT_LT(rate, 0.6);
}

TEST(Dvfs, AllIdleEntersC1OnServers)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Opteron);
    DvfsGovernor governor(spec, Rng(8));
    const std::vector<double> idle(spec.numCores, 0.0);
    const auto freqs = governor.step(idle);
    EXPECT_TRUE(governor.inC1());
    // Paper: C1 reports 0 MHz.
    for (double f : freqs)
        EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(Dvfs, BusyServerNeverInC1)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Opteron);
    DvfsGovernor governor(spec, Rng(9));
    std::vector<double> utils(spec.numCores, 0.5);
    governor.step(utils);
    EXPECT_FALSE(governor.inC1());
}

TEST(Dvfs, NoC1OnMobileParts)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    DvfsGovernor governor(spec, Rng(10));
    governor.step({0.0, 0.0});
    EXPECT_FALSE(governor.inC1());
}

TEST(Dvfs, WrongCoreCountPanics)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    DvfsGovernor governor(spec, Rng(11));
    EXPECT_DEATH(governor.step({0.5}), "wrong core count");
}

TEST(Dvfs, FrequenciesAreAlwaysValidPStates)
{
    const MachineSpec spec = machineSpecFor(MachineClass::XeonSas);
    DvfsGovernor governor(spec, Rng(12));
    std::set<double> valid(spec.pStatesMhz.begin(),
                           spec.pStatesMhz.end());
    valid.insert(0.0);  // C1.
    Rng util_rng(13);
    for (int t = 0; t < 1000; ++t) {
        std::vector<double> utils(spec.numCores);
        for (auto &u : utils)
            u = util_rng.uniform();
        for (double f : governor.step(utils))
            EXPECT_TRUE(valid.count(f)) << f;
    }
}

} // namespace
} // namespace chaos
