/**
 * @file
 * Property tests for ActivityDemand composition — the operator the
 * scheduler uses to stack concurrent tasks on one machine.
 */
#include <gtest/gtest.h>

#include "sim/activity.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

ActivityDemand
randomDemand(Rng &rng)
{
    ActivityDemand demand;
    demand.cpuCoreSeconds = rng.uniform(0.0, 2.0);
    demand.diskReadBytes = rng.uniform(0.0, 5e7);
    demand.diskWriteBytes = rng.uniform(0.0, 5e7);
    demand.diskRandomFraction = rng.uniform(0.0, 1.0);
    demand.netRxBytes = rng.uniform(0.0, 3e7);
    demand.netTxBytes = rng.uniform(0.0, 3e7);
    demand.workingSetBytes = rng.uniform(0.0, 2e9);
    demand.memIntensity = rng.uniform(0.0, 1.0);
    demand.fsCacheOps = rng.uniform(0.0, 2000.0);
    return demand;
}

TEST(ActivityDemand, DefaultIsIdle)
{
    const ActivityDemand idle;
    EXPECT_DOUBLE_EQ(idle.cpuCoreSeconds, 0.0);
    EXPECT_DOUBLE_EQ(idle.diskReadBytes, 0.0);
    EXPECT_DOUBLE_EQ(idle.netRxBytes, 0.0);
    EXPECT_DOUBLE_EQ(idle.memIntensity, 0.0);
}

TEST(ActivityDemand, AddingIdleIsIdentityForRates)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        ActivityDemand demand = randomDemand(rng);
        const ActivityDemand before = demand;
        demand += ActivityDemand{};
        EXPECT_DOUBLE_EQ(demand.cpuCoreSeconds,
                         before.cpuCoreSeconds);
        EXPECT_DOUBLE_EQ(demand.diskReadBytes, before.diskReadBytes);
        EXPECT_DOUBLE_EQ(demand.diskWriteBytes,
                         before.diskWriteBytes);
        EXPECT_DOUBLE_EQ(demand.netRxBytes, before.netRxBytes);
        EXPECT_DOUBLE_EQ(demand.netTxBytes, before.netTxBytes);
        EXPECT_DOUBLE_EQ(demand.memIntensity, before.memIntensity);
        EXPECT_DOUBLE_EQ(demand.fsCacheOps, before.fsCacheOps);
    }
}

TEST(ActivityDemand, RatesAddLinearly)
{
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        const ActivityDemand a = randomDemand(rng);
        const ActivityDemand b = randomDemand(rng);
        ActivityDemand sum = a;
        sum += b;
        EXPECT_NEAR(sum.cpuCoreSeconds,
                    a.cpuCoreSeconds + b.cpuCoreSeconds, 1e-12);
        EXPECT_NEAR(sum.diskReadBytes,
                    a.diskReadBytes + b.diskReadBytes, 1e-3);
        EXPECT_NEAR(sum.netTxBytes, a.netTxBytes + b.netTxBytes,
                    1e-3);
        EXPECT_NEAR(sum.workingSetBytes,
                    a.workingSetBytes + b.workingSetBytes, 1e-3);
        EXPECT_NEAR(sum.fsCacheOps, a.fsCacheOps + b.fsCacheOps,
                    1e-9);
    }
}

TEST(ActivityDemand, MemIntensityComposesAsUnionAndStaysBounded)
{
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const ActivityDemand a = randomDemand(rng);
        const ActivityDemand b = randomDemand(rng);
        ActivityDemand sum = a;
        sum += b;
        // Union formula: p + q - pq, always in [max(p,q), 1].
        EXPECT_GE(sum.memIntensity,
                  std::max(a.memIntensity, b.memIntensity) - 1e-12);
        EXPECT_LE(sum.memIntensity, 1.0 + 1e-12);
        EXPECT_NEAR(sum.memIntensity,
                    a.memIntensity + b.memIntensity -
                        a.memIntensity * b.memIntensity,
                    1e-12);
    }
}

TEST(ActivityDemand, RandomFractionIsTrafficWeighted)
{
    // A task with 3x the traffic should dominate the blended random
    // fraction.
    ActivityDemand heavy;
    heavy.diskReadBytes = 30e6;
    heavy.diskRandomFraction = 0.9;
    ActivityDemand light;
    light.diskReadBytes = 10e6;
    light.diskRandomFraction = 0.1;

    ActivityDemand sum = heavy;
    sum += light;
    EXPECT_NEAR(sum.diskRandomFraction,
                (0.9 * 30e6 + 0.1 * 10e6) / 40e6, 1e-9);

    // Order matters only through weighting, not result.
    ActivityDemand reversed = light;
    reversed += heavy;
    EXPECT_NEAR(reversed.diskRandomFraction, sum.diskRandomFraction,
                1e-9);
}

TEST(ActivityDemand, RandomFractionStaysInUnitInterval)
{
    Rng rng(4);
    ActivityDemand acc;
    for (int i = 0; i < 100; ++i) {
        acc += randomDemand(rng);
        EXPECT_GE(acc.diskRandomFraction, 0.0);
        EXPECT_LE(acc.diskRandomFraction, 1.0);
    }
}

} // namespace
} // namespace chaos
