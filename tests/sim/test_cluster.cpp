/**
 * @file
 * Tests for cluster construction (homogeneous and heterogeneous).
 */
#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "sim/cluster.hpp"

namespace chaos {
namespace {

TEST(Cluster, HomogeneousHasRequestedShape)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 5, 1);
    EXPECT_EQ(cluster.size(), 5u);
    EXPECT_EQ(cluster.name(), "Core2 x5");
    for (size_t m = 0; m < 5; ++m) {
        EXPECT_EQ(cluster.machine(m).id(), m);
        EXPECT_EQ(cluster.machine(m).spec().machineClass,
                  MachineClass::Core2);
    }
}

TEST(Cluster, MachinesRealizeDistinctPowerCharacteristics)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Opteron, 5, 2);
    for (size_t a = 0; a < 5; ++a) {
        for (size_t b = a + 1; b < 5; ++b) {
            EXPECT_NE(cluster.machine(a).idlePowerW(),
                      cluster.machine(b).idlePowerW());
        }
    }
}

TEST(Cluster, MetersAreDistinct)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Atom, 3, 3);
    EXPECT_NE(cluster.meter(0).gain(), cluster.meter(1).gain());
}

TEST(Cluster, EnvelopeSumsOverMachines)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Athlon, 4, 4);
    double idle = 0.0, max = 0.0;
    for (size_t m = 0; m < 4; ++m) {
        idle += cluster.machine(m).idlePowerW();
        max += cluster.machine(m).maxPowerW();
    }
    EXPECT_DOUBLE_EQ(cluster.totalIdlePowerW(), idle);
    EXPECT_DOUBLE_EQ(cluster.totalMaxPowerW(), max);
}

TEST(Cluster, HeterogeneousCombinesClasses)
{
    // The paper's 10-machine Core2 + Opteron experiment.
    Cluster cluster = Cluster::heterogeneous(
        {{MachineClass::Core2, 5}, {MachineClass::Opteron, 5}}, 5);
    EXPECT_EQ(cluster.size(), 10u);
    EXPECT_EQ(cluster.name(), "Core2x5+Opteronx5");
    for (size_t m = 0; m < 5; ++m) {
        EXPECT_EQ(cluster.machine(m).spec().machineClass,
                  MachineClass::Core2);
    }
    for (size_t m = 5; m < 10; ++m) {
        EXPECT_EQ(cluster.machine(m).spec().machineClass,
                  MachineClass::Opteron);
        EXPECT_EQ(cluster.machine(m).id(), m);  // Consecutive ids.
    }
}

TEST(Cluster, EmptyClusterRaises)
{
    EXPECT_RAISES(Cluster::homogeneous(MachineClass::Atom, 0, 1),
                  "at least one");
    EXPECT_RAISES(Cluster::heterogeneous({}, 1), "needs groups");
}

TEST(Cluster, OutOfRangeAccessPanics)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Atom, 2, 6);
    EXPECT_DEATH(cluster.machine(2), "out of range");
    EXPECT_DEATH(cluster.meter(2), "out of range");
}

TEST(Cluster, ResetRunStateAffectsAllMachines)
{
    Cluster cluster = Cluster::homogeneous(MachineClass::Core2, 2, 7);
    ActivityDemand demand;
    demand.cpuCoreSeconds = 2.0;
    for (int t = 0; t < 10; ++t) {
        cluster.machine(0).step(demand);
        cluster.machine(1).step(demand);
    }
    cluster.resetRunState();
    const auto t0 = cluster.machine(0).step(demand);
    const auto t1 = cluster.machine(1).step(demand);
    EXPECT_DOUBLE_EQ(t0.state.timeSeconds, 0.0);
    EXPECT_DOUBLE_EQ(t1.state.timeSeconds, 0.0);
}

} // namespace
} // namespace chaos
