/**
 * @file
 * Tests for the WattsUp-style power meter model.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "sim/power_meter.hpp"

namespace chaos {
namespace {

TEST(PowerMeter, ReadingsAreQuantizedToTenths)
{
    PowerMeter meter(Rng(1));
    for (int i = 0; i < 100; ++i) {
        const double reading = meter.sample(123.456);
        const double tenths = reading * 10.0;
        EXPECT_NEAR(tenths, std::round(tenths), 1e-9);
    }
}

TEST(PowerMeter, CalibrationGainWithinAccuracySpec)
{
    // Gain drawn within +/- accuracy (clamped at 2 sigma of acc/2).
    for (uint64_t seed = 0; seed < 50; ++seed) {
        PowerMeter meter(Rng(seed), 0.015);
        EXPECT_GE(meter.gain(), 1.0 - 0.015);
        EXPECT_LE(meter.gain(), 1.0 + 0.015);
    }
}

TEST(PowerMeter, MetersDifferFromEachOther)
{
    PowerMeter a{Rng(1)};
    PowerMeter b{Rng(2)};
    EXPECT_NE(a.gain(), b.gain());
}

TEST(PowerMeter, MeanReadingTracksTruePowerTimesGain)
{
    PowerMeter meter(Rng(3));
    const double truth = 200.0;
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += meter.sample(truth);
    EXPECT_NEAR(sum / n, truth * meter.gain(), 0.5);
}

TEST(PowerMeter, PerSampleNoiseIsSmall)
{
    PowerMeter meter(Rng(4));
    const double truth = 300.0;
    double min_r = 1e9, max_r = -1e9;
    for (int i = 0; i < 1000; ++i) {
        const double r = meter.sample(truth);
        min_r = std::min(min_r, r);
        max_r = std::max(max_r, r);
    }
    // 0.3% per-sample noise: spread well under 3% of reading.
    EXPECT_LT(max_r - min_r, 0.03 * truth);
}

TEST(PowerMeter, NeverReturnsNegative)
{
    PowerMeter meter(Rng(5));
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(meter.sample(0.01), 0.0);
}

} // namespace
} // namespace chaos
