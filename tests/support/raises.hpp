/**
 * @file
 * Assertion helper for recoverable user-data errors: the statement
 * must raise chaos::RecoverableError whose message contains the given
 * substring. The library counterpart of EXPECT_EXIT for fatal().
 */
#ifndef CHAOS_TESTS_SUPPORT_RAISES_HPP
#define CHAOS_TESTS_SUPPORT_RAISES_HPP

#include <string>

#include <gtest/gtest.h>

#include "util/result.hpp"

#define EXPECT_RAISES(statement, substring)                               \
    do {                                                                  \
        try {                                                             \
            statement;                                                    \
            ADD_FAILURE() << "expected RecoverableError containing '"     \
                          << (substring) << "', nothing was raised";      \
        } catch (const chaos::RecoverableError &raised_) {                \
            EXPECT_NE(std::string(raised_.what()).find(substring),        \
                      std::string::npos)                                  \
                << "message was: " << raised_.what();                     \
        }                                                                 \
    } while (0)

#endif // CHAOS_TESTS_SUPPORT_RAISES_HPP
