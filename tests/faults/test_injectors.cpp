/**
 * @file
 * Tests for the fault-injection harness: per-class profiles, injector
 * semantics, seeded determinism, and replay over logged traces.
 */
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_profile.hpp"
#include "faults/injectors.hpp"

namespace chaos {
namespace {

std::vector<double>
rampVector(size_t n, double base)
{
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = base + double(i);
    return v;
}

TEST(FaultProfile, ZeroIntensityIsFaultFree)
{
    for (FaultClass fc : allFaultClasses()) {
        const FaultProfile profile = FaultProfile::forClass(fc, 0.0);
        EXPECT_FALSE(profile.anyMeterFaults()) << faultClassName(fc);
        EXPECT_FALSE(profile.anyCounterFaults()) << faultClassName(fc);
    }
}

TEST(FaultProfile, EachClassEnablesExactlyItsPath)
{
    EXPECT_TRUE(FaultProfile::forClass(FaultClass::MeterDropout, 1.0)
                    .anyMeterFaults());
    EXPECT_FALSE(FaultProfile::forClass(FaultClass::MeterDropout, 1.0)
                     .anyCounterFaults());
    EXPECT_TRUE(FaultProfile::forClass(FaultClass::MachineLoss, 1.0)
                    .anyCounterFaults());
    EXPECT_FALSE(FaultProfile::forClass(FaultClass::MachineLoss, 1.0)
                     .anyMeterFaults());
    EXPECT_EQ(allFaultClasses().size(), 6u);
}

TEST(MeterFaults, DropoutRateIsRespected)
{
    FaultProfile profile;
    profile.meterDropoutRate = 0.5;
    MeterFaultInjector injector(profile, Rng(11));
    size_t dropped = 0;
    for (int i = 0; i < 2000; ++i) {
        if (std::isnan(injector.apply(40.0)))
            ++dropped;
    }
    EXPECT_GT(dropped, 850u);
    EXPECT_LT(dropped, 1150u);
}

TEST(MeterFaults, QuantizationSnapsToGrid)
{
    FaultProfile profile;
    profile.meterQuantizationW = 2.0;
    MeterFaultInjector injector(profile, Rng(12));
    const double reading = injector.apply(41.3);
    EXPECT_DOUBLE_EQ(reading, 42.0);
}

TEST(MeterFaults, SpikesMoveTheReadingButStayNonNegative)
{
    FaultProfile profile;
    profile.meterSpikeRate = 1.0;
    profile.meterSpikeRelMagnitude = 0.5;
    MeterFaultInjector injector(profile, Rng(13));
    for (int i = 0; i < 200; ++i) {
        const double reading = injector.apply(40.0);
        EXPECT_NE(reading, 40.0);
        EXPECT_GE(reading, 0.0);
        EXPECT_LE(reading, 60.0);
    }
}

TEST(CounterFaults, StuckCounterHoldsItsValue)
{
    FaultProfile profile;
    profile.stuckOnsetRate = 1.0;     // Every counter freezes now.
    profile.stuckMeanSeconds = 1000.0; // ...for a long time.
    CounterFaultInjector injector(profile, Rng(21));

    const auto first = injector.apply(rampVector(8, 100.0));
    const auto second = injector.apply(rampVector(8, 500.0));
    // Every counter froze on the first tick and still reports the
    // first tick's value.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(second[i], first[i]);
}

TEST(CounterFaults, NanGapsAtFullRateBlankEverything)
{
    FaultProfile profile;
    profile.counterNanRate = 1.0;
    CounterFaultInjector injector(profile, Rng(22));
    const auto out = injector.apply(rampVector(16, 1.0));
    for (double v : out)
        EXPECT_TRUE(std::isnan(v));
}

TEST(CounterFaults, MachineLossBlanksWholeVector)
{
    FaultProfile profile;
    profile.machineLossRate = 1.0;
    profile.machineLossMeanSeconds = 4.0;
    CounterFaultInjector injector(profile, Rng(23));
    const auto out = injector.apply(rampVector(8, 3.0));
    EXPECT_TRUE(std::isnan(out[0]));
    EXPECT_TRUE(std::isnan(out[7]));
    injector.reset();
    EXPECT_FALSE(injector.inOutage());
}

TEST(CounterFaults, JitterRepeatsThePreviousVector)
{
    FaultProfile profile;
    profile.sampleJitterRate = 1.0;
    CounterFaultInjector injector(profile, Rng(24));
    const auto first = injector.apply(rampVector(8, 10.0));
    const auto second = injector.apply(rampVector(8, 999.0));
    // The collector missed its tick: the stale vector repeats.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(second[i], first[i]);
}

TEST(Injectors, DeterministicUnderTheSameSeed)
{
    FaultProfile profile;
    profile.counterNanRate = 0.2;
    profile.stuckOnsetRate = 0.1;
    profile.machineLossRate = 0.05;
    profile.sampleJitterRate = 0.1;

    auto runOnce = [&profile](uint64_t seed) {
        CounterFaultInjector injector(profile, Rng(seed));
        std::vector<std::vector<double>> out;
        for (int t = 0; t < 50; ++t)
            out.push_back(injector.apply(rampVector(12, double(t))));
        return out;
    };
    const auto a = runOnce(77);
    const auto b = runOnce(77);
    const auto c = runOnce(78);

    ASSERT_EQ(a.size(), b.size());
    bool anyDifferenceVsOtherSeed = false;
    for (size_t t = 0; t < a.size(); ++t) {
        for (size_t i = 0; i < a[t].size(); ++i) {
            const bool bothNan =
                std::isnan(a[t][i]) && std::isnan(b[t][i]);
            EXPECT_TRUE(bothNan || a[t][i] == b[t][i]);
            const bool sameAsC =
                (std::isnan(a[t][i]) && std::isnan(c[t][i])) ||
                a[t][i] == c[t][i];
            anyDifferenceVsOtherSeed |= !sameAsC;
        }
    }
    EXPECT_TRUE(anyDifferenceVsOtherSeed);
}

TEST(Injectors, ReplayCorruptsLoggedTraceInPlace)
{
    std::vector<EtwRecord> records;
    for (int t = 0; t < 40; ++t) {
        EtwRecord rec;
        rec.timeSeconds = double(t);
        rec.counters = rampVector(10, double(t));
        rec.measuredPowerW = 40.0 + double(t % 5);
        records.push_back(rec);
    }
    const std::vector<EtwRecord> clean = records;

    FaultProfile profile;
    profile.counterNanRate = 0.3;
    profile.meterDropoutRate = 0.3;
    injectFaults(records, profile, Rng(31));

    ASSERT_EQ(records.size(), clean.size());
    size_t nanCounters = 0;
    size_t nanMeter = 0;
    for (size_t t = 0; t < records.size(); ++t) {
        EXPECT_EQ(records[t].counters.size(),
                  clean[t].counters.size());
        EXPECT_DOUBLE_EQ(records[t].timeSeconds,
                         clean[t].timeSeconds);
        for (double v : records[t].counters)
            nanCounters += std::isnan(v) ? 1 : 0;
        nanMeter += std::isnan(records[t].measuredPowerW) ? 1 : 0;
    }
    EXPECT_GT(nanCounters, 0u);
    EXPECT_GT(nanMeter, 0u);

    // Zero-rate replay is the identity.
    std::vector<EtwRecord> untouched = clean;
    injectFaults(untouched, FaultProfile{}, Rng(32));
    for (size_t t = 0; t < untouched.size(); ++t) {
        EXPECT_DOUBLE_EQ(untouched[t].measuredPowerW,
                         clean[t].measuredPowerW);
        EXPECT_EQ(untouched[t].counters, clean[t].counters);
    }
}

TEST(Injectors, FaultyMeterAndSamplerWrapTheRealPipeline)
{
    const MachineSpec spec = machineSpecFor(MachineClass::Core2);
    Machine machine(spec, 0, 55);
    FaultProfile profile;
    profile.meterDropoutRate = 1.0;
    profile.machineLossRate = 1.0;

    FaultyPowerMeter meter(PowerMeter(Rng(56)), profile, Rng(57));
    FaultyCounterSampler sampler(CounterSampler(spec, Rng(58)),
                                 profile, Rng(59));

    ActivityDemand demand;
    demand.cpuCoreSeconds = 0.5;
    const MachineTick tick = machine.step(demand);
    EXPECT_TRUE(std::isnan(meter.sample(tick.truePowerW)));
    const auto counters = sampler.sample(tick.state);
    ASSERT_EQ(counters.size(), CounterCatalog::instance().size());
    EXPECT_TRUE(std::isnan(counters.front()));
    EXPECT_TRUE(sampler.inOutage());
    sampler.reset();
    EXPECT_FALSE(sampler.inOutage());
}

} // namespace
} // namespace chaos
