/**
 * @file
 * Golden-file numeric regression test for the end-to-end modeling
 * pipeline: a fixed-seed Core2 campaign, evaluated single-threaded
 * (CHAOS_THREADS=1 equivalent), must reproduce the pinned DRE, rMSE,
 * and coefficient checksums in tests/support/golden/core2_small.txt
 * to within a 1e-9 relative tolerance. Any drift — a changed default,
 * a reordered reduction, an "equivalent" refactor that is not — fails
 * with a printed per-key diff.
 *
 * Regenerating after an *intentional* numeric change:
 *
 *     CHAOS_REGEN_GOLDEN=1 ./build/tests/test_golden
 *
 * which rewrites the golden file in the source tree; commit the diff
 * together with the change that caused it.
 */
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/chaos.hpp"
#include "models/linear.hpp"
#include "models/mars.hpp"
#include "util/parallel.hpp"

#ifndef CHAOS_GOLDEN_DIR
#error "CHAOS_GOLDEN_DIR must point at tests/support/golden"
#endif

namespace chaos {
namespace {

const char kGoldenFile[] = CHAOS_GOLDEN_DIR "/core2_small.txt";

/**
 * Order-dependent coefficient checksum: catches swapped, dropped,
 * and perturbed coefficients alike, while staying a single pinnable
 * number per model.
 */
double
coefficientChecksum(const std::vector<double> &coef)
{
    double sum = 0.0;
    for (size_t i = 0; i < coef.size(); ++i)
        sum += static_cast<double>(i + 1) * coef[i];
    return sum;
}

/** The pinned pipeline: collect, fit, evaluate — all fixed-seed. */
std::vector<std::pair<std::string, double>>
computeGoldenValues()
{
    // Single-threaded: golden numbers must not depend on the host's
    // core count (parallel results are deterministic by construction,
    // but the pin removes even that assumption from this test).
    setGlobalThreadCount(1);

    CampaignConfig config;
    config.numMachines = 2;
    config.runsPerWorkload = 2;
    config.seed = 2012;
    config.run.durationScale = 0.2;
    config.evaluation.folds = 2;
    const ClusterCampaign campaign =
        collectClusterData(MachineClass::Core2, config);
    const Dataset &data = campaign.data;

    std::vector<std::pair<std::string, double>> values;
    values.emplace_back("dataset.rows",
                        static_cast<double>(data.numRows()));
    double powerSum = 0.0;
    for (double w : data.powerW())
        powerSum += w;
    values.emplace_back("dataset.power_sum_w", powerSum);

    // Two counters so every pinned technique (quadratic included,
    // which requires multiple features) is defined.
    const FeatureSet features{
        "golden",
        {counters::kCpuUtilization, counters::kCore0Frequency}};
    for (const ModelType type :
         {ModelType::Linear, ModelType::Quadratic}) {
        const EvaluationOutcome outcome = evaluateTechnique(
            data, features, type, campaign.envelopes,
            config.evaluation);
        const std::string prefix =
            std::string("eval.") + modelTypeName(type);
        values.emplace_back(prefix + ".dre", outcome.avgDre);
        values.emplace_back(prefix + ".rmse_w", outcome.avgRmse);
        values.emplace_back(prefix + ".r2", outcome.r2);
    }

    // Pooled fits: coefficient checksums pin the fitted parameters
    // themselves, not just the aggregate accuracy.
    const Dataset subset =
        data.selectFeaturesByName(features.counters);
    {
        LinearModel linear;
        linear.fit(subset.features(), subset.powerW());
        std::vector<double> coef = linear.featureCoefficients();
        coef.insert(coef.begin(), linear.intercept());
        values.emplace_back("fit.linear.coef_checksum",
                            coefficientChecksum(coef));
    }
    {
        MarsConfig marsConfig = config.evaluation.mars;
        marsConfig.maxDegree = 2;
        MarsModel mars(marsConfig);
        mars.fit(subset.features(), subset.powerW());
        values.emplace_back("fit.mars.coef_checksum",
                            coefficientChecksum(mars.coefficients()));
        values.emplace_back("fit.mars.terms",
                            static_cast<double>(
                                mars.coefficients().size()));
        // Pin the *batch* entry point explicitly: an order-weighted
        // checksum of predictBatch over the training matrix, per
        // technique. The eval.* keys above already route through
        // predictAll -> predictBatch, but this key fails even if
        // evaluation later stops using the batch path.
        LinearModel linear;
        linear.fit(subset.features(), subset.powerW());
        for (const PowerModel *model :
             {static_cast<const PowerModel *>(&linear),
              static_cast<const PowerModel *>(&mars)}) {
            const Matrix &rows = subset.features();
            std::vector<double> flat(rows.rows() * rows.cols());
            for (size_t r = 0; r < rows.rows(); ++r)
                for (size_t c = 0; c < rows.cols(); ++c)
                    flat[r * rows.cols() + c] = rows(r, c);
            std::vector<double> watts(rows.rows());
            model->predictBatch(flat.data(), rows.rows(),
                                rows.cols(), watts.data());
            values.emplace_back(
                std::string("predict_batch.") +
                    modelTypeName(model->type()) + ".checksum",
                coefficientChecksum(watts));
        }
    }
    return values;
}

void
writeGoldenFile(
    const std::vector<std::pair<std::string, double>> &values)
{
    std::ofstream out(kGoldenFile);
    ASSERT_TRUE(out) << "cannot write " << kGoldenFile;
    out << "# Pinned numerics for the fixed-seed Core2 campaign.\n"
        << "# Regenerate: CHAOS_REGEN_GOLDEN=1 "
           "./build/tests/test_golden\n";
    out << std::setprecision(17);
    for (const auto &[key, value] : values)
        out << key << ' ' << value << '\n';
}

std::map<std::string, double>
readGoldenFile()
{
    std::ifstream in(kGoldenFile);
    EXPECT_TRUE(in) << "missing golden file " << kGoldenFile
                    << " (regenerate with CHAOS_REGEN_GOLDEN=1)";
    std::map<std::string, double> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string key;
        double value = 0.0;
        if (fields >> key >> value)
            golden[key] = value;
    }
    return golden;
}

TEST(GoldenRegression, Core2SmallCampaignMatchesPinnedNumerics)
{
    const std::vector<std::pair<std::string, double>> computed =
        computeGoldenValues();

    if (std::getenv("CHAOS_REGEN_GOLDEN") != nullptr) {
        writeGoldenFile(computed);
        GTEST_SKIP() << "regenerated " << kGoldenFile;
    }

    const std::map<std::string, double> golden = readGoldenFile();
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(golden.size(), computed.size())
        << "golden file key count drifted; regenerate if intended";

    size_t mismatches = 0;
    for (const auto &[key, value] : computed) {
        const auto it = golden.find(key);
        if (it == golden.end()) {
            ADD_FAILURE() << "key '" << key
                          << "' missing from golden file";
            ++mismatches;
            continue;
        }
        const double pinned = it->second;
        const double tolerance =
            1e-9 * std::max(1.0, std::fabs(pinned));
        const double diff = std::fabs(value - pinned);
        if (!(diff <= tolerance)) {
            ADD_FAILURE() << std::setprecision(17) << key
                          << ": computed " << value << " vs golden "
                          << pinned << " (|diff| " << diff << " > "
                          << tolerance << ")";
            ++mismatches;
        }
    }
    EXPECT_EQ(mismatches, 0u)
        << "numeric drift against " << kGoldenFile
        << "; if intentional, regenerate with CHAOS_REGEN_GOLDEN=1 "
           "and commit the new golden file";
}

} // namespace
} // namespace chaos
