/**
 * @file
 * Tests for the self-healing autopilot: the end-to-end remediation
 * loop (drift -> quarantine -> retrain -> canary -> promote) must
 * strictly improve cluster-sum accuracy against ground truth, a
 * losing canary must roll back and re-arm, retrain failures retry
 * with exponential backoff before giving up, a drift storm keeps
 * concurrent retrains bounded, and quarantine substitution shows up
 * in fleet snapshots.
 */
#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../serve/serve_support.hpp"

#include "autopilot/autopilot.hpp"
#include "faults/scenarios.hpp"
#include "models/linear.hpp"
#include "monitor/fleet_monitor.hpp"
#include "obs/events.hpp"
#include "serve/server.hpp"
#include "util/random.hpp"
#include "util/result.hpp"

namespace chaos {
namespace {

using serve_testing::catalogRow;
using serve_testing::makeTestModel;

constexpr double kBaseW = 25.0;

double
truePowerW(double u0, double u1)
{
    return kBaseW + 0.1 * u0 + 0.08 * u1;
}

void
drainAll(serve::FleetServer &server)
{
    while (server.processed() + server.dropped() < server.submitted())
        server.drainOnce();
}

monitor::QualityMonitorConfig
fastMonitorConfig()
{
    monitor::QualityMonitorConfig config;
    config.warmupSamples = 100;
    config.windowSamples = 60;
    return config;
}

/** Deterministic autopilot knobs for single-threaded replay tests. */
autopilot::AutopilotConfig
inlineAutopilotConfig()
{
    autopilot::AutopilotConfig config;
    config.backgroundRetrain = false;
    config.referenceWindowSamples = 128;
    config.retrainMinSamples = 40;
    config.canaryMinSamples = 20;
    config.cooldownTicks = 10;
    return config;
}

// By value: call sites pass the temporary from pilot.status(), and a
// reference into it would dangle past the full expression.
autopilot::MachineRemediation
statusOf(const std::vector<autopilot::MachineRemediation> &status,
         const std::string &id)
{
    for (const auto &machine : status) {
        if (machine.id == id)
            return machine;
    }
    ADD_FAILURE() << "no remediation status for " << id;
    static autopilot::MachineRemediation none;
    return none;
}

/**
 * The canonical drift scenario from the monitor tests, with or
 * without an autopilot attached: machine0's counters freeze at their
 * tick-0 values while machine1 stays healthy; at kShiftTick the true
 * load jumps from the 20-40 band to the 80-100 band, so machine0's
 * frozen estimate diverges from its meter. Returns the mean absolute
 * cluster-sum error against ground truth over the final phase (well
 * after remediation completes when the autopilot is on).
 */
struct ScenarioOutcome
{
    double finalPhaseErrW = 0.0;
    autopilot::AutopilotStats stats;
    std::vector<autopilot::MachineRemediation> status;
    ModelQuality faultedQuality = ModelQuality::Unknown;
};

constexpr int kShiftTick = 200;
constexpr int kTotalTicks = 600;
constexpr int kMeasureFrom = 420;

ScenarioOutcome
runStuckCounterScenario(bool withAutopilot)
{
    serve::FleetServer server;
    serve::MachineEntry &faulted =
        server.addMachine("machine0", makeTestModel(17));
    serve::MachineEntry &healthy =
        server.addMachine("machine1", makeTestModel(17));
    monitor::FleetMonitor fleetMonitor(fastMonitorConfig());
    fleetMonitor.attach(server);

    autopilot::AutopilotController pilot(server, fleetMonitor,
                                         inlineAutopilotConfig());
    if (withAutopilot) {
        pilot.setSubstituteModel(makeTestModel(99));
        pilot.start();
    }

    DriftStormConfig stormConfig;
    stormConfig.machines = 1;
    DriftStorm storm(stormConfig);

    Rng rng(31);
    double errSum = 0.0;
    int errTicks = 0;
    for (int t = 0; t < kTotalTicks; ++t) {
        const double lo = t < kShiftTick ? 20.0 : 80.0;
        const double u0 = rng.uniform(lo, lo + 20.0);
        const double u1 = rng.uniform(lo, lo + 20.0);
        const double metered =
            truePowerW(u0, u1) + rng.normal(0.0, 0.05);
        server.submitTo(faulted,
                        storm.apply(0, static_cast<std::size_t>(t),
                                    catalogRow(u0, u1)),
                        metered);
        server.submitTo(healthy, catalogRow(u0, u1), metered);
        drainAll(server);
        if (withAutopilot)
            pilot.tick();
        if (t >= kMeasureFrom) {
            // Both machines saw the same true load this tick.
            const double trueClusterW = 2.0 * truePowerW(u0, u1);
            errSum += std::abs(server.snapshot().clusterW -
                               trueClusterW);
            ++errTicks;
        }
    }

    ScenarioOutcome outcome;
    outcome.finalPhaseErrW = errSum / errTicks;
    outcome.stats = pilot.stats();
    outcome.status = pilot.status();
    for (const auto &machine : fleetMonitor.snapshot().machines) {
        if (machine.id == "machine0")
            outcome.faultedQuality = machine.quality;
    }
    if (withAutopilot)
        pilot.stop();
    return outcome;
}

/**
 * The headline acceptance test: with the autopilot on, the faulted
 * machine is quarantined, retrained on the post-drift reference
 * window, canary-promoted, and ends the replay back in Serving with
 * an Ok verdict — and the cluster-sum error against ground truth is
 * strictly (and substantially) lower than the same replay without
 * remediation.
 */
TEST(Autopilot, SelfHealingImprovesClusterAccuracyEndToEnd)
{
    const ScenarioOutcome unhealed = runStuckCounterScenario(false);
    const ScenarioOutcome healed = runStuckCounterScenario(true);

    // Remediation ran exactly once and succeeded.
    EXPECT_EQ(healed.stats.quarantines, 1u);
    EXPECT_EQ(healed.stats.promotions, 1u);
    EXPECT_EQ(healed.stats.rollbacks, 0u);
    EXPECT_EQ(healed.stats.retrainFailures, 0u);

    const autopilot::MachineRemediation &machine0 =
        statusOf(healed.status, "machine0");
    EXPECT_EQ(machine0.state, autopilot::RemediationState::Serving);
    EXPECT_EQ(machine0.promotions, 1u);
    // The canary verdict that justified the promotion is recorded.
    EXPECT_LT(machine0.lastCandidateRmseW, machine0.lastIncumbentRmseW);
    EXPECT_EQ(statusOf(healed.status, "machine1").quarantines, 0u);

    // The remediated machine re-warmed and reads Ok again.
    EXPECT_EQ(healed.faultedQuality, ModelQuality::Ok);

    // And the whole point: the cluster sum got strictly better.
    EXPECT_LT(healed.finalPhaseErrW, unhealed.finalPhaseErrW);
    EXPECT_LT(healed.finalPhaseErrW, 0.5 * unhealed.finalPhaseErrW);

    // The untreated replay never left Serving.
    EXPECT_EQ(unhealed.stats.quarantines, 0u);
}

TEST(Autopilot, RemediationEmitsLifecycleEvents)
{
    const std::uint64_t before =
        obs::EventLog::instance().totalEmitted();
    runStuckCounterScenario(true);
    bool sawQuarantine = false, sawRetrain = false, sawPromote = false;
    for (const obs::Event &event :
         obs::EventLog::instance().snapshot()) {
        if (event.seq < before || event.source != "machine0")
            continue;
        sawQuarantine |= event.kind == obs::EventKind::Quarantine;
        sawRetrain |= event.kind == obs::EventKind::Retrain;
        sawPromote |= event.kind == obs::EventKind::Promote;
    }
    EXPECT_TRUE(sawQuarantine);
    EXPECT_TRUE(sawRetrain);
    EXPECT_TRUE(sawPromote);
}

/**
 * A candidate that loses its canary must NOT be promoted: the
 * incumbent stays deployed, the machine rolls back, and — because the
 * rollback acknowledges rather than resets the drift verdict — the
 * still-drifting residual stream re-triggers remediation after the
 * cooldown.
 */
TEST(Autopilot, LosingCanaryRollsBackAndPersistentDriftRefires)
{
    serve::FleetServer server;
    serve::MachineEntry &faulted =
        server.addMachine("machine0", makeTestModel(17));
    monitor::FleetMonitor fleetMonitor(fastMonitorConfig());
    fleetMonitor.attach(server);

    autopilot::AutopilotConfig config = inlineAutopilotConfig();
    config.retrainMaxAttempts = 1;
    autopilot::AutopilotController pilot(server, fleetMonitor, config);
    // Sabotaged retrain: the candidate is far worse than even the
    // drifted incumbent, so every canary must lose.
    pilot.setRetrainHook([](const std::string &, const FeatureSet &fs,
                            const Matrix &, const std::vector<double> &) {
        return makeTestModel(17, 120.0);
    });
    pilot.start();

    DriftStorm storm(DriftStormConfig{});
    Rng rng(31);
    for (int t = 0; t < kTotalTicks; ++t) {
        const double lo = t < kShiftTick ? 20.0 : 80.0;
        const double u0 = rng.uniform(lo, lo + 20.0);
        const double u1 = rng.uniform(lo, lo + 20.0);
        server.submitTo(faulted,
                        storm.apply(0, static_cast<std::size_t>(t),
                                    catalogRow(u0, u1)),
                        truePowerW(u0, u1) + rng.normal(0.0, 0.05));
        drainAll(server);
        pilot.tick();
    }

    const autopilot::AutopilotStats stats = pilot.stats();
    EXPECT_EQ(stats.promotions, 0u);
    EXPECT_GE(stats.rollbacks, 2u); // Rolled back, re-drifted, again.
    EXPECT_GE(stats.quarantines, 2u);
    const autopilot::MachineRemediation machine0 =
        statusOf(pilot.status(), "machine0");
    EXPECT_GE(machine0.rollbacks, 2u);
    // The losing verdict is recorded for operators.
    EXPECT_GT(machine0.lastCandidateRmseW,
              machine0.lastIncumbentRmseW);
    pilot.stop();
}

/**
 * Failed fits retry with exponential backoff (2, then 4 ticks) and a
 * third failure ends in RolledBack — never a wedged Quarantined
 * machine — after which cooldown returns the machine to Serving.
 */
TEST(Autopilot, RetrainFailuresBackOffThenRollBack)
{
    serve::FleetServer server;
    serve::MachineEntry &entry =
        server.addMachine("machine0", makeTestModel(17));
    monitor::QualityMonitorConfig monitorConfig = fastMonitorConfig();
    monitorConfig.warmupSamples = 50;
    monitor::FleetMonitor fleetMonitor(monitorConfig);
    fleetMonitor.attach(server);

    autopilot::AutopilotConfig config = inlineAutopilotConfig();
    config.retrainMinSamples = 8;
    config.retrainMaxAttempts = 3;
    config.retrainBackoffTicks = 2;
    config.cooldownTicks = 5;
    autopilot::AutopilotController pilot(server, fleetMonitor, config);
    pilot.setRetrainHook([](const std::string &, const FeatureSet &,
                            const Matrix &,
                            const std::vector<double> &)
                             -> MachinePowerModel {
        raise("injected retrain failure");
    });
    pilot.start();

    // Warm up clean, then hold a +25 W metered offset so the drift
    // latches. The offset ends with the rollback (a transient fault),
    // so remediation runs exactly one three-attempt cycle and the
    // machine settles back to Serving after its cooldown.
    Rng rng(7);
    std::vector<std::size_t> attemptTicks;
    std::uint64_t attemptsSeen = 0;
    bool sawRolledBack = false;
    for (int t = 0; t < 300; ++t) {
        const double u0 = rng.uniform(0.0, 100.0);
        const double u1 = rng.uniform(0.0, 100.0);
        const double offset =
            t >= 60 && !sawRolledBack ? 25.0 : 0.0;
        server.submitTo(entry, catalogRow(u0, u1),
                        truePowerW(u0, u1) + offset +
                            rng.normal(0.0, 0.05));
        drainAll(server);
        pilot.tick();
        const autopilot::AutopilotStats stats = pilot.stats();
        if (stats.retrainsStarted > attemptsSeen) {
            attemptsSeen = stats.retrainsStarted;
            attemptTicks.push_back(pilot.currentTick());
        }
        const auto state =
            statusOf(pilot.status(), "machine0").state;
        sawRolledBack |=
            state == autopilot::RemediationState::RolledBack;
        if (sawRolledBack &&
            state == autopilot::RemediationState::Serving)
            break;
    }

    EXPECT_EQ(statusOf(pilot.status(), "machine0").state,
              autopilot::RemediationState::Serving);

    const autopilot::AutopilotStats stats = pilot.stats();
    EXPECT_EQ(stats.retrainsStarted, 3u);
    EXPECT_EQ(stats.retrainFailures, 3u);
    EXPECT_GE(stats.rollbacks, 1u);
    EXPECT_EQ(stats.promotions, 0u);
    EXPECT_TRUE(sawRolledBack);

    // Attempt spacing follows the exponential backoff exactly:
    // attempt 2 starts 2 ticks after attempt 1 fails, attempt 3
    // starts 4 ticks after attempt 2 fails (fits run inline, so an
    // attempt fails the tick it starts).
    ASSERT_EQ(attemptTicks.size(), 3u);
    EXPECT_EQ(attemptTicks[1] - attemptTicks[0], 2u);
    EXPECT_EQ(attemptTicks[2] - attemptTicks[1], 4u);
    pilot.stop();
}

/**
 * A fleet-wide drift storm (every machine's counters freeze) must
 * remediate every machine while never running more than
 * maxConcurrentRetrains fits at once — measured from inside the
 * retrain hook itself, with the fits running on the background
 * worker pool.
 */
TEST(Autopilot, DriftStormKeepsConcurrentRetrainsBounded)
{
    constexpr std::size_t kMachines = 5;
    serve::FleetServer server;
    std::vector<serve::MachineEntry *> entries;
    for (std::size_t m = 0; m < kMachines; ++m) {
        entries.push_back(&server.addMachine(
            "machine" + std::to_string(m), makeTestModel(17)));
    }
    monitor::FleetMonitor fleetMonitor(fastMonitorConfig());
    fleetMonitor.attach(server);

    autopilot::AutopilotConfig config;
    config.backgroundRetrain = true;
    config.maxConcurrentRetrains = 2;
    config.referenceWindowSamples = 128;
    config.retrainMinSamples = 30;
    config.canaryMinSamples = 10;
    config.cooldownTicks = 1000; // Stay Promoted: no second round.
    autopilot::AutopilotController pilot(server, fleetMonitor,
                                         config);

    std::atomic<int> executing{0};
    std::atomic<int> maxExecuting{0};
    pilot.setRetrainHook([&](const std::string &,
                             const FeatureSet &features,
                             const Matrix &x,
                             const std::vector<double> &y) {
        const int now = executing.fetch_add(1) + 1;
        int seen = maxExecuting.load();
        while (now > seen &&
               !maxExecuting.compare_exchange_weak(seen, now)) {
        }
        // Hold the slot long enough that a storm would overlap if the
        // pool were unbounded.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        auto model = std::make_unique<LinearModel>();
        model->fit(x, y);
        executing.fetch_sub(1);
        return MachinePowerModel::fromParts(features,
                                            std::move(model));
    });
    pilot.start();

    DriftStormConfig stormConfig;
    stormConfig.machines = kMachines;
    DriftStorm storm(stormConfig);

    Rng rng(31);
    std::size_t settled = 0;
    for (int t = 0; t < 2000 && settled < kMachines; ++t) {
        const double lo = t < kShiftTick ? 20.0 : 80.0;
        for (std::size_t m = 0; m < kMachines; ++m) {
            const double u0 = rng.uniform(lo, lo + 20.0);
            const double u1 = rng.uniform(lo, lo + 20.0);
            server.submitTo(
                *entries[m],
                storm.apply(m, static_cast<std::size_t>(t),
                            catalogRow(u0, u1)),
                truePowerW(u0, u1) + rng.normal(0.0, 0.05));
        }
        drainAll(server);
        pilot.tick();
        // Give the background pool a slice of wall time per tick.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        settled = 0;
        for (const auto &machine : pilot.status()) {
            if (machine.promotions + machine.rollbacks > 0)
                ++settled;
        }
    }

    EXPECT_EQ(settled, kMachines);
    const autopilot::AutopilotStats stats = pilot.stats();
    EXPECT_EQ(stats.quarantines, kMachines);
    EXPECT_EQ(stats.promotions + stats.rollbacks, kMachines);
    // The invariant under test: the storm never fanned out past the
    // configured retrain concurrency.
    EXPECT_LE(maxExecuting.load(), 2);
    EXPECT_GE(maxExecuting.load(), 1);
    pilot.stop();
}

/**
 * While quarantined, the machine's contribution to the cluster sum
 * is the substitute's prediction, not the drifted model's — and the
 * snapshot says so. Retraining is configured out of reach so the
 * machine stays quarantined for the assertion window.
 */
TEST(Autopilot, QuarantineServesTheSubstituteInFleetSnapshots)
{
    serve::FleetServer server;
    serve::MachineEntry &entry =
        server.addMachine("machine0", makeTestModel(17));
    monitor::QualityMonitorConfig monitorConfig = fastMonitorConfig();
    monitorConfig.warmupSamples = 50;
    monitor::FleetMonitor fleetMonitor(monitorConfig);
    fleetMonitor.attach(server);

    autopilot::AutopilotConfig config = inlineAutopilotConfig();
    config.retrainMinSamples = 100000; // Never leaves Quarantined.
    autopilot::AutopilotController pilot(server, fleetMonitor, config);
    const MachinePowerModel substitute = makeTestModel(99);
    pilot.setSubstituteModel(substitute);
    pilot.start();

    Rng rng(7);
    double lastU0 = 0.0, lastU1 = 0.0;
    for (int t = 0; t < 150; ++t) {
        lastU0 = rng.uniform(0.0, 100.0);
        lastU1 = rng.uniform(0.0, 100.0);
        const double offset = t >= 60 ? 25.0 : 0.0;
        server.submitTo(entry, catalogRow(lastU0, lastU1),
                        truePowerW(lastU0, lastU1) + offset +
                            rng.normal(0.0, 0.05));
        drainAll(server);
        pilot.tick();
    }

    ASSERT_EQ(statusOf(pilot.status(), "machine0").state,
              autopilot::RemediationState::Quarantined);
    const serve::FleetSnapshot snap = server.snapshot();
    ASSERT_EQ(snap.machines.size(), 1u);
    EXPECT_TRUE(snap.machines[0].quarantined);
    EXPECT_EQ(snap.quarantined, 1u);
    // Served watts come from the substitute's view of the last row...
    EXPECT_NEAR(snap.machines[0].watts,
                substitute.predictFromCatalogRow(
                    catalogRow(lastU0, lastU1)),
                1e-9);
    // ...while the raw (drifted-incumbent) estimate is still visible
    // and different, and the fleet sum uses the served value.
    EXPECT_NE(snap.machines[0].watts, snap.machines[0].modelW);
    EXPECT_NEAR(snap.substitutedW, snap.machines[0].watts, 1e-9);
    EXPECT_NEAR(snap.clusterW, snap.machines[0].watts, 1e-9);
    pilot.stop();
}

} // namespace
} // namespace chaos
