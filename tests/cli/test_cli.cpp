/**
 * @file
 * Tests for the `chaos` CLI, driving runCli() directly and exercising
 * the full collect -> select -> train -> evaluate -> predict flow on
 * a miniature dataset.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "cli/cli.hpp"
#include "obs/json.hpp"

namespace chaos {
namespace {

struct CliResult
{
    int code = 0;
    std::string out;
    std::string err;
};

CliResult
run(const std::vector<std::string> &args)
{
    std::ostringstream out, err;
    CliResult result;
    result.code = runCli(args, out, err);
    result.out = out.str();
    result.err = err.str();
    return result;
}

/** Collect a tiny dataset once for the pipeline tests. */
const std::string &
tinyDatasetPath()
{
    static const std::string path = [] {
        // Process-unique name: ctest runs each test in its own
        // process, concurrently, and a shared file would race.
        const std::string csv = ::testing::TempDir() + "cli_data_" +
                                std::to_string(::getpid()) + ".csv";
        const CliResult result =
            run({"collect", "Core2", "--out", csv, "--machines", "2",
                 "--runs", "2", "--scale", "0.15", "--seed", "77"});
        EXPECT_EQ(result.code, 0) << result.err;
        return csv;
    }();
    return path;
}

TEST(Cli, HelpListsSubcommands)
{
    const CliResult result = run({"help"});
    EXPECT_EQ(result.code, 0);
    for (const char *cmd : {"collect", "select", "train", "evaluate",
                            "predict", "probe"}) {
        EXPECT_NE(result.out.find(cmd), std::string::npos) << cmd;
    }
}

TEST(Cli, NoArgsShowsHelp)
{
    const CliResult result = run({});
    EXPECT_EQ(result.code, 0);
    EXPECT_NE(result.out.find("subcommands"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails)
{
    const CliResult result = run({"frobnicate"});
    EXPECT_EQ(result.code, 2);
    EXPECT_NE(result.err.find("unknown subcommand"),
              std::string::npos);
}

TEST(Cli, FlagWithoutValueFails)
{
    const CliResult result = run({"collect", "Core2", "--out"});
    EXPECT_EQ(result.code, 2);
    EXPECT_NE(result.err.find("needs a value"), std::string::npos);
}

TEST(Cli, ListPlatformsIncludesPaperSixAndFuture)
{
    const CliResult result = run({"list-platforms"});
    EXPECT_EQ(result.code, 0);
    for (const char *name : {"Atom", "Core2", "Athlon", "Opteron",
                             "XeonSATA", "XeonSAS", "FutureServer"}) {
        EXPECT_NE(result.out.find(name), std::string::npos) << name;
    }
}

TEST(Cli, ListCountersFiltersByCategory)
{
    const CliResult all = run({"list-counters"});
    EXPECT_EQ(all.code, 0);
    EXPECT_NE(all.out.find("% Processor Time"), std::string::npos);

    const CliResult memory =
        run({"list-counters", "--category", "memory"});
    EXPECT_EQ(memory.code, 0);
    EXPECT_NE(memory.out.find("Pages/sec"), std::string::npos);
    EXPECT_EQ(memory.out.find("PhysicalDisk"), std::string::npos);

    const CliResult none =
        run({"list-counters", "--category", "nosuch"});
    EXPECT_EQ(none.code, 2);
}

TEST(Cli, ProbeReportsEnvelope)
{
    const CliResult result = run({"probe", "Atom"});
    EXPECT_EQ(result.code, 0);
    EXPECT_NE(result.out.find("idle"), std::string::npos);
    EXPECT_NE(result.out.find("spec 22-26"), std::string::npos);
}

TEST(Cli, ProbeWithoutPlatformFails)
{
    EXPECT_EQ(run({"probe"}).code, 2);
}

TEST(Cli, CollectWritesDataset)
{
    const CliResult result =
        run({"select", tinyDatasetPath()});
    EXPECT_EQ(result.code, 0);
    EXPECT_NE(result.out.find("funnel:"), std::string::npos);
    EXPECT_NE(result.out.find("% Processor Time"),
              std::string::npos);
}

TEST(Cli, TrainEvaluatePredictPipeline)
{
    const std::string model_path =
        ::testing::TempDir() + "cli_model.txt";

    const CliResult trained =
        run({"train", tinyDatasetPath(), "--out", model_path,
             "--type", "piecewise"});
    ASSERT_EQ(trained.code, 0) << trained.err;
    EXPECT_NE(trained.out.find("trained piecewise-linear"),
              std::string::npos);

    const CliResult evaluated =
        run({"evaluate", tinyDatasetPath(), "--type", "piecewise",
             "--folds", "2"});
    ASSERT_EQ(evaluated.code, 0) << evaluated.err;
    EXPECT_NE(evaluated.out.find("avg machine DRE"),
              std::string::npos);

    const CliResult predicted =
        run({"predict", model_path, tinyDatasetPath()});
    ASSERT_EQ(predicted.code, 0) << predicted.err;
    EXPECT_NE(predicted.out.find("rMSE vs meter"),
              std::string::npos);

    std::remove(model_path.c_str());
}

TEST(Cli, TrainWithExplicitFeatures)
{
    const std::string model_path =
        ::testing::TempDir() + "cli_model2.txt";
    const CliResult result = run(
        {"train", tinyDatasetPath(), "--out", model_path, "--type",
         "linear", "--features",
         "Processor(_Total)\\% Processor Time;"
         "Processor Performance\\Processor_0 Frequency"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("2 counters"), std::string::npos);
    std::remove(model_path.c_str());
}

TEST(Cli, TrainRejectsUnknownType)
{
    const CliResult result =
        run({"train", tinyDatasetPath(), "--out", "/tmp/x.txt",
             "--type", "neural"});
    EXPECT_EQ(result.code, 2);
    EXPECT_NE(result.err.find("unknown model type"),
              std::string::npos);
}

TEST(Cli, MonitorReplayReportsQualityAndWritesTelemetry)
{
    const std::string model_path =
        ::testing::TempDir() + "cli_monitor_model_" +
        std::to_string(::getpid()) + ".txt";
    const std::string telemetry_path =
        ::testing::TempDir() + "cli_monitor_tel_" +
        std::to_string(::getpid()) + ".jsonl";

    const CliResult trained =
        run({"train", tinyDatasetPath(), "--out", model_path,
             "--type", "quadratic"});
    ASSERT_EQ(trained.code, 0) << trained.err;

    const CliResult monitored =
        run({"monitor", "--replay", tinyDatasetPath(), "--model",
             model_path, "--platform", "Core2", "--telemetry-out",
             telemetry_path, "--dashboard-every", "100"});
    ASSERT_EQ(monitored.code, 0) << monitored.err;
    EXPECT_NE(monitored.out.find("monitored"), std::string::npos);
    EXPECT_NE(monitored.out.find("drift events:"), std::string::npos);
    EXPECT_NE(monitored.out.find("telemetry records"),
              std::string::npos);
    // The dashboard printed at least one per-tick line.
    EXPECT_NE(monitored.out.find("tick 0:"), std::string::npos);

    std::ifstream telemetry(telemetry_path);
    ASSERT_TRUE(telemetry.good());
    std::string line;
    size_t lines = 0;
    while (std::getline(telemetry, line))
        ++lines;
    EXPECT_GT(lines, 0u);

    std::remove(model_path.c_str());
    std::remove(telemetry_path.c_str());
}

TEST(Cli, MonitorWithoutReplayOrModelFails)
{
    EXPECT_EQ(run({"monitor"}).code, 2);
    EXPECT_EQ(run({"monitor", "--replay", "x.csv"}).code, 2);
}

/**
 * The self-healing replay end to end through the CLI: a clean replay
 * reports zero remediations, and the same trace with an injected
 * stuck-counter fault drives machine0 through quarantine, retrain,
 * and a canary-gated promotion.
 */
TEST(Cli, AutopilotReplayHealsInjectedStuckCounterFault)
{
    const std::string model_path =
        ::testing::TempDir() + "cli_autopilot_model_" +
        std::to_string(::getpid()) + ".txt";
    const CliResult trained =
        run({"train", tinyDatasetPath(), "--out", model_path,
             "--type", "linear"});
    ASSERT_EQ(trained.code, 0) << trained.err;

    const std::vector<std::string> common = {
        "autopilot",     "--replay",  tinyDatasetPath(),
        "--model",       model_path,  "--warmup",
        "40",            "--window",  "30",
        "--min-retrain-samples", "32", "--canary-samples",
        "16",            "--cooldown", "30"};

    CliResult clean = run(common);
    ASSERT_EQ(clean.code, 0) << clean.err;
    EXPECT_NE(clean.out.find("autopilot summary: quarantines=0 "
                             "retrains=0 promotions=0 rollbacks=0 "
                             "failures=0"),
              std::string::npos)
        << clean.out;
    EXPECT_NE(clean.out.find("drift events: 0"), std::string::npos);

    std::vector<std::string> faulted = common;
    for (const char *arg :
         {"--inject-stuck", "machine0", "--inject-at", "60"})
        faulted.push_back(arg);
    CliResult healed = run(faulted);
    ASSERT_EQ(healed.code, 0) << healed.err;
    // At least one full quarantine -> retrain -> promote cycle ran
    // (a long trace may legitimately remediate more than once as new
    // workload phases re-drift the frozen counters).
    EXPECT_NE(healed.out.find("autopilot summary:"),
              std::string::npos);
    EXPECT_EQ(healed.out.find("quarantines=0"), std::string::npos)
        << healed.out;
    EXPECT_EQ(healed.out.find("promotions=0"), std::string::npos)
        << healed.out;
    EXPECT_NE(healed.out.find("rollbacks=0"), std::string::npos)
        << healed.out;
    // The remediated machine finished the replay serving again.
    EXPECT_NE(healed.out.find("| machine0 | serving"),
              std::string::npos)
        << healed.out;

    std::remove(model_path.c_str());
}

TEST(Cli, AutopilotWithoutReplayOrModelFails)
{
    EXPECT_EQ(run({"autopilot"}).code, 2);
    EXPECT_EQ(run({"autopilot", "--replay", "x.csv", "--substitute",
                   "bogus"})
                  .code,
              2);
}

TEST(Cli, FleetviewSyntheticRendersTablesAndRollupExport)
{
    const std::string rollup_path =
        ::testing::TempDir() + "cli_fleetview_rollup_" +
        std::to_string(::getpid()) + ".jsonl";

    const CliResult result =
        run({"fleetview", "--synthetic", "200", "--ticks", "20",
             "--seed", "7", "--worst", "3", "--rollup-out",
             rollup_path});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("synthetic fleet: 200 machines"),
              std::string::npos);
    EXPECT_NE(result.out.find("fleetview (root):"),
              std::string::npos);
    // Drill-down, platform, and worst-N tables all rendered.
    EXPECT_NE(result.out.find("Drift rate"), std::string::npos);
    EXPECT_NE(result.out.find("Platform"), std::string::npos);
    EXPECT_NE(result.out.find("Worst machine"), std::string::npos);
    EXPECT_NE(result.out.find("DRE p99"), std::string::npos);

    // Every exported roll-up line is well-formed JSON; the count
    // matches what the CLI reported.
    std::ifstream rollup(rollup_path);
    ASSERT_TRUE(rollup.good());
    std::string line;
    size_t lines = 0;
    while (std::getline(rollup, line)) {
        ++lines;
        EXPECT_TRUE(obs::jsonWellFormed(line)) << "line " << lines;
    }
    EXPECT_GT(lines, 1u);  // Root plus at least one group.
    EXPECT_NE(result.out.find("wrote " + std::to_string(lines) +
                              " roll-up nodes"),
              std::string::npos)
        << result.out;
    std::remove(rollup_path.c_str());
}

TEST(Cli, FleetviewDrillsDownToANamedGroup)
{
    const CliResult root =
        run({"fleetview", "--synthetic", "100", "--ticks", "10"});
    ASSERT_EQ(root.code, 0) << root.err;

    const CliResult drilled =
        run({"fleetview", "--synthetic", "100", "--ticks", "10",
             "--path", "dc0/row0"});
    ASSERT_EQ(drilled.code, 0) << drilled.err;
    EXPECT_NE(drilled.out.find("fleetview dc0/row0:"),
              std::string::npos)
        << drilled.out;

    const CliResult missing =
        run({"fleetview", "--synthetic", "100", "--ticks", "10",
             "--path", "dc9/nope"});
    EXPECT_EQ(missing.code, 2);
    EXPECT_NE(missing.err.find("no roll-up group"),
              std::string::npos);
}

TEST(Cli, FleetviewLiveReplayAggregatesTheFleet)
{
    const std::string model_path =
        ::testing::TempDir() + "cli_fleetview_model_" +
        std::to_string(::getpid()) + ".txt";
    const CliResult trained =
        run({"train", tinyDatasetPath(), "--out", model_path,
             "--type", "linear"});
    ASSERT_EQ(trained.code, 0) << trained.err;

    const CliResult viewed =
        run({"fleetview", "--replay", tinyDatasetPath(), "--model",
             model_path, "--platform", "Core2", "--group-size", "1",
             "--ticks", "5"});
    ASSERT_EQ(viewed.code, 0) << viewed.err;
    EXPECT_NE(viewed.out.find("live replay:"), std::string::npos);
    EXPECT_NE(viewed.out.find("fleetview (root):"),
              std::string::npos);
    // group-size 1 puts each machine in its own fleet<K> group.
    EXPECT_NE(viewed.out.find("fleet0"), std::string::npos);
    EXPECT_NE(viewed.out.find("fleet1"), std::string::npos);
    EXPECT_NE(viewed.out.find("Core2"), std::string::npos);
    std::remove(model_path.c_str());
}

TEST(Cli, FleetviewTelemetryReplayRendersTheSameDashboard)
{
    const std::string model_path =
        ::testing::TempDir() + "cli_fleetview_tel_model_" +
        std::to_string(::getpid()) + ".txt";
    const std::string telemetry_path =
        ::testing::TempDir() + "cli_fleetview_tel_" +
        std::to_string(::getpid()) + ".jsonl";

    const CliResult trained =
        run({"train", tinyDatasetPath(), "--out", model_path,
             "--type", "linear"});
    ASSERT_EQ(trained.code, 0) << trained.err;
    const CliResult monitored =
        run({"monitor", "--replay", tinyDatasetPath(), "--model",
             model_path, "--platform", "Core2", "--telemetry-out",
             telemetry_path});
    ASSERT_EQ(monitored.code, 0) << monitored.err;

    // The offline JSONL path lands in the same tree and renders the
    // same dashboard as the live feed.
    const CliResult viewed =
        run({"fleetview", "--telemetry", telemetry_path,
             "--group-size", "1", "--platform", "Core2"});
    ASSERT_EQ(viewed.code, 0) << viewed.err;
    EXPECT_NE(viewed.out.find("telemetry replay:"),
              std::string::npos);
    EXPECT_NE(viewed.out.find("fleetview (root):"),
              std::string::npos);
    EXPECT_NE(viewed.out.find("Worst machine"), std::string::npos);
    EXPECT_NE(viewed.out.find("Core2"), std::string::npos);

    std::remove(model_path.c_str());
    std::remove(telemetry_path.c_str());
}

TEST(Cli, FleetviewUsageErrors)
{
    // No mode, two modes, and --replay without a model all fail.
    EXPECT_EQ(run({"fleetview"}).code, 2);
    EXPECT_EQ(run({"fleetview", "--synthetic", "10", "--telemetry",
                   "x.jsonl"})
                  .code,
              2);
    EXPECT_EQ(run({"fleetview", "--replay", "x.csv"}).code, 2);
}

TEST(Cli, ReportSummarizesWorkloads)
{
    const CliResult result = run({"report", tinyDatasetPath()});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("# CHAOS dataset report"),
              std::string::npos);
    for (const char *workload :
         {"Sort", "PageRank", "Prime", "WordCount"}) {
        EXPECT_NE(result.out.find(workload), std::string::npos)
            << workload;
    }
    EXPECT_NE(result.out.find("energy/run"), std::string::npos);
}

TEST(Cli, ReportWithoutDatasetFails)
{
    EXPECT_EQ(run({"report"}).code, 2);
}

TEST(Cli, UsageErrorsForMissingArguments)
{
    EXPECT_EQ(run({"collect", "Core2"}).code, 2);
    EXPECT_EQ(run({"select"}).code, 2);
    EXPECT_EQ(run({"train", "data.csv"}).code, 2);
    EXPECT_EQ(run({"evaluate"}).code, 2);
    EXPECT_EQ(run({"predict", "model.txt"}).code, 2);
}

TEST(Cli, TopUsageErrors)
{
    // No target, and a target without a port, are usage errors
    // (exit 2) — never an attempted connection.
    EXPECT_EQ(run({"top"}).code, 2);
    EXPECT_EQ(run({"top", "--target", "localhost"}).code, 2);
    const CliResult help = run({"help"});
    EXPECT_NE(help.out.find("top --target"), std::string::npos);
}

} // namespace
} // namespace chaos
