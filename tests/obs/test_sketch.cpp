/**
 * @file
 * Tests for the mergeable quantile sketch: the relative-accuracy
 * contract against a rank-based oracle, merge-order invariance (the
 * property the roll-up tree is built on), signed/zero bucketing, and
 * the deterministic JSON snapshot. Also covers the jsonParse DOM the
 * roll-up replay path uses to read telemetry back.
 */
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/sketch.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

/**
 * The oracle mirrors the sketch's rank semantics exactly: the wanted
 * observation is the one at 1-based rank max(1, round(q * n)) in
 * ascending order. The sketch must report a value within alpha
 * relative error of that observation.
 */
double
exactQuantile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(values.size()) + 0.5));
    return values[rank - 1];
}

void
expectWithinAlpha(const obs::QuantileSketch &sketch,
                  const std::vector<double> &values, double q)
{
    const double exact = exactQuantile(values, q);
    const double estimate = sketch.quantile(q);
    EXPECT_LE(std::abs(estimate - exact),
              sketch.relativeAccuracy() * std::abs(exact) + 1e-12)
        << "q=" << q << " exact=" << exact
        << " estimate=" << estimate;
}

TEST(QuantileSketch, EmptySketchReportsNaN)
{
    obs::QuantileSketch sketch;
    EXPECT_TRUE(sketch.empty());
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_EQ(sketch.numBuckets(), 0u);
    EXPECT_TRUE(std::isnan(sketch.quantile(0.5)));
    EXPECT_TRUE(std::isnan(sketch.quantile(0.0)));
    EXPECT_TRUE(std::isnan(sketch.quantile(1.0)));
}

TEST(QuantileSketch, SingleValueCollapsesEveryQuantile)
{
    obs::QuantileSketch sketch(0.01);
    sketch.add(42.5);
    EXPECT_EQ(sketch.count(), 1u);
    // Clamping to the exact observed [min, max] makes the single-value
    // case exact, not just within alpha.
    EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 42.5);
    EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 42.5);
    EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 42.5);
    EXPECT_DOUBLE_EQ(sketch.minValue(), 42.5);
    EXPECT_DOUBLE_EQ(sketch.maxValue(), 42.5);
}

TEST(QuantileSketch, IgnoresNonFiniteAndZeroCount)
{
    obs::QuantileSketch sketch;
    sketch.add(std::numeric_limits<double>::quiet_NaN());
    sketch.add(std::numeric_limits<double>::infinity());
    sketch.add(-std::numeric_limits<double>::infinity());
    sketch.add(1.0, 0);
    EXPECT_TRUE(sketch.empty());
}

TEST(QuantileSketch, MeetsRelativeAccuracyAgainstOracle)
{
    // Values spanning five orders of magnitude — the regime a fixed-
    // bucket histogram cannot cover — drawn deterministically.
    Rng rng(2012);
    std::vector<double> values;
    obs::QuantileSketch sketch(0.01);
    for (int i = 0; i < 5000; ++i) {
        const double v =
            std::pow(10.0, rng.uniform(-2.0, 3.0));
        values.push_back(v);
        sketch.add(v);
    }
    EXPECT_EQ(sketch.count(), values.size());
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999})
        expectWithinAlpha(sketch, values, q);
}

TEST(QuantileSketch, HandlesNegativeAndZeroValues)
{
    // Signed quantities (bias, residuals) use the mirrored grid plus
    // the zero bucket.
    obs::QuantileSketch sketch(0.01);
    std::vector<double> values;
    for (int i = -50; i <= 50; ++i) {
        const double v = static_cast<double>(i) * 0.5;
        values.push_back(v);
        sketch.add(v);
    }
    EXPECT_DOUBLE_EQ(sketch.minValue(), -25.0);
    EXPECT_DOUBLE_EQ(sketch.maxValue(), 25.0);
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95})
        expectWithinAlpha(sketch, values, q);
    // The exact-zero observation lands in the dedicated zero bucket.
    obs::QuantileSketch zeros;
    zeros.add(0.0, 3);
    EXPECT_EQ(zeros.count(), 3u);
    EXPECT_DOUBLE_EQ(zeros.quantile(0.5), 0.0);
}

TEST(QuantileSketch, MergeEqualsFeedingTheUnion)
{
    Rng rng(7);
    obs::QuantileSketch a(0.02), b(0.02), whole(0.02);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(0.1, 400.0);
        (i % 2 ? a : b).add(v);
        whole.add(v);
    }
    ASSERT_TRUE(a.merge(b));
    EXPECT_EQ(a.count(), whole.count());
    // Same buckets, same counts: snapshots are byte-identical.
    EXPECT_EQ(a.toJson(), whole.toJson());
}

TEST(QuantileSketch, MergeIsOrderInvariant)
{
    // A + (B + C) vs (A + B) + C vs reversed: the roll-up tree merges
    // in whatever shape the topology dictates, so the result must be
    // bit-identical for every association and order.
    Rng rng(99);
    const auto fill = [&rng](obs::QuantileSketch &s, int n) {
        for (int i = 0; i < n; ++i)
            s.add(rng.uniform(-50.0, 150.0));
    };
    obs::QuantileSketch a(0.01), b(0.01), c(0.01);
    fill(a, 300);
    fill(b, 200);
    fill(c, 500);

    obs::QuantileSketch left(a);  // (A + B) + C
    ASSERT_TRUE(left.merge(b));
    ASSERT_TRUE(left.merge(c));

    obs::QuantileSketch bc(b);  // A + (B + C)
    ASSERT_TRUE(bc.merge(c));
    obs::QuantileSketch right(a);
    ASSERT_TRUE(right.merge(bc));

    obs::QuantileSketch reversed(c);  // C + B + A
    ASSERT_TRUE(reversed.merge(b));
    ASSERT_TRUE(reversed.merge(a));

    EXPECT_EQ(left.toJson(), right.toJson());
    EXPECT_EQ(left.toJson(), reversed.toJson());
}

TEST(QuantileSketch, MergeRejectsAccuracyMismatch)
{
    obs::QuantileSketch fine(0.01), coarse(0.05);
    fine.add(1.0);
    coarse.add(2.0);
    const std::string before = fine.toJson();
    EXPECT_FALSE(fine.merge(coarse));
    // A refused merge leaves the target untouched.
    EXPECT_EQ(fine.toJson(), before);
    EXPECT_EQ(fine.count(), 1u);
}

TEST(QuantileSketch, MergingAnEmptySketchIsIdentity)
{
    obs::QuantileSketch sketch(0.01), empty(0.01);
    sketch.add(3.0);
    sketch.add(-1.5);
    const std::string before = sketch.toJson();
    ASSERT_TRUE(sketch.merge(empty));
    EXPECT_EQ(sketch.toJson(), before);
    // And the other direction: empty absorbs everything.
    ASSERT_TRUE(empty.merge(sketch));
    EXPECT_EQ(empty.toJson(), before);
}

TEST(QuantileSketch, JsonSnapshotIsWellFormedAndDeterministic)
{
    obs::QuantileSketch a(0.01), b(0.01);
    for (double v : {0.5, -2.0, 0.0, 17.5, 17.5, 1e6})
        a.add(v);
    // Same state reached in a different insertion order.
    for (double v : {1e6, 17.5, 0.0, -2.0, 17.5, 0.5})
        b.add(v);
    EXPECT_TRUE(obs::jsonWellFormed(a.toJson()));
    EXPECT_EQ(a.toJson(), b.toJson());
    obs::QuantileSketch empty;
    EXPECT_TRUE(obs::jsonWellFormed(empty.toJson()));
}

TEST(QuantileSketch, ClearKeepsAccuracy)
{
    obs::QuantileSketch sketch(0.03);
    sketch.add(5.0, 10);
    sketch.clear();
    EXPECT_TRUE(sketch.empty());
    EXPECT_DOUBLE_EQ(sketch.relativeAccuracy(), 0.03);
    obs::QuantileSketch other(0.03);
    other.add(1.0);
    EXPECT_TRUE(sketch.merge(other));
    EXPECT_EQ(sketch.count(), 1u);
}

TEST(JsonParse, ParsesScalarsObjectsAndArrays)
{
    obs::JsonValue v;
    ASSERT_TRUE(obs::jsonParse(
        "{\"a\": 1.5, \"b\": [1, 2, 3], \"c\": \"x\\ny\", "
        "\"d\": null, \"e\": true}",
        v));
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.5);
    const obs::JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->items().size(), 3u);
    EXPECT_DOUBLE_EQ(b->items()[2].asNumber(), 3.0);
    EXPECT_EQ(v.stringOr("c", ""), "x\ny");
    const obs::JsonValue *d = v.find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->isNull());
    EXPECT_TRUE(v.boolOr("e", false));
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, FallbacksCoverAbsentAndMistypedMembers)
{
    obs::JsonValue v;
    ASSERT_TRUE(obs::jsonParse("{\"s\": \"str\", \"n\": 2}", v));
    // Mistyped: "s" is a string, so numberOr falls back — this is how
    // the replay path treats a JSON null rolling_dre as NaN.
    EXPECT_DOUBLE_EQ(v.numberOr("s", -1.0), -1.0);
    EXPECT_EQ(v.stringOr("n", "fb"), "fb");
    EXPECT_TRUE(std::isnan(v.numberOr("missing",
        std::numeric_limits<double>::quiet_NaN())));
}

TEST(JsonParse, RejectsMalformedInput)
{
    obs::JsonValue v;
    EXPECT_FALSE(obs::jsonParse("{\"a\": }", v));
    EXPECT_FALSE(obs::jsonParse("", v));
    EXPECT_FALSE(obs::jsonParse("{} trailing", v));
    EXPECT_FALSE(obs::jsonParse("[1, 2", v));
}

} // namespace
} // namespace chaos
