/**
 * @file
 * Tests for the tracing facility: span nesting and containment,
 * thread attribution, the enable gate, early end(), and the two
 * exporters (Chrome trace JSON, phase-tree summary).
 */
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace chaos {
namespace {

/** RAII enable/clear so a failing test cannot poison the next one. */
struct TraceFixture : ::testing::Test
{
    void SetUp() override
    {
        obs::setTraceEnabled(true);
        obs::clearTrace();
    }
    void TearDown() override
    {
        obs::setTraceEnabled(false);
        obs::clearTrace();
    }
};

const obs::TraceEvent *
findEvent(const std::vector<obs::TraceEvent> &events, const char *name)
{
    for (const auto &e : events) {
        if (std::string(e.name) == name)
            return &e;
    }
    return nullptr;
}

using Trace = TraceFixture;

TEST_F(Trace, NestedSpansRecordDepthAndContainment)
{
    {
        obs::Span outer("test.outer");
        {
            obs::Span inner("test.inner");
        }
    }
    const auto events = obs::collectTrace();
    const obs::TraceEvent *outer = findEvent(events, "test.outer");
    const obs::TraceEvent *inner = findEvent(events, "test.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->depth, 0);
    EXPECT_EQ(inner->depth, 1);
    EXPECT_EQ(outer->tid, inner->tid);
    // The inner span is contained in the outer one.
    EXPECT_GE(inner->startNs, outer->startNs);
    EXPECT_LE(inner->startNs + inner->durNs,
              outer->startNs + outer->durNs);
}

TEST_F(Trace, ThreadsGetDistinctSequentialIds)
{
    {
        obs::Span main_span("test.main_thread");
    }
    std::thread worker([] { obs::Span span("test.worker_thread"); });
    worker.join();

    const auto events = obs::collectTrace();
    const obs::TraceEvent *main_ev =
        findEvent(events, "test.main_thread");
    const obs::TraceEvent *worker_ev =
        findEvent(events, "test.worker_thread");
    ASSERT_NE(main_ev, nullptr);
    // Events from exited threads must survive (the pool's threads can
    // die before the trace is exported).
    ASSERT_NE(worker_ev, nullptr);
    EXPECT_NE(main_ev->tid, worker_ev->tid);
    EXPECT_EQ(worker_ev->depth, 0);
}

TEST_F(Trace, DisabledSpansRecordNothing)
{
    obs::setTraceEnabled(false);
    {
        obs::Span span("test.invisible");
    }
    obs::setTraceEnabled(true);
    EXPECT_EQ(findEvent(obs::collectTrace(), "test.invisible"),
              nullptr);
}

TEST_F(Trace, EarlyEndIsIdempotent)
{
    {
        obs::Span first("test.first");
        first.end();
        obs::Span second("test.second");  // Sibling, not a child.
        second.end();
        second.end();  // Second end() must not double-record.
    }
    const auto events = obs::collectTrace();
    ASSERT_EQ(events.size(), 2u);
    const obs::TraceEvent *second = findEvent(events, "test.second");
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->depth, 0);
}

TEST_F(Trace, ChromeExportIsWellFormedJson)
{
    EXPECT_TRUE(obs::jsonWellFormed(obs::chromeTraceJson()));
    {
        obs::Span outer("test.chrome \"quoted\"");
        obs::Span inner("test.chrome_inner");
    }
    const std::string json = obs::chromeTraceJson();
    EXPECT_TRUE(obs::jsonWellFormed(json));
    EXPECT_NE(json.find("test.chrome_inner"), std::string::npos);
    EXPECT_NE(json.find("\"ph\""), std::string::npos);
}

TEST_F(Trace, PhaseSummaryAggregatesByPath)
{
    for (int i = 0; i < 3; ++i) {
        obs::Span outer("test.summary_outer");
        obs::Span inner("test.summary_inner");
    }
    const std::string summary = obs::phaseSummary();
    EXPECT_NE(summary.find("test.summary_outer"), std::string::npos);
    EXPECT_NE(summary.find("test.summary_inner"), std::string::npos);
    EXPECT_NE(summary.find("3"), std::string::npos);  // Call count.
}

TEST_F(Trace, ClearDropsEvents)
{
    {
        obs::Span span("test.cleared");
    }
    EXPECT_FALSE(obs::collectTrace().empty());
    obs::clearTrace();
    EXPECT_TRUE(obs::collectTrace().empty());
}

} // namespace
} // namespace chaos
