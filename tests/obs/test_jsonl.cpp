/**
 * @file
 * Tests for the JSONL writer: per-line validation, rejection of
 * malformed or multi-line records, and the error surface.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/jsonl.hpp"

namespace chaos {
namespace {

class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {}
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream file(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(file, line))
        lines.push_back(line);
    return lines;
}

TEST(Jsonl, WritesOneValidatedRecordPerLine)
{
    TempPath path("chaos_test_jsonl_basic.jsonl");
    obs::JsonlWriter writer(path.str());
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(writer.writeLine("{\"a\": 1}"));
    EXPECT_TRUE(writer.writeLine("{\"b\": [1, 2, 3]}"));
    writer.flush();
    EXPECT_EQ(writer.linesWritten(), 2u);

    const auto lines = readLines(path.str());
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &line : lines)
        EXPECT_TRUE(obs::jsonWellFormed(line));
    EXPECT_EQ(lines[0], "{\"a\": 1}");
}

TEST(Jsonl, RejectsMalformedAndMultiLineRecords)
{
    TempPath path("chaos_test_jsonl_reject.jsonl");
    obs::JsonlWriter writer(path.str());
    ASSERT_TRUE(writer.ok());
    EXPECT_FALSE(writer.writeLine("{\"a\": "));  // Truncated.
    EXPECT_FALSE(writer.ok());
    EXPECT_NE(writer.error().find("well-formed"), std::string::npos);

    obs::JsonlWriter second(path.str());
    EXPECT_FALSE(second.writeLine("{\"a\":\n 1}"));  // Embedded newline.
    EXPECT_EQ(second.linesWritten(), 0u);
}

TEST(Jsonl, ErrorIsStickyAndLaterWritesAreNoOps)
{
    TempPath path("chaos_test_jsonl_sticky.jsonl");
    obs::JsonlWriter writer(path.str());
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(writer.writeLine("{\"good\": 1}"));
    EXPECT_FALSE(writer.writeLine("{\"bad\": "));  // Trips the error.
    ASSERT_FALSE(writer.ok());
    const std::string firstError = writer.error();
    EXPECT_FALSE(firstError.empty());

    // A perfectly valid record after the failure is refused: the
    // writer never silently resumes mid-stream, so a half-written
    // file is detectable by its error() rather than by a gap.
    EXPECT_FALSE(writer.writeLine("{\"good\": 2}"));
    EXPECT_EQ(writer.error(), firstError);  // Original cause kept.
    EXPECT_EQ(writer.linesWritten(), 1u);
    writer.flush();

    // Only the pre-failure line reached the file; no partial record.
    const auto lines = readLines(path.str());
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], "{\"good\": 1}");
    EXPECT_TRUE(obs::jsonWellFormed(lines[0]));
}

TEST(Jsonl, ReportsUnopenablePath)
{
    obs::JsonlWriter writer("/nonexistent-dir/x/y/z.jsonl");
    EXPECT_FALSE(writer.ok());
    EXPECT_FALSE(writer.error().empty());
    EXPECT_FALSE(writer.writeLine("{}"));
}

} // namespace
} // namespace chaos
