/**
 * @file
 * Tests for the anomaly-triggered flight recorder: trigger taxonomy,
 * ring overwrite, bundle dump contents and JSON validity, rate
 * limiting under a trigger storm (with concurrent emitters — run
 * under TSan in CI), window filtering, and the EventLog hook into the
 * process-wide instance.
 */
#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/events.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"

namespace chaos {
namespace {

/** Parse a whole bundle file into validated per-line JSON DOMs. */
std::vector<obs::JsonValue>
readBundle(const std::string &path)
{
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << "cannot open " << path;
    std::vector<obs::JsonValue> lines;
    std::string line;
    while (std::getline(file, line)) {
        obs::JsonValue value;
        EXPECT_TRUE(obs::jsonParse(line, value))
            << "malformed bundle line: " << line;
        lines.push_back(std::move(value));
    }
    return lines;
}

obs::Event
driftEvent(std::uint64_t seq, const std::string &source)
{
    obs::Event event;
    event.seq = seq;
    event.tsMs = obs::wallClockMs();
    event.kind = obs::EventKind::ModelDrift;
    event.source = source;
    event.detail = "rolling DRE over threshold";
    return event;
}

TEST(FlightTrigger, OnlyAnomalyKindsTrigger)
{
    EXPECT_TRUE(obs::flightTrigger(obs::EventKind::ModelDrift));
    EXPECT_TRUE(obs::flightTrigger(obs::EventKind::Backpressure));
    EXPECT_TRUE(obs::flightTrigger(obs::EventKind::ConnectionDrop));
    EXPECT_TRUE(obs::flightTrigger(obs::EventKind::Rollback));

    EXPECT_FALSE(obs::flightTrigger(obs::EventKind::HealthTransition));
    EXPECT_FALSE(obs::flightTrigger(obs::EventKind::Imputation));
    EXPECT_FALSE(obs::flightTrigger(obs::EventKind::Clamp));
    EXPECT_FALSE(obs::flightTrigger(obs::EventKind::Quarantine));
    EXPECT_FALSE(obs::flightTrigger(obs::EventKind::Retrain));
    EXPECT_FALSE(obs::flightTrigger(obs::EventKind::Promote));
}

TEST(FlightRecorder, DisabledRecorderIgnoresEverything)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-disabled";
    obs::FlightRecorder recorder(config);

    recorder.recordSpan("serve", "serve.drain", 1000);
    recorder.recordMetricDelta("serve", "chaos.serve.processed", 64);
    recorder.onEvent(driftEvent(0, "machine0"));

    EXPECT_EQ(recorder.triggersSeen(), 0u);
    EXPECT_EQ(recorder.bundlesWritten(), 0u);
    EXPECT_EQ(recorder.lastBundlePath(), "");

    obs::JsonValue snap;
    ASSERT_TRUE(obs::jsonParse(recorder.snapshotJson(), snap));
    const obs::JsonValue *rings = snap.find("rings");
    ASSERT_NE(rings, nullptr);
    EXPECT_TRUE(rings->members().empty());
}

TEST(FlightRecorder, RingKeepsNewestRecordsPerSubsystem)
{
    obs::FlightConfig config;
    config.ringCapacity = 4;
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    for (int i = 0; i < 10; ++i)
        recorder.recordSpan("serve", "serve.drain", 100 + i);
    recorder.recordSpan("net", "net.poll", 7);

    obs::JsonValue snap;
    ASSERT_TRUE(obs::jsonParse(recorder.snapshotJson(), snap));
    const obs::JsonValue *rings = snap.find("rings");
    ASSERT_NE(rings, nullptr);
    const obs::JsonValue *serve = rings->find("serve");
    ASSERT_NE(serve, nullptr);
    // Capacity 4 retained; the newest global sequence is the net
    // record (seq 10), and serve's newest is 9.
    EXPECT_EQ(serve->find("items")->asNumber(), 4.0);
    EXPECT_EQ(serve->find("newest_seq")->asNumber(), 9.0);
    const obs::JsonValue *net = rings->find("net");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->find("items")->asNumber(), 1.0);
    EXPECT_EQ(net->find("newest_seq")->asNumber(), 10.0);
}

TEST(FlightRecorder, BundleHoldsTriggerAndPrecedingContext)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-bundle";
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    recorder.recordSpan("serve", "serve.drain", 120000);
    recorder.recordSpan("serve", "serve.drain", 98000);
    recorder.recordMetricDelta("serve", "chaos.serve.processed", 512);
    recorder.onEvent(driftEvent(7, "machine3"));

    EXPECT_EQ(recorder.triggersSeen(), 1u);
    ASSERT_EQ(recorder.bundlesWritten(), 1u);
    const std::string path = recorder.lastBundlePath();
    ASSERT_NE(path, "");
    EXPECT_NE(path.find("model_drift"), std::string::npos);

    const std::vector<obs::JsonValue> lines = readBundle(path);
    // Header + 2 spans + 1 delta + the trigger event itself.
    ASSERT_EQ(lines.size(), 5u);

    const obs::JsonValue &header = lines[0];
    EXPECT_EQ(header.find("type")->asString(), "flight_bundle");
    EXPECT_EQ(header.find("items")->asNumber(), 4.0);
    const obs::JsonValue *trigger = header.find("trigger");
    ASSERT_NE(trigger, nullptr);
    EXPECT_EQ(trigger->find("kind")->asString(), "model_drift");
    EXPECT_EQ(trigger->find("source")->asString(), "machine3");

    // Context records are oldest first with monotonically increasing
    // sequence numbers, spans precede the trigger event, and every
    // record names its subsystem.
    std::size_t spans = 0;
    double lastSeq = -1.0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const obs::JsonValue &record = lines[i];
        const double seq = record.find("seq")->asNumber();
        EXPECT_GT(seq, lastSeq);
        lastSeq = seq;
        ASSERT_NE(record.find("subsystem"), nullptr);
        if (record.find("type")->asString() == "span") {
            ++spans;
            EXPECT_NE(record.find("dur_ns"), nullptr);
        }
    }
    EXPECT_GE(spans, 1u);
    EXPECT_EQ(lines.back().find("type")->asString(), "event");
    EXPECT_EQ(lines.back().find("name")->asString(), "model_drift");
}

TEST(FlightRecorder, StormOfTriggersWritesExactlyOneBundle)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-storm";
    config.rateLimitMs = 60000; // Far longer than the test runs.
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    recorder.recordSpan("serve", "serve.drain", 1000);
    for (std::uint64_t i = 0; i < 100; ++i)
        recorder.onEvent(driftEvent(i, "machine0"));

    EXPECT_EQ(recorder.triggersSeen(), 100u);
    EXPECT_EQ(recorder.bundlesWritten(), 1u);
    EXPECT_EQ(recorder.triggersSuppressed(), 99u);
}

TEST(FlightRecorder, ConcurrentStormAndEmittersStaySane)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-concurrent";
    config.rateLimitMs = 60000;
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    // 4 trigger threads x 25 drift events (one tick's storm) racing
    // 4 span/delta emitters — the TSan configuration in CI runs this
    // with real concurrency.
    constexpr int kTriggerThreads = 4;
    constexpr int kTriggersEach = 25;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kTriggerThreads; ++t) {
        threads.emplace_back([&recorder, &go, t] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kTriggersEach; ++i) {
                recorder.onEvent(driftEvent(
                    static_cast<std::uint64_t>(t * kTriggersEach + i),
                    "machine" + std::to_string(t)));
            }
        });
        threads.emplace_back([&recorder, &go] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 200; ++i) {
                recorder.recordSpan("serve", "serve.drain", 5000);
                recorder.recordMetricDelta("serve",
                                           "chaos.serve.processed",
                                           64.0);
            }
        });
    }
    go.store(true);
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(recorder.triggersSeen(), 100u);
    EXPECT_EQ(recorder.bundlesWritten(), 1u);
    EXPECT_EQ(recorder.triggersSuppressed(), 99u);
    // The one bundle that was written is fully valid JSONL.
    readBundle(recorder.lastBundlePath());
}

TEST(FlightRecorder, NoOutDirSuppressesDumpsButCountsTriggers)
{
    obs::FlightRecorder recorder; // Default config: outDir "".
    recorder.setEnabled(true);
    recorder.onEvent(driftEvent(0, "machine0"));
    EXPECT_EQ(recorder.triggersSeen(), 1u);
    EXPECT_EQ(recorder.triggersSuppressed(), 1u);
    EXPECT_EQ(recorder.bundlesWritten(), 0u);
}

TEST(FlightRecorder, BundleCapStopsFurtherDumps)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-cap";
    config.rateLimitMs = 0; // Rate limiting off; only the cap binds.
    config.maxBundles = 2;
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    for (std::uint64_t i = 0; i < 5; ++i)
        recorder.onEvent(driftEvent(i, "machine0"));
    EXPECT_EQ(recorder.bundlesWritten(), 2u);
    EXPECT_EQ(recorder.triggersSuppressed(), 3u);
}

TEST(FlightRecorder, WindowFiltersStaleRecords)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-window";
    config.windowMs = 0; // Only records stamped at/after the trigger.
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    recorder.recordSpan("serve", "serve.drain", 1000);
    // A trigger from the future: the span (stamped now) falls outside
    // the zero-width window, the trigger event itself stays inside.
    obs::Event event = driftEvent(0, "machine0");
    event.tsMs += 60000;
    recorder.onEvent(event);

    ASSERT_EQ(recorder.bundlesWritten(), 1u);
    const std::vector<obs::JsonValue> lines =
        readBundle(recorder.lastBundlePath());
    ASSERT_EQ(lines.size(), 2u); // Header + the trigger event only.
    EXPECT_EQ(lines[0].find("items")->asNumber(), 1.0);
    EXPECT_EQ(lines[1].find("type")->asString(), "event");
}

TEST(FlightRecorder, ClearResetsStateAndRateLimiter)
{
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-clear";
    obs::FlightRecorder recorder(config);
    recorder.setEnabled(true);

    recorder.recordSpan("serve", "serve.drain", 1000);
    recorder.onEvent(driftEvent(0, "machine0"));
    ASSERT_EQ(recorder.bundlesWritten(), 1u);

    recorder.clear();
    EXPECT_EQ(recorder.bundlesWritten(), 0u);
    EXPECT_EQ(recorder.triggersSeen(), 0u);
    EXPECT_EQ(recorder.lastBundlePath(), "");

    // A post-clear trigger dumps again immediately (the rate limiter
    // was reset too).
    recorder.onEvent(driftEvent(1, "machine1"));
    EXPECT_EQ(recorder.bundlesWritten(), 1u);
}

TEST(FlightRecorder, ProcessEventLogFeedsGlobalInstance)
{
    obs::FlightRecorder &recorder = obs::FlightRecorder::instance();
    obs::FlightConfig config;
    config.outDir = ::testing::TempDir() + "flight-global";
    recorder.clear();
    recorder.configure(config);
    recorder.setEnabled(true);

    obs::EventLog::instance().emit(obs::EventKind::ModelDrift,
                                   "machine9",
                                   "drift via the process log");
    recorder.setEnabled(false);

    EXPECT_EQ(recorder.triggersSeen(), 1u);
    ASSERT_EQ(recorder.bundlesWritten(), 1u);
    const std::vector<obs::JsonValue> lines =
        readBundle(recorder.lastBundlePath());
    const obs::JsonValue *trigger = lines[0].find("trigger");
    ASSERT_NE(trigger, nullptr);
    EXPECT_EQ(trigger->find("kind")->asString(), "model_drift");
    EXPECT_EQ(trigger->find("source")->asString(), "machine9");
    recorder.clear();
}

} // namespace
} // namespace chaos
