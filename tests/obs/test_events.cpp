/**
 * @file
 * Tests for the health/event log: emission order, sequence numbers,
 * ring-buffer overwrite semantics, and the JSON dump.
 */
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace chaos {
namespace {

TEST(EventLog, EmitsInOrderWithSequenceNumbers)
{
    obs::EventLog log(16);
    log.emit(obs::EventKind::HealthTransition, "m0",
             "Healthy -> Degraded");
    log.emit(obs::EventKind::Imputation, "m0", "bridged", 3);
    log.emit(obs::EventKind::Clamp, "m1", "clamped");

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[2].seq, 2u);
    EXPECT_EQ(events[0].kind, obs::EventKind::HealthTransition);
    EXPECT_EQ(events[1].count, 3u);
    EXPECT_EQ(events[2].source, "m1");
    EXPECT_EQ(log.totalEmitted(), 3u);
}

TEST(EventLog, RingOverwritesOldestFirst)
{
    obs::EventLog log(4);
    for (int i = 0; i < 6; ++i) {
        log.emit(obs::EventKind::FaultActivation, "injector",
                 "burst " + std::to_string(i));
    }
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // The two oldest events (seq 0, 1) were overwritten.
    EXPECT_EQ(events.front().seq, 2u);
    EXPECT_EQ(events.back().seq, 5u);
    EXPECT_EQ(events.front().detail, "burst 2");
    EXPECT_EQ(log.totalEmitted(), 6u);
}

TEST(EventLog, ClearKeepsSequenceAdvancing)
{
    obs::EventLog log(8);
    log.emit(obs::EventKind::Substitution, "m0", "a");
    log.clear();
    EXPECT_TRUE(log.snapshot().empty());
    log.emit(obs::EventKind::Substitution, "m0", "b");
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 1u);  // Not reused after clear().
    EXPECT_EQ(log.totalEmitted(), 2u);
}

TEST(EventLog, JsonDumpIsWellFormed)
{
    obs::EventLog log(8);
    EXPECT_TRUE(obs::jsonWellFormed(log.jsonDump()));
    log.emit(obs::EventKind::HealthTransition, "machine\"3\"",
             "Stale -> Lost");
    log.emit(obs::EventKind::Imputation, "m1", "line1\nline2", 12);
    const std::string json = log.jsonDump();
    EXPECT_TRUE(obs::jsonWellFormed(json));
    EXPECT_NE(json.find("health_transition"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 12"), std::string::npos);
}

TEST(EventLog, KindNamesAreStable)
{
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::HealthTransition),
                 "health_transition");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Imputation),
                 "imputation");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Clamp), "clamp");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Substitution),
                 "substitution");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::FaultActivation),
                 "fault_activation");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::ModelDrift),
                 "model_drift");
}

TEST(EventLog, EventsCarryWallClockTimestamps)
{
    const std::uint64_t before = obs::wallClockMs();
    obs::EventLog log(4);
    log.emit(obs::EventKind::ModelDrift, "m0", "detector fired");
    const std::uint64_t after = obs::wallClockMs();

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_GE(events[0].tsMs, before);
    EXPECT_LE(events[0].tsMs, after);
    // The dump schema stays backward compatible: ts_ms is additive.
    const std::string json = log.jsonDump();
    EXPECT_TRUE(obs::jsonWellFormed(json));
    EXPECT_NE(json.find("\"ts_ms\": "), std::string::npos);
    EXPECT_NE(json.find("model_drift"), std::string::npos);
}

TEST(EventLog, OverflowIsCountedNotSilent)
{
    auto &counter = obs::Registry::instance().counter(
        "chaos.obs.events_dropped");
    const std::uint64_t before = counter.value();

    obs::EventLog log(4);
    EXPECT_EQ(log.dropped(), 0u);
    for (int i = 0; i < 10; ++i) {
        log.emit(obs::EventKind::Backpressure, "shard0",
                 "queue full " + std::to_string(i));
    }
    // 10 emitted into a 4-slot ring: 6 overwritten before any
    // snapshot could retain them.
    EXPECT_EQ(log.dropped(), 6u);
    EXPECT_EQ(log.totalEmitted(), 10u);
    EXPECT_EQ(log.snapshot().size(), 4u);
    // Every overwrite bumps the process-wide counter too, so a
    // dashboard scraping the registry sees the loss.
    EXPECT_EQ(counter.value() - before, 6u);
}

TEST(EventLog, ClearDoesNotCountAsDrop)
{
    obs::EventLog log(8);
    log.emit(obs::EventKind::Clamp, "m0", "a");
    log.emit(obs::EventKind::Clamp, "m0", "b");
    log.clear();
    // Explicitly discarded, not silently overwritten.
    EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, ConcurrentEmittersAccountForEveryDrop)
{
    // N threads flood a small ring; whatever the interleaving, the
    // books must balance exactly: emitted = retained + dropped.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    obs::EventLog log(16);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&log, t]() {
            for (int i = 0; i < kPerThread; ++i) {
                log.emit(obs::EventKind::Imputation,
                         "m" + std::to_string(t), "flood");
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    const std::uint64_t total =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(log.totalEmitted(), total);
    EXPECT_EQ(log.snapshot().size(), 16u);
    EXPECT_EQ(log.dropped(), total - 16u);

    // Sequence numbers stay unique and in order in the snapshot.
    const auto events = log.snapshot();
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
}

} // namespace
} // namespace chaos
