/**
 * @file
 * Tests for the metrics registry: counter/gauge/histogram semantics,
 * bucket edge handling, the enable gate, and the determinism contract
 * of the Stable snapshot across thread counts.
 */
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace chaos {
namespace {

TEST(Metrics, CounterAccumulatesAndResets)
{
    auto &c = obs::Registry::instance().counter("test.metrics.basic");
    c.reset();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeMovesBothWays)
{
    auto &g = obs::Registry::instance().gauge("test.metrics.gauge");
    g.reset();
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, DisabledGateDropsUpdatesButKeepsValues)
{
    auto &c = obs::Registry::instance().counter("test.metrics.gate");
    c.reset();
    c.add(5);
    obs::setMetricsEnabled(false);
    c.add(100);
    obs::setMetricsEnabled(true);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, HistogramBucketEdgesAreInclusive)
{
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_edges", {1.0, 2.0});
    h.reset();
    h.observe(0.5);
    h.observe(1.0);  // On the edge: first bucket (inclusive bound).
    h.observe(1.5);
    h.observe(2.0);  // On the edge: second bucket.
    h.observe(2.5);  // Above the last bound: overflow bucket.

    const std::vector<std::uint64_t> counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 3u);  // Two bounds plus overflow.
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(h.maxValue(), 2.5);
}

TEST(Metrics, FirstHistogramRegistrationWins)
{
    auto &a = obs::Registry::instance().histogram(
        "test.metrics.hist_dup", {10.0});
    auto &b = obs::Registry::instance().histogram(
        "test.metrics.hist_dup", {99.0, 100.0});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.bounds(), std::vector<double>({10.0}));
}

TEST(Metrics, SnapshotJsonIsWellFormed)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.metrics.snap").add();
    reg.gauge("test.metrics.snap_gauge").set(3);
    reg.histogram("test.metrics.snap_hist", {1.0}).observe(0.5);
    EXPECT_TRUE(obs::jsonWellFormed(reg.snapshotJson(false)));
    EXPECT_TRUE(obs::jsonWellFormed(reg.snapshotJson(true)));
}

TEST(Metrics, SchedulingMetricsExcludedFromStableSnapshot)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.metrics.sched_only",
                obs::Stability::Scheduling)
        .add(123);
    const std::string stable = reg.snapshotJson(false);
    const std::string full = reg.snapshotJson(true);
    EXPECT_EQ(stable.find("test.metrics.sched_only"),
              std::string::npos);
    EXPECT_NE(full.find("test.metrics.sched_only"), std::string::npos);
}

TEST(Metrics, EmptyHistogramSnapshotsAndPercentiles)
{
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_empty", {1.0, 2.0});
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    EXPECT_TRUE(std::isnan(h.percentile(0.0)));
    EXPECT_TRUE(std::isnan(h.percentile(1.0)));
    // An empty histogram must still render into a well-formed
    // snapshot (no min/max fields, zero counts).
    const std::string snap =
        obs::Registry::instance().snapshotJson(false);
    EXPECT_TRUE(obs::jsonWellFormed(snap));
    EXPECT_NE(snap.find("test.metrics.hist_empty"),
              std::string::npos);
}

TEST(Metrics, SingleSamplePercentilesCollapseToTheSample)
{
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_single", {10.0, 20.0});
    h.reset();
    h.observe(7.25);
    // With one observation every quantile is that observation: the
    // interpolated in-bucket value is clamped to [min, max].
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.25);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 7.25);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 7.25);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.25);
}

TEST(Metrics, OverflowBucketPercentileReportsObservedMax)
{
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_overflow", {1.0});
    h.reset();
    h.observe(0.5);
    h.observe(100.0);
    h.observe(250.0);
    // Ranks 2 and 3 land in the unbounded overflow bucket, which is
    // bounded below by the last finite edge and above by the observed
    // maximum; the top rank is exactly that maximum.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 250.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 250.0);
    // Rank 2 interpolates halfway across [1.0, 250.0] instead of
    // flat-lining at the maximum.
    EXPECT_DOUBLE_EQ(h.percentile(0.6), 125.5);
}

TEST(Metrics, SingleBucketPercentilesInterpolateWithinObservedRange)
{
    // Everything lands in one bucket whose upper edge (10) is far
    // above the observed range [3, 8]. The interpolation interval must
    // be the observed range, not the bucket: p99/p100 used to hit the
    // bucket edge and get clamped while mid quantiles skewed high.
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_one_bucket", {10.0});
    h.reset();
    for (int i = 0; i < 99; ++i)
        h.observe(3.0);
    h.observe(8.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0 + 0.01 * 5.0);
    EXPECT_LE(h.percentile(0.5), 5.5);
    EXPECT_GE(h.percentile(0.5), 3.0);
}

TEST(Metrics, LastFiniteBucketPercentileClipsToObservedMax)
{
    // All mass in the last finite bucket [10, 20] but observations
    // only span [12, 18]: boundary quantiles must stay inside the
    // observed range rather than report the raw bucket edges.
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_last_bucket", {10.0, 20.0});
    h.reset();
    for (int i = 0; i < 50; ++i) {
        h.observe(12.0);
        h.observe(18.0);
    }
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 18.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 12.0 + 0.9 * 6.0);
    EXPECT_GE(h.percentile(0.01), 12.0);
}

TEST(Metrics, ConstantObservationsCollapseEveryPercentile)
{
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_const", {0.05, 0.5, 5.0});
    h.reset();
    for (int i = 0; i < 1000; ++i)
        h.observe(0.3);
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), 0.3) << "q=" << q;
}

TEST(Metrics, HistogramMinMaxSurviveConcurrentObservers)
{
    auto &h = obs::Registry::instance().histogram(
        "test.metrics.hist_cas", {1e6});
    h.reset();
    // Hammer the CAS min/max loops from the pool: every value is
    // observed exactly once, so the extremes are exact, whatever the
    // interleaving.
    setGlobalThreadCount(8);
    parallelFor(4096, [](size_t i) {
        static auto &hist = obs::Registry::instance().histogram(
            "test.metrics.hist_cas", {1e6});
        hist.observe(static_cast<double>(i) - 2048.0);
    });
    setGlobalThreadCount(1);
    EXPECT_EQ(h.count(), 4096u);
    EXPECT_DOUBLE_EQ(h.minValue(), -2048.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 2047.0);
}

TEST(Metrics, HistogramBulkObserveMatchesScalarObserve)
{
    const std::vector<double> bounds{1.0, 2.0, 4.0};
    obs::Histogram scalar(bounds);
    obs::Histogram bulk(bounds);
    const std::vector<double> values{0.5, 1.0, 1.5, 2.0,
                                     3.0, 9.0, 0.1, 4.0};
    for (double v : values)
        scalar.observe(v);
    bulk.observeBulk(values.data(), values.size());

    EXPECT_EQ(bulk.bucketCounts(), scalar.bucketCounts());
    EXPECT_EQ(bulk.count(), scalar.count());
    EXPECT_DOUBLE_EQ(bulk.minValue(), scalar.minValue());
    EXPECT_DOUBLE_EQ(bulk.maxValue(), scalar.maxValue());

    // The offset form shifts every value, including min/max and the
    // bucket each lands in — the serve drain uses it to derive the
    // e2e histogram from the queue-wait scratch.
    obs::Histogram shifted(bounds);
    shifted.observeBulk(values.data(), values.size(), 1.0);
    obs::Histogram expected(bounds);
    for (double v : values)
        expected.observe(v + 1.0);
    EXPECT_EQ(shifted.bucketCounts(), expected.bucketCounts());
    EXPECT_DOUBLE_EQ(shifted.minValue(), expected.minValue());
    EXPECT_DOUBLE_EQ(shifted.maxValue(), expected.maxValue());

    // Empty batches are a no-op.
    shifted.observeBulk(values.data(), 0);
    EXPECT_EQ(shifted.count(), values.size());
}

TEST(Metrics, HistogramMergeAddsCountsAndExtremes)
{
    obs::Histogram a({1.0, 10.0});
    obs::Histogram b({1.0, 10.0});
    a.observe(0.5);
    a.observe(5.0);
    b.observe(5.0);
    b.observe(100.0);

    ASSERT_TRUE(a.merge(b));
    const auto counts = a.bucketCounts();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(a.maxValue(), 100.0);
}

TEST(Metrics, HistogramMergeIsOrderIndependent)
{
    const std::vector<double> bounds{2.0, 8.0, 32.0};
    obs::Histogram a(bounds), b(bounds), c(bounds);
    for (int i = 0; i < 30; ++i)
        a.observe(static_cast<double>(i));
    for (int i = 0; i < 10; ++i)
        b.observe(static_cast<double>(i) * 0.3);
    c.observe(1000.0);

    obs::Histogram left(bounds);  // (A + B) + C
    ASSERT_TRUE(left.merge(a));
    ASSERT_TRUE(left.merge(b));
    ASSERT_TRUE(left.merge(c));
    obs::Histogram right(bounds);  // C + B + A
    ASSERT_TRUE(right.merge(c));
    ASSERT_TRUE(right.merge(b));
    ASSERT_TRUE(right.merge(a));

    EXPECT_EQ(left.bucketCounts(), right.bucketCounts());
    EXPECT_EQ(left.count(), right.count());
    EXPECT_DOUBLE_EQ(left.minValue(), right.minValue());
    EXPECT_DOUBLE_EQ(left.maxValue(), right.maxValue());
}

TEST(Metrics, HistogramMergeRejectsMismatchedBounds)
{
    obs::Histogram a({1.0, 2.0});
    obs::Histogram b({1.0, 3.0});
    obs::Histogram c({1.0});
    a.observe(0.5);
    b.observe(0.5);
    c.observe(0.5);
    EXPECT_FALSE(a.merge(b));
    EXPECT_FALSE(a.merge(c));
    // The refused merge leaves the target untouched.
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.bucketCounts(),
              std::vector<std::uint64_t>({1u, 0u, 0u}));
}

TEST(Metrics, HistogramMergingAnEmptyHistogramIsIdentity)
{
    obs::Histogram a({1.0, 2.0});
    obs::Histogram empty({1.0, 2.0});
    a.observe(1.5);
    ASSERT_TRUE(a.merge(empty));
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.minValue(), 1.5);
    EXPECT_DOUBLE_EQ(a.maxValue(), 1.5);
    // Empty absorbing non-empty adopts its extremes.
    ASSERT_TRUE(empty.merge(a));
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.minValue(), 1.5);
    EXPECT_DOUBLE_EQ(empty.maxValue(), 1.5);
}

/**
 * The determinism contract: for identical work, the Stable snapshot
 * is bit-identical no matter how many threads executed it. This is
 * the CHAOS_THREADS=1 vs 8 acceptance check in miniature.
 */
TEST(Metrics, StableSnapshotIdenticalAcrossThreadCounts)
{
    auto &reg = obs::Registry::instance();
    const auto runWork = [&reg]() {
        reg.resetAll();
        parallelFor(512, [](size_t i) {
            static auto &c = obs::Registry::instance().counter(
                "test.metrics.det_count");
            c.add(i % 7);
            static auto &h = obs::Registry::instance().histogram(
                "test.metrics.det_hist", {64.0, 256.0});
            h.observe(static_cast<double>(i));
        });
        return reg.snapshotJson(false);
    };

    setGlobalThreadCount(1);
    const std::string serial = runWork();
    setGlobalThreadCount(8);
    const std::string threaded = runWork();
    setGlobalThreadCount(1);
    EXPECT_EQ(serial, threaded);
}

} // namespace
} // namespace chaos
