/**
 * @file
 * Tests for the dense Matrix type.
 */
#include <gtest/gtest.h>

#include "linalg/matrix.hpp"

namespace chaos {
namespace {

TEST(Matrix, ConstructionZeroFills)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (size_t r = 0; r < 2; ++r) {
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 0.0);
    }
}

TEST(Matrix, FromRowsAndAccessors)
{
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m.at(2, 1), 6.0);
    EXPECT_EQ(m.row(1), (std::vector<double>{3, 4}));
    EXPECT_EQ(m.column(0), (std::vector<double>{1, 3, 5}));
}

TEST(Matrix, FromRaggedRowsPanics)
{
    EXPECT_DEATH(Matrix::fromRows({{1, 2}, {3}}), "ragged");
}

TEST(Matrix, AtOutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
    EXPECT_DEATH(m.at(0, 2), "out of range");
}

TEST(Matrix, Identity)
{
    const Matrix eye = Matrix::identity(3);
    for (size_t r = 0; r < 3; ++r) {
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
}

TEST(Matrix, TransposeRoundTrip)
{
    const Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(m.maxAbsDiff(t.transposed()), 0.0);
}

TEST(Matrix, MultiplyKnownProduct)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchPanics)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_DEATH(a.multiply(b), "shape mismatch");
}

TEST(Matrix, MatrixVectorProduct)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const auto v = a.multiply(std::vector<double>{1, 0, -1});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], -2.0);
    EXPECT_DOUBLE_EQ(v[1], -2.0);
}

TEST(Matrix, GramEqualsTransposeTimesSelf)
{
    const Matrix a =
        Matrix::fromRows({{1, 2, 0.5}, {3, -4, 2}, {0, 1, 7}, {2, 2, 2}});
    const Matrix direct = a.transposed().multiply(a);
    EXPECT_LT(a.gram().maxAbsDiff(direct), 1e-12);
}

TEST(Matrix, TransposeTimesVector)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const auto v = a.transposeTimes({1, 1, 1});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 9.0);
    EXPECT_DOUBLE_EQ(v[1], 12.0);
}

TEST(Matrix, SelectColumnsReorders)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix s = a.selectColumns({2, 0});
    EXPECT_EQ(s.cols(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Matrix, SelectRowsReorders)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    const Matrix s = a.selectRows({2, 2, 0});
    EXPECT_EQ(s.rows(), 3u);
    EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(s(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(s(2, 1), 2.0);
}

TEST(Matrix, SelectOutOfRangePanics)
{
    const Matrix a(2, 2);
    EXPECT_DEATH(a.selectColumns({5}), "out of range");
    EXPECT_DEATH(a.selectRows({5}), "out of range");
}

TEST(Matrix, AppendRowsAndRow)
{
    Matrix a;
    a.appendRow({1, 2});
    a.appendRow({3, 4});
    EXPECT_EQ(a.rows(), 2u);
    Matrix b = Matrix::fromRows({{5, 6}});
    a.appendRows(b);
    EXPECT_EQ(a.rows(), 3u);
    EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
}

TEST(Matrix, AppendWidthMismatchPanics)
{
    Matrix a;
    a.appendRow({1, 2});
    EXPECT_DEATH(a.appendRow({1, 2, 3}), "width mismatch");
}

TEST(Matrix, SetColumn)
{
    Matrix a(3, 2);
    a.setColumn(1, {7, 8, 9});
    EXPECT_DOUBLE_EQ(a(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(a(2, 1), 9.0);
    EXPECT_DEATH(a.setColumn(1, {1, 2}), "size mismatch");
}

TEST(Matrix, MaxAbsDiff)
{
    const Matrix a = Matrix::fromRows({{1, 2}});
    const Matrix b = Matrix::fromRows({{1.5, 1}});
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 1.0);
}

TEST(Matrix, TransposeTimesSelfMatchesGram)
{
    const Matrix x = Matrix::fromRows(
        {{1, 2, 0}, {0, -1, 3}, {4, 0, 1}, {2, 2, 2}});
    const Matrix g = x.gram();
    EXPECT_DOUBLE_EQ(x.transposeTimesSelf().maxAbsDiff(g), 0.0);
}

TEST(Matrix, TransposeTimesSelfFusedRhs)
{
    const Matrix x = Matrix::fromRows(
        {{1, 2, 0}, {0, -1, 3}, {4, 0, 1}, {2, 2, 2}});
    const std::vector<double> y = {1, -2, 0.5, 3};

    std::vector<double> xty;
    const Matrix g = x.transposeTimesSelf(y, xty);

    EXPECT_DOUBLE_EQ(g.maxAbsDiff(x.gram()), 0.0);
    const auto expected = x.transposeTimes(y);
    ASSERT_EQ(xty.size(), expected.size());
    for (size_t i = 0; i < xty.size(); ++i)
        EXPECT_DOUBLE_EQ(xty[i], expected[i]);
}

TEST(Matrix, TransposeTimesSelfShapeMismatchPanics)
{
    const Matrix x = Matrix::fromRows({{1, 2}, {3, 4}});
    std::vector<double> xty;
    EXPECT_DEATH(x.transposeTimesSelf({1.0}, xty), "shape mismatch");
}

} // namespace
} // namespace chaos
