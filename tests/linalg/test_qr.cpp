/**
 * @file
 * Tests for Householder QR and QR-based least squares.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(Qr, SolvesSquareSystemExactly)
{
    const Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    const QrDecomposition qr(a);
    const auto x = qr.solve({5, 10});
    // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 3.0, 1e-10);
}

TEST(Qr, LeastSquaresOfOverdeterminedSystem)
{
    // Fit y = 2x + 1 through noisy-free points: exact recovery.
    Matrix a(4, 2);
    std::vector<double> y(4);
    const double xs[] = {0, 1, 2, 3};
    for (size_t i = 0; i < 4; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = xs[i];
        y[i] = 2.0 * xs[i] + 1.0;
    }
    const auto b = qrLeastSquares(a, y);
    EXPECT_NEAR(b[0], 1.0, 1e-10);
    EXPECT_NEAR(b[1], 2.0, 1e-10);
}

TEST(Qr, WideMatrixPanics)
{
    const Matrix a(2, 3);
    EXPECT_DEATH(QrDecomposition{a}, "rows >= cols");
}

TEST(Qr, DetectsRankDeficiency)
{
    Matrix a(4, 2);
    for (size_t i = 0; i < 4; ++i) {
        a(i, 0) = static_cast<double>(i);
        a(i, 1) = 2.0 * static_cast<double>(i);  // Duplicate column.
    }
    EXPECT_TRUE(QrDecomposition(a).rankDeficient());

    Matrix b(4, 2);
    for (size_t i = 0; i < 4; ++i) {
        b(i, 0) = 1.0;
        b(i, 1) = static_cast<double>(i);
    }
    EXPECT_FALSE(QrDecomposition(b).rankDeficient());
}

TEST(Qr, RFactorIsUpperTriangular)
{
    Rng rng(5);
    Matrix a(6, 3);
    for (size_t r = 0; r < 6; ++r) {
        for (size_t c = 0; c < 3; ++c)
            a(r, c) = rng.normal();
    }
    const Matrix r = QrDecomposition(a).r();
    for (size_t i = 1; i < 3; ++i) {
        for (size_t j = 0; j < i; ++j)
            EXPECT_DOUBLE_EQ(r(i, j), 0.0);
    }
}

TEST(Qr, RPreservesGram)
{
    // R^T R == A^T A (up to floating point) for full-rank A.
    Rng rng(6);
    Matrix a(10, 4);
    for (size_t r = 0; r < 10; ++r) {
        for (size_t c = 0; c < 4; ++c)
            a(r, c) = rng.normal();
    }
    const Matrix r = QrDecomposition(a).r();
    EXPECT_LT(r.gram().maxAbsDiff(a.gram()), 1e-9);
}

class QrRandomLsTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(QrRandomLsTest, ResidualIsOrthogonalToColumns)
{
    Rng rng(100 + GetParam());
    const size_t n = 30;
    const size_t p = GetParam();
    Matrix a(n, p);
    std::vector<double> y(n);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < p; ++c)
            a(r, c) = rng.normal();
        y[r] = rng.normal();
    }
    const auto b = qrLeastSquares(a, y);
    // Normal equations: A^T (y - A b) == 0.
    const auto fitted = a.multiply(b);
    std::vector<double> resid(n);
    for (size_t i = 0; i < n; ++i)
        resid[i] = y[i] - fitted[i];
    const auto grad = a.transposeTimes(resid);
    for (double g : grad)
        EXPECT_NEAR(g, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Widths, QrRandomLsTest,
                         ::testing::Values(1, 2, 5, 10));

} // namespace
} // namespace chaos
