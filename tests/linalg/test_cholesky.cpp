/**
 * @file
 * Tests for the Cholesky factorization: correctness against known
 * systems, property checks over random SPD matrices, and stabilized
 * factoring of near-singular inputs.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

Matrix
randomSpd(size_t n, Rng &rng, double ridge = 0.5)
{
    // A^T A + ridge I is SPD.
    Matrix a(n, n);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c)
            a(r, c) = rng.normal();
    }
    Matrix spd = a.gram();
    for (size_t i = 0; i < n; ++i)
        spd(i, i) += ridge;
    return spd;
}

TEST(Cholesky, SolvesKnownSystem)
{
    // [[4,2],[2,3]] x = [8, 7]  ->  x = [1.25, 1.5]
    const Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    const auto chol = Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    const auto x = chol->solve({8, 7});
    EXPECT_NEAR(x[0], 1.25, 1e-12);
    EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {2, 1}});  // Eig -1, 3.
    EXPECT_FALSE(Cholesky::factor(a).has_value());
}

TEST(Cholesky, RejectsNonSquarePanics)
{
    const Matrix a(2, 3);
    EXPECT_DEATH(Cholesky::factor(a), "square");
}

TEST(Cholesky, InverseOfIdentityIsIdentity)
{
    const auto chol = Cholesky::factor(Matrix::identity(4));
    ASSERT_TRUE(chol.has_value());
    EXPECT_LT(chol->inverse().maxAbsDiff(Matrix::identity(4)), 1e-12);
}

TEST(Cholesky, LogDetOfDiagonal)
{
    Matrix d(3, 3);
    d(0, 0) = 2.0;
    d(1, 1) = 4.0;
    d(2, 2) = 8.0;
    const auto chol = Cholesky::factor(d);
    ASSERT_TRUE(chol.has_value());
    EXPECT_NEAR(chol->logDet(), std::log(64.0), 1e-12);
}

TEST(Cholesky, FactorRidgedStabilizesSingular)
{
    // Rank-1 matrix: plain factor fails, ridged succeeds.
    const Matrix a = Matrix::fromRows({{1, 1}, {1, 1}});
    EXPECT_FALSE(Cholesky::factor(a).has_value());
    const Cholesky ridged = Cholesky::factorRidged(a);
    EXPECT_GT(ridged.appliedRidge(), 0.0);
    const auto x = ridged.solve({2, 2});
    // Solution of the ridged system stays finite and symmetric.
    EXPECT_TRUE(std::isfinite(x[0]));
    EXPECT_NEAR(x[0], x[1], 1e-9);
}

TEST(Cholesky, FactorRidgedLeavesGoodMatricesAlone)
{
    const Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    const Cholesky chol = Cholesky::factorRidged(a);
    EXPECT_DOUBLE_EQ(chol.appliedRidge(), 0.0);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CholeskyPropertyTest, SolveRecoversRandomSolution)
{
    Rng rng(1000 + GetParam());
    const size_t n = GetParam();
    const Matrix spd = randomSpd(n, rng);

    std::vector<double> truth(n);
    for (auto &v : truth)
        v = rng.normal();
    const auto b = spd.multiply(truth);

    const auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());
    const auto x = chol->solve(b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], truth[i], 1e-6);
}

TEST_P(CholeskyPropertyTest, InverseTimesSelfIsIdentity)
{
    Rng rng(2000 + GetParam());
    const size_t n = GetParam();
    const Matrix spd = randomSpd(n, rng);
    const auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());
    const Matrix product = spd.multiply(chol->inverse());
    EXPECT_LT(product.maxAbsDiff(Matrix::identity(n)), 1e-6);
}

TEST_P(CholeskyPropertyTest, InverseDiagonalMatchesInverse)
{
    Rng rng(3000 + GetParam());
    const size_t n = GetParam();
    const Matrix spd = randomSpd(n, rng);
    const auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());
    const auto diag = chol->inverseDiagonal();
    const Matrix inv = chol->inverse();
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(diag[i], inv(i, i), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(Cholesky, ForwardSolveMatchesFullSolve)
{
    Rng rng(41);
    const size_t n = 9;
    const Matrix spd = randomSpd(n, rng);
    const auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());

    std::vector<double> b(n);
    for (auto &v : b)
        v = rng.normal();
    const auto z = chol->forwardSolve(b);
    const auto x = chol->solve(b);
    // Energy identity: z'z = b' A^{-1} b = b'x.
    double zz = 0.0, bx = 0.0;
    for (size_t i = 0; i < n; ++i) {
        zz += z[i] * z[i];
        bx += b[i] * x[i];
    }
    EXPECT_NEAR(zz, bx, 1e-9 * std::max(1.0, std::fabs(bx)));
}

TEST_P(CholeskyPropertyTest, RankOneUpdateMatchesRefactorization)
{
    Rng rng(4000 + GetParam());
    const size_t n = GetParam();
    const Matrix spd = randomSpd(n, rng);
    std::vector<double> v(n);
    for (auto &value : v)
        value = rng.normal();

    auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());
    chol->update(v);

    Matrix updated = spd;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j)
            updated(i, j) += v[i] * v[j];
    }
    const auto full = Cholesky::factor(updated);
    ASSERT_TRUE(full.has_value());

    std::vector<double> rhs(n);
    for (auto &value : rhs)
        value = rng.normal();
    const auto a = chol->solve(rhs);
    const auto b = full->solve(rhs);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(a[i], b[i], 1e-8);
}

TEST_P(CholeskyPropertyTest, RankOneDowndateMatchesRefactorization)
{
    Rng rng(5000 + GetParam());
    const size_t n = GetParam();
    const Matrix spd = randomSpd(n, rng, 2.0);
    // Small vector keeps the downdated matrix comfortably PD.
    std::vector<double> v(n);
    for (auto &value : v)
        value = 0.1 * rng.normal();

    auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());
    ASSERT_TRUE(chol->downdate(v));

    Matrix downdated = spd;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j)
            downdated(i, j) -= v[i] * v[j];
    }
    const auto full = Cholesky::factor(downdated);
    ASSERT_TRUE(full.has_value());

    std::vector<double> rhs(n);
    for (auto &value : rhs)
        value = rng.normal();
    const auto a = chol->solve(rhs);
    const auto b = full->solve(rhs);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(a[i], b[i], 1e-8);
}

TEST(Cholesky, DowndateDetectsLossOfDefiniteness)
{
    Matrix spd = Matrix::identity(3);
    auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());
    // Subtracting 2*e0 e0' makes the matrix indefinite.
    EXPECT_FALSE(chol->downdate({1.5, 0.0, 0.0}));
}

TEST_P(CholeskyPropertyTest, DropColumnMatchesShrunkenRefactorization)
{
    const size_t n = GetParam();
    if (n < 2)
        GTEST_SKIP() << "need at least two columns to drop one";
    Rng rng(6000 + n);
    const Matrix spd = randomSpd(n, rng);
    const auto chol = Cholesky::factor(spd);
    ASSERT_TRUE(chol.has_value());

    for (size_t k = 0; k < n; ++k) {
        const Cholesky dropped = chol->dropColumn(k);
        ASSERT_EQ(dropped.order(), n - 1);

        Matrix shrunken(n - 1, n - 1);
        for (size_t i = 0, oi = 0; i < n; ++i) {
            if (i == k)
                continue;
            for (size_t j = 0, oj = 0; j < n; ++j) {
                if (j == k)
                    continue;
                shrunken(oi, oj) = spd(i, j);
                ++oj;
            }
            ++oi;
        }
        const auto full = Cholesky::factor(shrunken);
        ASSERT_TRUE(full.has_value());

        std::vector<double> rhs(n - 1);
        for (auto &value : rhs)
            value = rng.normal();
        const auto a = dropped.solve(rhs);
        const auto b = full->solve(rhs);
        for (size_t i = 0; i < n - 1; ++i)
            EXPECT_NEAR(a[i], b[i], 1e-8) << "k=" << k;
    }
}

} // namespace
} // namespace chaos
