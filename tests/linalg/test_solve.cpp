/**
 * @file
 * Tests for the least-squares front end (normal equations + standard
 * errors), cross-checked against the independent QR path.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "util/random.hpp"

namespace chaos {
namespace {

TEST(LeastSquares, ExactFitHasZeroRss)
{
    Matrix x(5, 2);
    std::vector<double> y(5);
    for (size_t i = 0; i < 5; ++i) {
        x(i, 0) = 1.0;
        x(i, 1) = static_cast<double>(i);
        y[i] = 3.0 + 2.0 * static_cast<double>(i);
    }
    const auto fit = leastSquares(x, y);
    EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
    EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
    EXPECT_NEAR(fit.rss, 0.0, 1e-12);
}

TEST(LeastSquares, MatchesQrOnRandomProblems)
{
    Rng rng(42);
    const size_t n = 50, p = 6;
    Matrix x(n, p);
    std::vector<double> y(n);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < p; ++c)
            x(r, c) = rng.normal();
        y[r] = rng.normal();
    }
    const auto normal_fit = leastSquares(x, y);
    const auto qr_fit = qrLeastSquares(x, y);
    for (size_t i = 0; i < p; ++i)
        EXPECT_NEAR(normal_fit.coefficients[i], qr_fit[i], 1e-8);
}

TEST(LeastSquares, StdErrorsShrinkWithSampleSize)
{
    // se ~ sigma / sqrt(n): quadrupling n should halve the error.
    auto fit_for = [](size_t n) {
        Rng rng(7);
        Matrix x(n, 2);
        std::vector<double> y(n);
        for (size_t i = 0; i < n; ++i) {
            x(i, 0) = 1.0;
            x(i, 1) = rng.uniform(0.0, 10.0);
            y[i] = 5.0 + 1.5 * x(i, 1) + rng.normal(0.0, 1.0);
        }
        return leastSquares(x, y, true);
    };
    const auto small = fit_for(100);
    const auto large = fit_for(400);
    ASSERT_EQ(small.stdErrors.size(), 2u);
    EXPECT_GT(small.stdErrors[1], large.stdErrors[1]);
    EXPECT_NEAR(small.stdErrors[1] / large.stdErrors[1], 2.0, 0.6);
}

TEST(LeastSquares, SigmaSquaredEstimatesNoiseVariance)
{
    Rng rng(8);
    const size_t n = 2000;
    Matrix x(n, 2);
    std::vector<double> y(n);
    const double noise_sd = 2.0;
    for (size_t i = 0; i < n; ++i) {
        x(i, 0) = 1.0;
        x(i, 1) = rng.uniform(0.0, 1.0);
        y[i] = 1.0 + x(i, 1) + rng.normal(0.0, noise_sd);
    }
    const auto fit = leastSquares(x, y);
    EXPECT_NEAR(std::sqrt(fit.sigma2), noise_sd, 0.15);
}

TEST(LeastSquares, ShapeMismatchPanics)
{
    Matrix x(3, 1);
    EXPECT_DEATH(leastSquares(x, {1.0, 2.0}), "shape mismatch");
}

TEST(LeastSquares, UnderdeterminedPanics)
{
    Matrix x(2, 3);
    EXPECT_DEATH(leastSquares(x, {1.0, 2.0}), "fewer observations");
}

TEST(Ridge, ShrinksCoefficients)
{
    Rng rng(9);
    const size_t n = 60;
    Matrix x(n, 3);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < 3; ++c)
            x(i, c) = rng.normal();
        y[i] = 2.0 * x(i, 0) - x(i, 1) + rng.normal(0.0, 0.1);
    }
    const auto plain = ridgeSolve(x, y, 0.0);
    const auto shrunk = ridgeSolve(x, y, 100.0);
    double norm_plain = 0.0, norm_shrunk = 0.0;
    for (size_t c = 0; c < 3; ++c) {
        norm_plain += plain[c] * plain[c];
        norm_shrunk += shrunk[c] * shrunk[c];
    }
    EXPECT_LT(norm_shrunk, norm_plain);
}

TEST(Ridge, NegativeLambdaPanics)
{
    Matrix x(3, 1);
    x(0, 0) = 1;
    x(1, 0) = 2;
    x(2, 0) = 3;
    EXPECT_DEATH(ridgeSolve(x, {1, 2, 3}, -1.0), "negative lambda");
}

TEST(Residuals, ComputesYMinusXb)
{
    const Matrix x = Matrix::fromRows({{1, 1}, {1, 2}});
    const auto r = residuals(x, {5, 8}, {1, 3});
    EXPECT_DOUBLE_EQ(r[0], 1.0);   // 5 - (1 + 3)
    EXPECT_DOUBLE_EQ(r[1], 1.0);   // 8 - (1 + 6)
}

} // namespace
} // namespace chaos
