/**
 * @file
 * Tests for the deterministic thread pool behind the parallel
 * training pipeline: result ordering, exception propagation, the
 * nested-parallelism guard, and the CHAOS_THREADS override.
 */
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "util/parallel.hpp"

namespace chaos {
namespace {

/** Restores a known serial configuration when a test ends. */
class ParallelTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        unsetenv("CHAOS_THREADS");
        setGlobalThreadCount(1);
    }
};

TEST_F(ParallelTest, MapPreservesIndexOrdering)
{
    setGlobalThreadCount(8);
    const size_t n = 5000;
    const auto out = parallelMap<size_t>(
        n, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), n);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], i * i);
}

TEST_F(ParallelTest, SerialAndParallelResultsAreIdentical)
{
    // Floating-point sums per slot must be bit-identical because
    // each task performs the same arithmetic regardless of threads.
    auto work = [](size_t i) {
        double acc = 0.0;
        for (size_t k = 1; k <= 100; ++k)
            acc += 1.0 / static_cast<double>(i * 100 + k);
        return acc;
    };
    setGlobalThreadCount(1);
    const auto serial = parallelMap<double>(300, work);
    setGlobalThreadCount(8);
    const auto parallel = parallelMap<double>(300, work);
    for (size_t i = 0; i < serial.size(); ++i)
        ASSERT_EQ(serial[i], parallel[i]);  // Exact, not NEAR.
}

TEST_F(ParallelTest, ExceptionPropagatesLowestIndexFirst)
{
    setGlobalThreadCount(4);
    auto thrower = [](size_t i) {
        if (i == 7 || i == 900) {
            throw std::runtime_error("boom " + std::to_string(i));
        }
    };
    try {
        parallelFor(1000, thrower);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // Index 7 lives in an earlier chunk than 900, so its
        // exception is the one that must surface.
        EXPECT_STREQ(e.what(), "boom 7");
    }
}

TEST_F(ParallelTest, PoolSurvivesAThrowingJob)
{
    setGlobalThreadCount(4);
    EXPECT_THROW(parallelFor(100,
                             [](size_t) {
                                 throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    // The pool must still execute subsequent jobs normally.
    const auto out =
        parallelMap<size_t>(100, [](size_t i) { return i + 1; });
    EXPECT_EQ(out[99], 100u);
}

TEST_F(ParallelTest, NestedParallelismRunsInlineOnTheWorker)
{
    setGlobalThreadCount(4);
    const size_t outer = 8, inner = 16;
    std::vector<std::vector<std::thread::id>> ids(outer);
    parallelFor(outer, [&](size_t o) {
        EXPECT_TRUE(inParallelRegion());
        ids[o].resize(inner);
        parallelFor(inner, [&, o](size_t i) {
            ids[o][i] = std::this_thread::get_id();
        });
    });
    // Every inner iteration must have run on its outer task's thread.
    for (size_t o = 0; o < outer; ++o) {
        const std::set<std::thread::id> distinct(ids[o].begin(),
                                                 ids[o].end());
        EXPECT_EQ(distinct.size(), 1u);
    }
    EXPECT_FALSE(inParallelRegion());
}

TEST_F(ParallelTest, SingleThreadRunsEverythingInline)
{
    setGlobalThreadCount(1);
    const auto main_id = std::this_thread::get_id();
    parallelFor(64, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), main_id);
    });
}

TEST_F(ParallelTest, EnvOverrideSetsThreadCount)
{
    setenv("CHAOS_THREADS", "3", 1);
    setGlobalThreadCount(0);  // Force re-resolution from the env.
    EXPECT_EQ(globalThreadCount(), 3u);
}

TEST_F(ParallelTest, BadEnvValueFallsBackToHardware)
{
    setenv("CHAOS_THREADS", "zero", 1);
    setGlobalThreadCount(0);
    EXPECT_GE(globalThreadCount(), 1u);
}

TEST_F(ParallelTest, EmptyRangeIsANoOp)
{
    setGlobalThreadCount(8);
    size_t calls = 0;
    parallelFor(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0u);
}

} // namespace
} // namespace chaos
