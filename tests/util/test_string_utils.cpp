/**
 * @file
 * Tests for string helpers.
 */
#include <gtest/gtest.h>

#include "util/string_utils.hpp"

namespace chaos {
namespace {

TEST(Split, BasicFields)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, AdjacentSeparatorsYieldEmptyFields)
{
    const auto parts = split("a,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(Split, EmptyStringYieldsOneEmptyField)
{
    const auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparator)
{
    const auto parts = split("a,b,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[2], "");
}

TEST(Join, RoundTripsWithSplit)
{
    const std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Join, EmptyAndSingle)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Trim, RemovesSurroundingWhitespaceOnly)
{
    EXPECT_EQ(trim("  hello world \t\n"), "hello world");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("none"), "none");
}

TEST(StartsWith, Basics)
{
    EXPECT_TRUE(startsWith("Processor(_Total)", "Processor"));
    EXPECT_FALSE(startsWith("Pro", "Processor"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(ToLower, AsciiOnly)
{
    EXPECT_EQ(toLower("MiXeD Case 42"), "mixed case 42");
}

TEST(FormatDouble, RespectsDecimals)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.0, 0), "3");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(FormatPercent, ConvertsFraction)
{
    EXPECT_EQ(formatPercent(0.123, 1), "12.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

} // namespace
} // namespace chaos
