/**
 * @file
 * Tests for the deterministic RNG: reproducibility, distribution
 * moments, and stream independence.
 */
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace chaos {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic)
{
    SplitMix64 a(12345);
    SplitMix64 b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(99), b(99);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntOfOneIsAlwaysZero)
{
    Rng rng(10);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.uniformInt(1), 0u);
}

class RngMomentsTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RngMomentsTest, NormalMomentsMatchStandard)
{
    Rng rng(GetParam());
    const int n = 50000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sum_sq += z * z;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST_P(RngMomentsTest, UniformMomentsMatch)
{
    Rng rng(GetParam());
    const int n = 50000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_NEAR(sum_sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST_P(RngMomentsTest, ExponentialMeanMatchesRate)
{
    Rng rng(GetParam());
    const double rate = 2.5;
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST_P(RngMomentsTest, BernoulliFrequencyMatchesP)
{
    Rng rng(GetParam());
    const double p = 0.3;
    const int n = 50000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngMomentsTest,
                         ::testing::Values(1ULL, 42ULL, 9999ULL,
                                           0xDEADBEEFULL));

TEST(Rng, NormalWithParamsShiftsAndScales)
{
    Rng rng(77);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ClampedNormalRespectsLimit)
{
    Rng rng(78);
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.clampedNormal(1.0, 0.1, 2.0);
        ASSERT_GE(v, 1.0 - 0.2);
        ASSERT_LE(v, 1.0 + 0.2);
    }
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(123);
    Rng child_a = parent.fork(1);
    Rng child_b = parent.fork(2);
    // Streams should differ from each other.
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (child_a.nextU64() == child_b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicGivenParentState)
{
    Rng p1(55), p2(55);
    Rng c1 = p1.fork(9);
    Rng c2 = p2.fork(9);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(c1.nextU64(), c2.nextU64());
}

TEST(Rng, ShuffleProducesPermutation)
{
    Rng rng(321);
    std::vector<size_t> items(50);
    for (size_t i = 0; i < items.size(); ++i)
        items[i] = i;
    auto shuffled = items;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, items);  // Astronomically unlikely to match.
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleHandlesDegenerateSizes)
{
    Rng rng(1);
    std::vector<size_t> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<size_t> one{42};
    rng.shuffle(one);
    EXPECT_EQ(one[0], 42u);
}

} // namespace
} // namespace chaos
