/**
 * @file
 * Tests for the status/error reporting helpers.
 */
#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace chaos {
namespace {

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "panic: boom");
}

TEST(Logging, PanicIfTriggersOnlyWhenTrue)
{
    panicIf(false, "must not fire");  // No crash.
    EXPECT_DEATH(panicIf(true, "fired"), "panic: fired");
}

TEST(Logging, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(Logging, FatalIfTriggersOnlyWhenTrue)
{
    fatalIf(false, "must not fire");  // No exit.
    EXPECT_EXIT(fatalIf(true, "fired"),
                ::testing::ExitedWithCode(1), "fatal: fired");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    setQuiet(false);
    warn("just a warning");
    inform("just info");
    setQuiet(true);
    warn("suppressed");
    inform("suppressed");
    setQuiet(false);
    SUCCEED();
}

} // namespace
} // namespace chaos
