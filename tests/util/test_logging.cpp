/**
 * @file
 * Tests for the status/error reporting helpers: fatal/panic exits,
 * level filtering, the pluggable sink, and thread safety of the
 * formatted write path.
 */
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace chaos {
namespace {

/** Capture log lines through a custom sink for the test's scope. */
struct SinkCapture
{
    std::mutex mu;
    std::vector<std::pair<LogLevel, std::string>> lines;

    SinkCapture()
    {
        setLogSink([this](LogLevel level, const std::string &line) {
            std::lock_guard<std::mutex> lock(mu);
            lines.emplace_back(level, line);
        });
    }
    ~SinkCapture() { setLogSink(nullptr); }
};

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("boom"), "panic: boom");
}

TEST(Logging, PanicIfTriggersOnlyWhenTrue)
{
    panicIf(false, "must not fire");  // No crash.
    EXPECT_DEATH(panicIf(true, "fired"), "panic: fired");
}

TEST(Logging, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(Logging, FatalIfTriggersOnlyWhenTrue)
{
    fatalIf(false, "must not fire");  // No exit.
    EXPECT_EXIT(fatalIf(true, "fired"),
                ::testing::ExitedWithCode(1), "fatal: fired");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    setQuiet(false);
    warn("just a warning");
    inform("just info");
    setQuiet(true);
    warn("suppressed");
    inform("suppressed");
    setQuiet(false);
    SUCCEED();
}

TEST(Logging, SinkCapturesFormattedLines)
{
    SinkCapture capture;
    setLogLevel(LogLevel::Info);
    warn("watch out");
    inform("fyi");

    ASSERT_EQ(capture.lines.size(), 2u);
    EXPECT_EQ(capture.lines[0].first, LogLevel::Warn);
    EXPECT_EQ(capture.lines[0].second, "warn: watch out\n");
    EXPECT_EQ(capture.lines[1].first, LogLevel::Info);
    EXPECT_EQ(capture.lines[1].second, "info: fyi\n");
}

TEST(Logging, LevelFiltersBelowThreshold)
{
    SinkCapture capture;
    setLogLevel(LogLevel::Warn);
    inform("filtered out");
    warn("kept");
    setLogLevel(LogLevel::Silent);
    warn("also filtered");
    setLogLevel(LogLevel::Info);

    ASSERT_EQ(capture.lines.size(), 1u);
    EXPECT_EQ(capture.lines[0].second, "warn: kept\n");
}

TEST(Logging, LevelNamesParse)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(logLevelFromName("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(logLevelFromName("WARNING", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(logLevelFromName("quiet", level));
    EXPECT_EQ(level, LogLevel::Silent);
    EXPECT_FALSE(logLevelFromName("shout", level));
}

TEST(Logging, ConcurrentWarnsArriveIntact)
{
    SinkCapture capture;
    setLogLevel(LogLevel::Info);
    const int threads = 8, perThread = 50;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([t] {
            for (int i = 0; i < perThread; ++i) {
                warn("thread " + std::to_string(t) + " message " +
                     std::to_string(i));
            }
        });
    }
    for (auto &th : pool)
        th.join();

    // Every message arrives exactly once, unsheared: each line is a
    // single "warn: thread T message I\n" (no interleaved fragments).
    ASSERT_EQ(capture.lines.size(),
              static_cast<size_t>(threads * perThread));
    for (const auto &[level, line] : capture.lines) {
        EXPECT_EQ(level, LogLevel::Warn);
        EXPECT_EQ(line.rfind("warn: thread ", 0), 0u);
        EXPECT_EQ(line.back(), '\n');
    }
}

} // namespace
} // namespace chaos
