/**
 * @file
 * Tests for CSV reading/writing.
 */
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"

namespace chaos {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

TEST(Csv, WriteReadRoundTrip)
{
    CsvTable table;
    table.header = {"alpha", "beta", "gamma"};
    table.rows = {{1.0, 2.5, -3.0}, {4.0, 0.0, 1e9}};

    const std::string path = tempPath("roundtrip.csv");
    writeCsv(path, table);
    const CsvTable loaded = readCsv(path);

    EXPECT_EQ(loaded.header, table.header);
    ASSERT_EQ(loaded.rows.size(), 2u);
    for (size_t r = 0; r < 2; ++r) {
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(loaded.rows[r][c], table.rows[r][c]);
    }
    std::remove(path.c_str());
}

TEST(Csv, ColumnExtraction)
{
    CsvTable table;
    table.header = {"x", "y"};
    table.rows = {{1, 10}, {2, 20}, {3, 30}};
    EXPECT_EQ(table.columnIndex("y"), 1u);
    const auto col = table.column("y");
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[2], 30.0);
}

TEST(Csv, MissingColumnIsFatal)
{
    CsvTable table;
    table.header = {"x"};
    EXPECT_EXIT(table.columnIndex("nope"),
                ::testing::ExitedWithCode(1), "CSV column not found");
}

TEST(Csv, MissingFileIsFatal)
{
    EXPECT_EXIT(readCsv("/nonexistent/dir/file.csv"),
                ::testing::ExitedWithCode(1), "cannot open CSV");
}

TEST(Csv, RaggedRowIsFatal)
{
    const std::string path = tempPath("ragged.csv");
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";
    out.close();
    EXPECT_EXIT(readCsv(path), ::testing::ExitedWithCode(1),
                "row width mismatch");
    std::remove(path.c_str());
}

TEST(Csv, NonNumericFieldIsFatal)
{
    const std::string path = tempPath("nonnum.csv");
    std::ofstream out(path);
    out << "a,b\n1,hello\n";
    out.close();
    EXPECT_EXIT(readCsv(path), ::testing::ExitedWithCode(1),
                "non-numeric CSV field");
    std::remove(path.c_str());
}

TEST(Csv, SkipsBlankLines)
{
    const std::string path = tempPath("blank.csv");
    std::ofstream out(path);
    out << "a\n1\n\n2\n";
    out.close();
    const CsvTable loaded = readCsv(path);
    EXPECT_EQ(loaded.rows.size(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace chaos
