/**
 * @file
 * Tests for CSV reading/writing.
 */
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "../support/raises.hpp"
#include "util/csv.hpp"

namespace chaos {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

TEST(Csv, WriteReadRoundTrip)
{
    CsvTable table;
    table.header = {"alpha", "beta", "gamma"};
    table.rows = {{1.0, 2.5, -3.0}, {4.0, 0.0, 1e9}};

    const std::string path = tempPath("roundtrip.csv");
    writeCsv(path, table);
    const CsvTable loaded = readCsv(path);

    EXPECT_EQ(loaded.header, table.header);
    ASSERT_EQ(loaded.rows.size(), 2u);
    for (size_t r = 0; r < 2; ++r) {
        for (size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(loaded.rows[r][c], table.rows[r][c]);
    }
    std::remove(path.c_str());
}

TEST(Csv, ColumnExtraction)
{
    CsvTable table;
    table.header = {"x", "y"};
    table.rows = {{1, 10}, {2, 20}, {3, 30}};
    EXPECT_EQ(table.columnIndex("y"), 1u);
    const auto col = table.column("y");
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[2], 30.0);
}

TEST(Csv, MissingColumnIsRecoverable)
{
    CsvTable table;
    table.header = {"x"};
    EXPECT_RAISES(table.columnIndex("nope"), "CSV column not found");
}

TEST(Csv, MissingFileIsRecoverable)
{
    EXPECT_RAISES(readCsv("/nonexistent/dir/file.csv"),
                  "cannot open CSV");
    const auto result = tryReadCsv("/nonexistent/dir/file.csv");
    EXPECT_FALSE(result.hasValue());
    EXPECT_NE(result.error().find("cannot open CSV"),
              std::string::npos);
}

TEST(Csv, RaggedRowReportsLineNumber)
{
    const std::string path = tempPath("ragged.csv");
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";
    out.close();
    // The short row is on line 3 of the file.
    EXPECT_RAISES(readCsv(path), path + ":3");
    std::remove(path.c_str());
}

TEST(Csv, NonNumericFieldReportsLineNumber)
{
    const std::string path = tempPath("nonnum.csv");
    std::ofstream out(path);
    out << "a,b\n1,hello\n";
    out.close();
    EXPECT_RAISES(readCsv(path),
                  path + ":2: non-numeric CSV field");
    std::remove(path.c_str());
}

TEST(Csv, PartiallyNumericFieldIsRejected)
{
    // strtod() would happily parse the "0.3" prefix; a trailing-
    // garbage field is corruption and must be rejected whole.
    const std::string path = tempPath("partial.csv");
    std::ofstream out(path);
    out << "a,b\n1,0.3banana02\n";
    out.close();
    EXPECT_RAISES(readCsv(path),
                  path + ":2: non-numeric CSV field '0.3banana02'");
    std::remove(path.c_str());
}

TEST(Csv, RowLinesSkipBlankLines)
{
    const std::string path = tempPath("lines.csv");
    std::ofstream out(path);
    out << "a\n1\n\n\n2\n";
    out.close();
    const CsvTable loaded = readCsv(path);
    ASSERT_EQ(loaded.rowLines.size(), 2u);
    EXPECT_EQ(loaded.rowLines[0], 2u);
    EXPECT_EQ(loaded.rowLines[1], 5u);
    EXPECT_EQ(loaded.lineOfRow(1), 5u);
    std::remove(path.c_str());
}

TEST(Csv, SkipsBlankLines)
{
    const std::string path = tempPath("blank.csv");
    std::ofstream out(path);
    out << "a\n1\n\n2\n";
    out.close();
    const CsvTable loaded = readCsv(path);
    EXPECT_EQ(loaded.rows.size(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace chaos
