/**
 * @file
 * Tests for the ASCII table renderer.
 */
#include <gtest/gtest.h>

#include "util/table.hpp"

namespace chaos {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable table({"Workload", "DRE"});
    table.addRow({"Sort", "10.2%"});
    table.addRow({"Prime", "2.5%"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Workload"), std::string::npos);
    EXPECT_NE(out.find("Sort"), std::string::npos);
    EXPECT_NE(out.find("2.5%"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, ColumnsArePadded)
{
    TextTable table({"A", "B"});
    table.addRow({"longvalue", "x"});
    const std::string out = table.render();
    // Every line has the same length.
    size_t expected = 0;
    size_t start = 0;
    while (start < out.size()) {
        const size_t end = out.find('\n', start);
        const size_t len = end - start;
        if (expected == 0)
            expected = len;
        EXPECT_EQ(len, expected);
        start = end + 1;
    }
}

TEST(TextTable, RuleAddsSeparator)
{
    TextTable table({"A"});
    table.addRow({"1"});
    table.addRule();
    table.addRow({"2"});
    const std::string out = table.render();
    // Header rule + top + bottom + explicit = at least 4 "+--" rules.
    size_t rules = 0;
    size_t pos = 0;
    while ((pos = out.find("+-", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_GE(rules, 4u);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, MismatchedRowWidthPanics)
{
    TextTable table({"A", "B"});
    EXPECT_DEATH(table.addRow({"only one"}), "row width");
}

TEST(BarLine, ScalesToWidth)
{
    const std::string full = barLine("x", 10.0, 10.0, 20, "10");
    const std::string half = barLine("x", 5.0, 10.0, 20, "5");
    const size_t full_hashes =
        static_cast<size_t>(std::count(full.begin(), full.end(), '#'));
    const size_t half_hashes =
        static_cast<size_t>(std::count(half.begin(), half.end(), '#'));
    EXPECT_EQ(full_hashes, 20u);
    EXPECT_EQ(half_hashes, 10u);
}

TEST(BarLine, ClampsOutOfRangeValues)
{
    const std::string over = barLine("x", 50.0, 10.0, 10, "50");
    EXPECT_EQ(std::count(over.begin(), over.end(), '#'), 10);
    const std::string under = barLine("x", -5.0, 10.0, 10, "-5");
    EXPECT_EQ(std::count(under.begin(), under.end(), '#'), 0);
}

} // namespace
} // namespace chaos
