#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, the fault-injection
# tests again under ASan + UBSan (CHAOS_SANITIZE=ON) so memory errors
# in the degraded-telemetry paths cannot slip through a plain build,
# the parallel-pipeline tests under ThreadSanitizer
# (CHAOS_SANITIZE=thread), and a perf_pipeline smoke run (the bench
# itself asserts speedup >= 1.0 and serial == parallel accuracy with
# a finite DRE, exiting nonzero otherwise). The observability layer
# gets its own stage: an overhead_obs smoke run (asserts < 1 %
# instrumentation overhead and valid trace/metrics exports) plus the
# obs unit tests under ThreadSanitizer. The serving subsystem gets a
# throughput/zero-drop smoke (serve_throughput asserts the scalar and
# batched samples/sec floors, the batched p99 drain budget, and a
# drop-free paced replay, and the tier schema-checks the
# BENCH_serve.json it writes), a CLI replay smoke, and its whole test
# binary under ThreadSanitizer alongside the serialization round-trip
# tests. The model-quality monitor gets a `chaos monitor`
# replay smoke (clean replay => zero drift events, telemetry is
# well-formed JSONL) and its tests run under ThreadSanitizer too.
# The self-healing autopilot gets a `chaos autopilot` replay smoke
# (an injected stuck-counter fault must be quarantined, retrained,
# and canary-promoted within the replay; a clean replay must report
# zero remediations) and its tests run under ThreadSanitizer. The
# hierarchical roll-up layer gets a rollup_scale smoke (asserts the
# per-machine update/aggregate/memory budgets, bitwise thread-count
# determinism, and the metered-density recall invariants, and the
# tier schema-checks its BENCH_rollup.json), a `chaos fleetview`
# smoke over a 100-machine synthetic topology (tables render, the
# JSONL roll-up export is one well-formed object per line), and the
# roll-up tests under ThreadSanitizer. The network ingest layer gets
# a net_ingest smoke (loopback wire-path connection sweep with exact
# accounting, merged into BENCH_serve.json and schema-checked), a
# `chaos serve --listen` + `chaos loadgen` loopback smoke with
# accounting checked on both ends, the wire-protocol fuzz suite under
# ASan+UBSan, and its whole test binary under ThreadSanitizer. The
# latency-tracing / flight-recorder layer gets its stage_latency and
# stage_overhead sections schema-checked in BENCH_serve.json (the
# bench itself gates the tracing overhead on the batched drain path),
# a live-introspection smoke (`chaos top --json` against a listening
# server must return a validated snapshot) chained into a faulted
# replay that must leave exactly one parseable flight bundle holding
# the model-drift trigger and preceding spans, and the flight
# recorder's trigger-storm tests under ASan+UBSan and TSan.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== tier 1: perf pipeline smoke (fast mode) =="
CHAOS_BENCH_FAST=1 ./build/bench/perf_pipeline

echo
echo "== tier 1: observability overhead smoke (fast mode) =="
CHAOS_BENCH_FAST=1 ./build/bench/overhead_obs

echo
echo "== tier 1: serve throughput + replay smoke (fast mode) =="
serve_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp"' EXIT
# Run in the temp dir: the fast-mode BENCH_serve.json must not
# clobber the committed full-mode one. The bench exits nonzero on any
# floor/budget violation; the schema check below additionally fails
# the tier if the JSON contract the dashboards consume drifts.
(cd "$serve_tmp" && CHAOS_BENCH_FAST=1 \
    "$OLDPWD/build/bench/serve_throughput")
for key in throughput batched_throughput replay monitor_overhead \
    autopilot_overhead stage_overhead stage_latency e2e_us \
    throughput_floor_sps batched_throughput_floor_sps \
    p99_drain_budget_ms blast_p99_drain_ms pass; do
    grep -q "\"$key\"" "$serve_tmp/BENCH_serve.json" || {
        echo "serve bench: BENCH_serve.json missing key '$key'" >&2
        exit 1
    }
done
grep -q '"pass": true' "$serve_tmp/BENCH_serve.json" || {
    echo "serve bench: BENCH_serve.json did not record a pass" >&2
    exit 1
}

echo
echo "== tier 1: network ingest smoke (fast mode) =="
# Runs in the same temp dir after serve_throughput: net_ingest
# text-merges its section into the BENCH_serve.json already there.
# The bench gates exact sent/accepted/processed accounting, zero
# rejects at provisioned capacity, and the aggregate throughput
# floor; the schema check keeps the merged contract stable.
(cd "$serve_tmp" && CHAOS_BENCH_FAST=1 \
    "$OLDPWD/build/bench/net_ingest")
for key in net_ingest connections_sweep sent_per_sec \
    p50_latency_ms p99_latency_ms ingest_floor_sps; do
    grep -q "\"$key\"" "$serve_tmp/BENCH_serve.json" || {
        echo "net bench: BENCH_serve.json missing key '$key'" >&2
        exit 1
    }
done
grep -q '"ingest_pass": true' "$serve_tmp/BENCH_serve.json" || {
    echo "net bench: BENCH_serve.json did not record a pass" >&2
    exit 1
}

echo
echo "== tier 1: roll-up aggregation smoke (fast mode) =="
# Same pattern as serve_throughput: the bench gates its own budgets
# (per-machine update/aggregate cost, bytes/machine, thread-count
# determinism, density-sweep recall) and exits nonzero on violation;
# the schema check keeps the dashboard contract stable.
(cd "$serve_tmp" && CHAOS_BENCH_FAST=1 \
    "$OLDPWD/build/bench/rollup_scale")
for key in scale update_budget_us_per_machine \
    aggregate_budget_us_per_machine memory_budget_bytes_per_machine \
    deterministic density_sweep pass; do
    grep -q "\"$key\"" "$serve_tmp/BENCH_rollup.json" || {
        echo "rollup bench: BENCH_rollup.json missing key '$key'" >&2
        exit 1
    }
done
grep -q '"pass": true' "$serve_tmp/BENCH_rollup.json" || {
    echo "rollup bench: BENCH_rollup.json did not record a pass" >&2
    exit 1
}

echo
echo "== tier 1: chaos fleetview roll-up smoke =="
# 100 synthetic machines through the roll-up tree: the dashboard must
# render the drill-down tables and every exported roll-up line must
# be one JSON object.
./build/tools/chaos fleetview --synthetic 100 --ticks 10 \
    --rollup-out "$serve_tmp/rollup.jsonl" \
    | tee "$serve_tmp/fleetview.out"
grep -q 'fleetview (root): 100 machines' "$serve_tmp/fleetview.out" || {
    echo "fleetview smoke: root summary missing" >&2
    exit 1
}
grep -q 'Drift rate' "$serve_tmp/fleetview.out" || {
    echo "fleetview smoke: drill-down table missing" >&2
    exit 1
}
[ -s "$serve_tmp/rollup.jsonl" ] || {
    echo "fleetview smoke: no roll-up export written" >&2
    exit 1
}
if grep -qv '^{.*}$' "$serve_tmp/rollup.jsonl"; then
    echo "fleetview smoke: roll-up line is not a JSON object" >&2
    exit 1
fi
grep -q '"drift_rate"' "$serve_tmp/rollup.jsonl" || {
    echo "fleetview smoke: roll-up export missing drift rates" >&2
    exit 1
}

echo
echo "== tier 1: chaos serve CLI replay smoke =="
./build/tools/chaos collect Core2 --machines 2 --runs 1 \
    --scale 0.05 --out "$serve_tmp/trace.csv" >/dev/null
./build/tools/chaos train "$serve_tmp/trace.csv" \
    --out "$serve_tmp/model.txt" --type linear >/dev/null
./build/tools/chaos serve --replay "$serve_tmp/trace.csv" \
    --model "$serve_tmp/model.txt" --platform Core2 \
    --snapshot-every 200 --snapshots-out "$serve_tmp/snaps.json"
grep -q '"cluster_w"' "$serve_tmp/snaps.json" || {
    echo "serve smoke: no fleet snapshots written" >&2
    exit 1
}

echo
echo "== tier 1: chaos serve --listen + loadgen loopback smoke =="
# End-to-end wire path through the CLI: a listening fleet server on
# an ephemeral port, a loadgen run against it, and exact accounting
# on both sides. The server exits on its own once the sample budget
# is processed (idle window as a backstop).
rm -f "$serve_tmp/port"
./build/tools/chaos serve --listen 0 --machines 4 \
    --port-file "$serve_tmp/port" \
    --ingest-max-samples 2000 --ingest-idle-ms 10000 \
    --stats-out "$serve_tmp/ingest_stats.json" \
    > "$serve_tmp/listen.out" 2>&1 &
listen_pid=$!
for _ in $(seq 1 100); do
    [ -s "$serve_tmp/port" ] && break
    sleep 0.1
done
[ -s "$serve_tmp/port" ] || {
    echo "ingest smoke: server never published its port" >&2
    kill "$listen_pid" 2>/dev/null || true
    exit 1
}
./build/tools/chaos loadgen \
    --target "127.0.0.1:$(cat "$serve_tmp/port")" \
    --connections 4 --samples 500 --machines 4 --window 256 \
    --report-json "$serve_tmp/loadgen.json" \
    | tee "$serve_tmp/loadgen.out"
wait "$listen_pid" || {
    echo "ingest smoke: serve --listen exited nonzero" >&2
    exit 1
}
grep -q 'loadgen: 2000 sent = 2000 accepted + 0 rejected' \
    "$serve_tmp/loadgen.out" || {
    echo "ingest smoke: loadgen accounting mismatch" >&2
    exit 1
}
grep -q '2000 samples accepted' "$serve_tmp/listen.out" || {
    echo "ingest smoke: server-side accounting mismatch" >&2
    cat "$serve_tmp/listen.out" >&2
    exit 1
}
grep -q '"samples_accepted": 2000' "$serve_tmp/ingest_stats.json" || {
    echo "ingest smoke: stats JSON missing accepted count" >&2
    exit 1
}
grep -q '"connections_dropped": 0' "$serve_tmp/ingest_stats.json" || {
    echo "ingest smoke: clean load dropped connections" >&2
    exit 1
}

echo
echo "== tier 1: chaos top + flight recorder smoke =="
# A monitored listening server with the flight recorder armed: first
# `chaos top --json` must return a validated live snapshot, then a
# faulted replay (stuck counters on machine0) must trip the drift
# monitor and leave exactly one diagnostic bundle — every line one
# JSON object, holding the model_drift trigger and preceding spans.
rm -f "$serve_tmp/port"
trace_rows=$(( $(wc -l < "$serve_tmp/trace.csv") - 1 ))
./build/tools/chaos serve --listen 0 \
    --port-file "$serve_tmp/port" \
    --model "$serve_tmp/model.txt" --platform Core2 --machines 2 \
    --monitor 1 --warmup 60 --window 30 \
    --flight-dir "$serve_tmp/flight" \
    --ingest-max-samples "$trace_rows" --ingest-idle-ms 10000 \
    > "$serve_tmp/flight_listen.out" 2>&1 &
listen_pid=$!
for _ in $(seq 1 100); do
    [ -s "$serve_tmp/port" ] && break
    sleep 0.1
done
[ -s "$serve_tmp/port" ] || {
    echo "top smoke: server never published its port" >&2
    kill "$listen_pid" 2>/dev/null || true
    exit 1
}
./build/tools/chaos top --json 1 \
    --target "127.0.0.1:$(cat "$serve_tmp/port")" \
    > "$serve_tmp/top.json"
for key in chaos_top fleet ingest stage_latency flight; do
    grep -q "\"$key\"" "$serve_tmp/top.json" || {
        echo "top smoke: snapshot missing key '$key'" >&2
        kill "$listen_pid" 2>/dev/null || true
        exit 1
    }
done
./build/tools/chaos loadgen \
    --target "127.0.0.1:$(cat "$serve_tmp/port")" \
    --replay "$serve_tmp/trace.csv" \
    --inject-stuck machine0 --inject-at 80 \
    | tee "$serve_tmp/flight_loadgen.out"
wait "$listen_pid" || {
    echo "top smoke: serve --listen exited nonzero" >&2
    exit 1
}
grep -q 'monitor: [1-9][0-9]* drift events' \
    "$serve_tmp/flight_listen.out" || {
    echo "flight smoke: injected fault raised no drift events" >&2
    cat "$serve_tmp/flight_listen.out" >&2
    exit 1
}
bundles=$(ls "$serve_tmp/flight"/flight-*.jsonl 2>/dev/null | wc -l)
[ "$bundles" -eq 1 ] || {
    echo "flight smoke: expected exactly 1 bundle, found $bundles" >&2
    exit 1
}
bundle=$(ls "$serve_tmp/flight"/flight-*.jsonl)
if grep -qv '^{.*}$' "$bundle"; then
    echo "flight smoke: bundle line is not a JSON object" >&2
    exit 1
fi
grep -q '"kind": "model_drift"' "$bundle" || {
    echo "flight smoke: bundle is missing the drift trigger" >&2
    exit 1
}
grep -q '"dur_ns"' "$bundle" || {
    echo "flight smoke: bundle holds no preceding spans" >&2
    exit 1
}

echo
echo "== tier 1: chaos monitor replay smoke =="
./build/tools/chaos monitor --replay "$serve_tmp/trace.csv" \
    --model "$serve_tmp/model.txt" --platform Core2 \
    --telemetry-out "$serve_tmp/telemetry.jsonl" \
    | tee "$serve_tmp/monitor.out"
# A model replayed over its own training trace must not drift.
grep -q '^drift events: 0$' "$serve_tmp/monitor.out" || {
    echo "monitor smoke: clean replay raised drift events" >&2
    exit 1
}
# Telemetry is line-delimited JSON: every line is one object, and all
# three record types are present.
[ -s "$serve_tmp/telemetry.jsonl" ] || {
    echo "monitor smoke: no telemetry written" >&2
    exit 1
}
if grep -qv '^{.*}$' "$serve_tmp/telemetry.jsonl"; then
    echo "monitor smoke: telemetry line is not a JSON object" >&2
    exit 1
fi
for record_type in fleet quality metrics; do
    grep -q "\"type\": \"$record_type\"" "$serve_tmp/telemetry.jsonl" || {
        echo "monitor smoke: no $record_type records" >&2
        exit 1
    }
done

echo
echo "== tier 1: chaos autopilot self-healing smoke =="
# Injected stuck counters on machine0: the autopilot must complete at
# least one quarantine -> retrain -> promote cycle and hand the
# machine back to serving.
./build/tools/chaos autopilot --replay "$serve_tmp/trace.csv" \
    --model "$serve_tmp/model.txt" --platform Core2 \
    --warmup 40 --window 30 --min-retrain-samples 32 \
    --canary-samples 16 --cooldown 30 \
    --inject-stuck machine0 --inject-at 60 \
    | tee "$serve_tmp/autopilot.out"
grep -q 'autopilot summary: quarantines=[1-9]' \
    "$serve_tmp/autopilot.out" || {
    echo "autopilot smoke: injected fault was never quarantined" >&2
    exit 1
}
grep -Eq 'promotions=[1-9]' "$serve_tmp/autopilot.out" || {
    echo "autopilot smoke: retrained model was never promoted" >&2
    exit 1
}
grep -q '| machine0 | serving' "$serve_tmp/autopilot.out" || {
    echo "autopilot smoke: machine0 did not return to serving" >&2
    exit 1
}
# A clean replay of the same trace must not remediate anything.
./build/tools/chaos autopilot --replay "$serve_tmp/trace.csv" \
    --model "$serve_tmp/model.txt" --platform Core2 \
    --warmup 40 --window 30 \
    | tee "$serve_tmp/autopilot_clean.out"
grep -q 'autopilot summary: quarantines=0 retrains=0 promotions=0 rollbacks=0 failures=0' \
    "$serve_tmp/autopilot_clean.out" || {
    echo "autopilot smoke: clean replay triggered remediation" >&2
    exit 1
}

echo
echo "== tier 1: fault-injection tests under ASan+UBSan =="
cmake -B build-asan -S . -DCHAOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$(nproc)" --target test_faults test_net \
    test_flight
./build-asan/tests/test_faults

echo
echo "== tier 1: flight-recorder trigger storm under ASan+UBSan =="
# 100 concurrent triggers against live span/event/delta emitters must
# produce exactly one rate-limited bundle with no memory errors.
./build-asan/tests/test_flight

echo
echo "== tier 1: wire-protocol fuzz + ingest tests under ASan+UBSan =="
# The protocol suite mutates >10k frames and feeds garbage streams;
# under ASan any over-read in the framing state machine is fatal
# instead of silent.
./build-asan/tests/test_net

echo
echo "== tier 1: parallel tests under TSan =="
cmake -B build-tsan -S . -DCHAOS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_util test_core \
    test_obs test_serve test_models test_monitor test_autopilot \
    test_rollup test_net test_flight
CHAOS_THREADS=8 ./build-tsan/tests/test_util \
    --gtest_filter='ParallelTest.*:Logging.Concurrent*'
CHAOS_BENCH_FAST=1 CHAOS_THREADS=8 ./build-tsan/tests/test_core \
    --gtest_filter='ParallelDeterminism.*'
CHAOS_THREADS=8 ./build-tsan/tests/test_obs
# The flight recorder's freeze-and-dump path races four trigger
# threads against four span/delta emitters here: the ring insert,
# rate limiter, and bundle dump must be data-race-free.
CHAOS_THREADS=8 ./build-tsan/tests/test_flight

echo
echo "== tier 1: serve + serialization round-trip tests under TSan =="
CHAOS_THREADS=8 ./build-tsan/tests/test_serve
CHAOS_THREADS=8 ./build-tsan/tests/test_monitor
CHAOS_THREADS=8 ./build-tsan/tests/test_autopilot
CHAOS_THREADS=8 ./build-tsan/tests/test_rollup
# The ingest server's poll thread, the loadgen worker threads, and
# the fleet drainers all run concurrently here: the socket layer's
# stats handoff must be race-free.
CHAOS_THREADS=8 ./build-tsan/tests/test_net
CHAOS_THREADS=8 ./build-tsan/tests/test_models \
    --gtest_filter='*SerializePropertyRoundTrip*'

echo
echo "tier 1: PASS"
