#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the
# fault-injection tests again under ASan + UBSan (CHAOS_SANITIZE=ON)
# so memory errors in the degraded-telemetry paths cannot slip
# through a plain build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== tier 1: fault-injection tests under ASan+UBSan =="
cmake -B build-asan -S . -DCHAOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$(nproc)" --target test_faults
./build-asan/tests/test_faults

echo
echo "tier 1: PASS"
