#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, the fault-injection
# tests again under ASan + UBSan (CHAOS_SANITIZE=ON) so memory errors
# in the degraded-telemetry paths cannot slip through a plain build,
# the parallel-pipeline tests under ThreadSanitizer
# (CHAOS_SANITIZE=thread), and a perf_pipeline smoke run (the bench
# itself asserts speedup >= 1.0 and serial == parallel accuracy with
# a finite DRE, exiting nonzero otherwise). The observability layer
# gets its own stage: an overhead_obs smoke run (asserts < 1 %
# instrumentation overhead and valid trace/metrics exports) plus the
# obs unit tests under ThreadSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== tier 1: perf pipeline smoke (fast mode) =="
CHAOS_BENCH_FAST=1 ./build/bench/perf_pipeline

echo
echo "== tier 1: observability overhead smoke (fast mode) =="
CHAOS_BENCH_FAST=1 ./build/bench/overhead_obs

echo
echo "== tier 1: fault-injection tests under ASan+UBSan =="
cmake -B build-asan -S . -DCHAOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$(nproc)" --target test_faults
./build-asan/tests/test_faults

echo
echo "== tier 1: parallel tests under TSan =="
cmake -B build-tsan -S . -DCHAOS_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_util test_core \
    test_obs
CHAOS_THREADS=8 ./build-tsan/tests/test_util \
    --gtest_filter='ParallelTest.*:Logging.Concurrent*'
CHAOS_BENCH_FAST=1 CHAOS_THREADS=8 ./build-tsan/tests/test_core \
    --gtest_filter='ParallelDeterminism.*'
CHAOS_THREADS=8 ./build-tsan/tests/test_obs

echo
echo "tier 1: PASS"
